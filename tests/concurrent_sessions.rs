//! Integration test: many sessions, one database. N OS threads share a
//! single `&Database` and each replays the full workload — NOBENCH Q1–Q11
//! and the OLAP Table-13 set — while the executor itself fans every query
//! out across its own morsel workers. Every thread must see results
//! byte-identical to a serial (degree 1) baseline, and in debug builds the
//! `RaceOracle` in `run_morsels` asserts the claim/merge protocol on every
//! one of those concurrent queries: morsel claims stay disjoint and
//! exhaustive, merges happen in morsel-index order, and no worker outlives
//! its scope. A tiny morsel size keeps the oracle busy even at small n.

use fsdm::sqljson::Datum;
use fsdm::store::Query;
use fsdm_bench::setup::{
    bind_datum, nobench_db, nobench_q11_plan, nobench_q5_bind, olap_db, olap_queries, StorageMethod,
};

/// Threads sharing the database. Intentionally larger than the morsel
/// degree so inter-query and intra-query parallelism overlap.
const SESSIONS: usize = 4;

/// Executor degrees the oracle must survive: serial fallback and the
/// real fan-out.
const DEGREES: [usize; 2] = [1, 4];

/// Run every plan once on `db`, in order.
fn run_all(db: &fsdm::store::Database, plans: &[Query]) -> Vec<fsdm::store::QueryResult> {
    plans.iter().map(|p| db.execute(p).unwrap()).collect()
}

#[test]
fn concurrent_nobench_sessions_match_serial_baseline() {
    let n = 500;
    let mut session = nobench_db(n);
    session.db.set_morsel_rows(64); // many morsels per scan: real seams

    // Precompile once; `Database::execute(&Query)` is the `&self` path
    // every thread shares.
    let mut plans: Vec<Query> = (1..=10)
        .map(|q| {
            let sql = fsdm::workloads::nobench::query_sql(q, n);
            let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
            session.plan(&sql, &binds).unwrap()
        })
        .collect();
    plans.push(nobench_q11_plan(n, false));

    session.set_parallelism(1);
    let baseline = run_all(&session.db, &plans);

    for degree in DEGREES {
        session.set_parallelism(degree);
        let db = &session.db;
        std::thread::scope(|scope| {
            let workers: Vec<_> =
                (0..SESSIONS).map(|_| scope.spawn(|| run_all(db, &plans))).collect();
            for (tid, worker) in workers.into_iter().enumerate() {
                let results = worker.join().expect("session thread panicked");
                assert_eq!(
                    results, baseline,
                    "session {tid} at degree {degree} diverged from serial"
                );
            }
        });
    }
}

#[test]
fn concurrent_olap_sessions_match_serial_baseline() {
    let n = 300;
    let queries = olap_queries(n);
    for method in [StorageMethod::Oson, StorageMethod::Rel] {
        let mut session = olap_db(method, n);
        session.db.set_morsel_rows(32);

        let plans: Vec<Query> = queries
            .iter()
            .map(|q| {
                let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
                session.plan(&q.sql, &binds).unwrap()
            })
            .collect();

        session.set_parallelism(1);
        let baseline = run_all(&session.db, &plans);

        for degree in DEGREES {
            session.set_parallelism(degree);
            let db = &session.db;
            std::thread::scope(|scope| {
                let workers: Vec<_> =
                    (0..SESSIONS).map(|_| scope.spawn(|| run_all(db, &plans))).collect();
                for (tid, worker) in workers.into_iter().enumerate() {
                    let results = worker.join().expect("session thread panicked");
                    assert_eq!(
                        results,
                        baseline,
                        "{}: session {tid} at degree {degree} diverged",
                        method.label()
                    );
                }
            });
        }
    }
}

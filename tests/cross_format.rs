//! Integration test: cross-format agreement over the workload corpora —
//! every collection document round-trips through all three formats, and
//! path evaluation agrees across text streaming, DOM, BSON and OSON.

use fsdm::json::ValueDom;
use fsdm::sqljson::{parse_path, PathEvaluator};
use fsdm_workloads::{generate, rng_for, Collection};

fn corpus(c: Collection, n: usize) -> Vec<fsdm::json::JsonValue> {
    let mut rng = rng_for(c.name(), 77);
    (0..n).map(|i| generate(c, &mut rng, i)).collect()
}

#[test]
fn all_small_collections_roundtrip_all_formats() {
    for c in Collection::ALL {
        if matches!(c, Collection::TwitterMsgArchive | Collection::SensorData) {
            continue; // covered by the dedicated large-doc test below
        }
        for d in corpus(c, 25) {
            let text = fsdm::json::to_string(&d);
            assert_eq!(fsdm::json::parse(&text).unwrap(), d, "{} text", c.name());
            let bson = fsdm::bson::encode(&d).unwrap();
            assert!(fsdm::bson::decode(&bson).unwrap().eq_unordered(&d), "{} bson", c.name());
            let oson = fsdm::oson::encode(&d).unwrap();
            assert!(fsdm::oson::decode(&oson).unwrap().eq_unordered(&d), "{} oson", c.name());
        }
    }
}

#[test]
fn large_documents_roundtrip_oson() {
    let mut rng = rng_for("big", 1);
    let archive = generate(Collection::TwitterMsgArchive, &mut rng, 0);
    let oson = fsdm::oson::encode(&archive).unwrap();
    // wide-offset mode must engage for multi-megabyte documents
    assert!(oson.len() > 500_000);
    let back = fsdm::oson::decode(&oson).unwrap();
    assert!(back.eq_unordered(&archive));
}

#[test]
fn path_engines_agree_on_purchase_orders() {
    let paths = [
        "$.purchaseOrder.reference",
        "$.purchaseOrder.items[*].partno",
        "$.purchaseOrder.items[0].unitprice",
        "$.purchaseOrder.items[*]?(@.quantity > 10).itemno",
        "$.purchaseOrder.items.size()",
    ];
    for d in corpus(Collection::PurchaseOrder, 40) {
        let text = fsdm::json::to_string(&d);
        let bson = fsdm::bson::encode(&d).unwrap();
        let oson = fsdm::oson::encode(&d).unwrap();
        for p in paths {
            let jp = parse_path(p).unwrap();
            let dom = ValueDom::new(&d);
            let mut e = PathEvaluator::new(jp.clone());
            let expected = e.evaluate_values(&dom);

            let via_text = fsdm::sqljson::streaming::eval_text(&text, &jp).unwrap();
            assert_eq!(via_text.len(), expected.len(), "{p} text");

            let bdoc = fsdm::bson::BsonDoc::new(&bson).unwrap();
            let mut eb = PathEvaluator::new(jp.clone());
            assert_eq!(eb.evaluate_values(&bdoc).len(), expected.len(), "{p} bson");

            let odoc = fsdm::oson::OsonDoc::new(&oson).unwrap();
            let mut eo = PathEvaluator::new(jp.clone());
            let via_oson = eo.evaluate_values(&odoc);
            assert_eq!(via_oson.len(), expected.len(), "{p} oson");
            for (a, b) in expected.iter().zip(&via_oson) {
                assert!(a.eq_unordered(b), "{p}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn dataguide_identical_regardless_of_insertion_order() {
    use fsdm::dataguide::DataGuide;
    let docs = corpus(Collection::EventMessage, 30);
    let mut forward = DataGuide::new();
    for d in &docs {
        forward.add_document(d);
    }
    let mut backward = DataGuide::new();
    for d in docs.iter().rev() {
        backward.add_document(d);
    }
    let fr: Vec<(String, String)> =
        forward.rows().into_iter().map(|r| (r.path, r.type_str)).collect();
    let br: Vec<(String, String)> =
        backward.rows().into_iter().map(|r| (r.path, r.type_str)).collect();
    assert_eq!(fr, br, "path/type rows are order-independent");
}

#[test]
fn search_index_agrees_with_path_engine() {
    use fsdm::index::SearchIndex;
    let docs = corpus(Collection::PurchaseOrder, 60);
    let mut ix = SearchIndex::new();
    for (i, d) in docs.iter().enumerate() {
        ix.insert(i as u64, d);
    }
    // pick a partno that exists and cross-check index vs engine
    let target = docs[7]
        .get("purchaseOrder")
        .unwrap()
        .get("items")
        .unwrap()
        .at(0)
        .unwrap()
        .get("partno")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let via_index = ix.docs_with_value("$.purchaseOrder.items.partno", &target);
    let jp = parse_path(&format!("$.purchaseOrder.items[*]?(@.partno == \"{target}\")")).unwrap();
    let mut ev = PathEvaluator::new(jp);
    let via_engine: Vec<u64> = docs
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            let dom = ValueDom::new(d);
            ev.exists(&dom)
        })
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(via_index, via_engine);
    assert!(via_index.contains(&7));
}

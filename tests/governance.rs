//! Integration test: query governance and fault injection keep their
//! contracts end-to-end.
//!
//! The governance bargain (DESIGN.md §15) has two sides. Generous
//! limits must be invisible: with a one-minute deadline and a terabyte
//! budget armed, every workload query returns byte-identical results at
//! every degree. Tight limits must be *deterministic typed errors*: a
//! zero timeout, a pre-cancelled handle, or a tiny memory budget each
//! produce one exact error message — never a panic, never a racy
//! variant — and an injected worker panic is isolated into a typed
//! error after which the same `Database` answers the same query with
//! the same bytes.
//!
//! Failpoint arming is process-global, so every test here that runs
//! queries holds a [`FailScope`] (armed or disarmed) — the scope's
//! internal lock serializes them against each other; tests in *other*
//! files never arm failpoints.

use fsdm::fault::{catalog, FailMode, FailScope};
use fsdm::sqljson::Datum;
use fsdm::store::{CancelReason, ErrorKind, Query, QueryResult};
use fsdm_bench::setup::{nobench_db, nobench_q11_plan, nobench_q5_bind};

const DEGREES: [usize; 2] = [1, 4];

/// NoBench Q1–Q10 as (sql, binds) plus the Q11 plan.
fn workload(n: usize) -> (Vec<(String, Vec<Datum>)>, Query) {
    let sqls = (1..=10)
        .map(|q| {
            let sql = fsdm::workloads::nobench::query_sql(q, n);
            let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
            (sql, binds)
        })
        .collect();
    (sqls, nobench_q11_plan(n, false))
}

#[test]
fn generous_limits_are_invisible_at_every_degree() {
    let _scope = FailScope::disarmed();
    let n = 400;
    let mut session = nobench_db(n);
    session.db.set_morsel_rows(64); // many morsels: checkpoints actually run
    let (sqls, q11) = workload(n);

    // reference: no governance at all
    let mut reference: Vec<QueryResult> = sqls
        .iter()
        .map(|(sql, binds)| session.execute_with(sql, binds).expect("ungoverned query runs"))
        .collect();
    reference.push(session.db.execute(&q11).expect("ungoverned Q11 runs"));

    session.set_statement_timeout(Some(60_000));
    session.set_mem_limit(Some(1 << 40));
    for degree in DEGREES {
        session.db.set_parallelism(degree);
        for (i, (sql, binds)) in sqls.iter().enumerate() {
            let r = session.execute_with(sql, binds).expect("governed query runs");
            assert_eq!(r, reference[i], "Q{} governed at degree {degree}", i + 1);
        }
        let r = session.db.execute(&q11).expect("governed Q11 runs");
        assert_eq!(r, reference[10], "Q11 governed at degree {degree}");
    }
}

#[test]
fn a_zero_timeout_is_a_deterministic_deadline_error() {
    let _scope = FailScope::disarmed();
    let n = 300;
    let mut session = nobench_db(n);
    // the ring is armed with an unreachable threshold: only governance
    // kills may enter, proving `record_killed` bypasses the threshold
    session.db.set_slow_log(u64::MAX, 8);
    session.set_statement_timeout(Some(0));
    let sql = fsdm::workloads::nobench::query_sql(1, n);
    for degree in DEGREES {
        session.db.set_parallelism(degree);
        let err = session.execute(&sql).expect_err("a zero deadline must kill the statement");
        assert_eq!(err.message, "statement deadline exceeded (timeout 0 ms)", "degree {degree}");
    }
    let entries = session.db.slow_log().entries();
    assert_eq!(entries.len(), DEGREES.len(), "every killed statement enters the ring");
    for e in &entries {
        assert_eq!(e.cancel_reason, Some("deadline"));
        assert_eq!(e.source, sql);
    }
    assert!(
        session.db.slow_log_json().contains("\"cancel_reason\":\"deadline\""),
        "the ring dump must carry the kill reason"
    );
    // the deadline leaves nothing behind: clearing it revives the session
    session.set_statement_timeout(None);
    session.execute(&sql).expect("clearing the timeout revives the session");
}

#[test]
fn a_pre_cancelled_handle_is_a_deterministic_cancel_error() {
    let _scope = FailScope::disarmed();
    let n = 300;
    let mut session = nobench_db(n);
    let plan = session.plan(&fsdm::workloads::nobench::query_sql(2, n), &[]).unwrap();
    let handle = session.cancel_handle();
    for degree in DEGREES {
        session.db.set_parallelism(degree);
        assert!(handle.cancel(), "first cancel wins");
        assert!(handle.is_cancelled());
        // `Database::execute` honors a pending cross-thread cancel; the
        // session's `&mut` entry points reset it at statement entry
        let err = session.db.execute(&plan).expect_err("a cancelled token must kill the statement");
        assert_eq!(err.kind, ErrorKind::Cancelled(CancelReason::User), "degree {degree}");
        assert_eq!(err.message, "statement cancelled (user)", "degree {degree}");
        // a fresh statement through the session resets the token
        session
            .execute_with(&fsdm::workloads::nobench::query_sql(2, n), &[])
            .expect("the next session statement runs clean");
        assert!(!handle.is_cancelled(), "statement entry resets the token");
    }
}

#[test]
fn a_tiny_memory_budget_is_a_deterministic_budget_error() {
    let _scope = FailScope::disarmed();
    let n = 300;
    let mut session = nobench_db(n);
    session.set_mem_limit(Some(1024));
    // an unfiltered group-by: the first morsel partial alone charges
    // (1 key + 1 agg) x 32 bytes x 300 rows ≈ 19 KiB against the budget
    let sql = "select json_value(jdoc, '$.thousandth' returning number) t, count(*) \
               from nobench group by json_value(jdoc, '$.thousandth' returning number)";
    let plan = session.plan(sql, &[]).unwrap();
    for degree in DEGREES {
        session.db.set_parallelism(degree);
        let err = session.db.execute(&plan).expect_err("a 1 KiB budget must kill the group-by");
        assert_eq!(err.kind, ErrorKind::BudgetExceeded, "degree {degree}");
        assert_eq!(err.message, "memory budget exceeded (limit 1024 bytes)", "degree {degree}");
    }
    session.set_mem_limit(None);
    session.db.execute(&plan).expect("clearing the budget revives the session");
}

#[test]
fn an_injected_worker_panic_is_isolated_and_the_rerun_is_identical() {
    fsdm::fault::silence_failpoint_panics();
    let scope = FailScope::disarmed();
    let n = 400;
    let mut session = nobench_db(n);
    session.db.set_morsel_rows(32);
    let plan = session.plan(&fsdm::workloads::nobench::query_sql(3, n), &[]).unwrap();
    let baseline = session.db.execute(&plan).expect("disarmed baseline runs");
    for degree in DEGREES {
        session.db.set_parallelism(degree);
        scope.also(catalog::FP_EXEC_MORSEL, FailMode::Panic);
        let err = session.db.execute(&plan).expect_err("an armed panic must surface as an error");
        assert_eq!(
            err.kind,
            ErrorKind::WorkerPanic { morsel: 0 },
            "degree {degree}: the first morsel's panic wins the election"
        );
        assert!(err.message.contains("worker panicked at morsel 0"), "degree {degree}: {err}");
        fsdm::fault::reset();
        // the panic left no residue: same database, same plan, same bytes
        let rerun = session.db.execute(&plan).expect("the database survives a worker panic");
        assert_eq!(rerun, baseline, "degree {degree}: post-panic rerun diverged");
    }
}

/// The error-election pin (see `run_morsels`): with panic mode armed on
/// every morsel at degree 4, workers panic concurrently and the sibling
/// cancellation (peer-panic) races the failures — yet the reported
/// error must come from morsel 0 on every repetition, because primary
/// errors outrank governance echoes and the lowest failing index wins.
#[test]
fn the_lowest_failing_morsel_wins_even_when_cancellation_races() {
    fsdm::fault::silence_failpoint_panics();
    let scope = FailScope::disarmed();
    let n = 500;
    let mut session = nobench_db(n);
    session.db.set_morsel_rows(16); // 32 morsels: plenty of racing peers
    session.db.set_parallelism(4);
    let plan = session.plan(&fsdm::workloads::nobench::query_sql(1, n), &[]).unwrap();
    for rep in 0..20 {
        scope.also(catalog::FP_EXEC_MORSEL, FailMode::Panic);
        let err = session.db.execute(&plan).expect_err("armed panic fails the pipeline");
        assert_eq!(err.kind, ErrorKind::WorkerPanic { morsel: 0 }, "rep {rep}: {err}");
        fsdm::fault::reset();
    }
}

#[test]
fn a_disarmed_run_never_consults_the_failpoint_registry() {
    let _scope = FailScope::disarmed();
    let n = 300;
    let mut session = nobench_db(n);
    let (sqls, q11) = workload(n);
    for (sql, binds) in &sqls {
        session.execute_with(sql, binds).expect("disarmed query runs");
    }
    session.db.execute(&q11).expect("disarmed Q11 runs");
    assert_eq!(
        fsdm::fault::total_hits(),
        0,
        "the whole workload must stay on the one-relaxed-load fast path"
    );
}

/// A reduced chaos sweep as a tier-1 gate: every seeded fault schedule
/// over both workloads must classify as baseline-identical or typed
/// error, with a byte-identical clean rerun (`chaos::run` serializes
/// itself on the failpoint scope lock).
#[test]
fn chaos_smoke_finds_no_contract_violations() {
    use fsdm_bench::chaos::{run, ChaosConfig};
    fsdm::fault::silence_failpoint_panics();
    let cfg =
        ChaosConfig { scale: 160, olap_scale: 80, schedules: 24, seed: 3, watchdog_ms: 30_000 };
    let report = run(&cfg);
    assert_eq!(report.outcomes.len(), 24);
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "chaos violations: {:?}",
        violations
            .iter()
            .map(|o| format!("{} {}={}: {}", o.query, o.point, o.mode, o.detail))
            .collect::<Vec<_>>()
    );
}

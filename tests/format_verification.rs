//! Integration test: the deep structural verifiers accept every document
//! the encoders produce across the paper's workload generators — NoBench,
//! the OLAP corpus, and all real-world collection shapes. This is the
//! end-to-end guarantee behind `debug_assert!(validate())` in the
//! encoders: no workload can emit bytes its own verifier rejects.

use fsdm::bson::BsonDoc;
use fsdm::oson::OsonDoc;
use fsdm_workloads::{generate, nobench, olap, rng_for, Collection};

fn assert_verifies(d: &fsdm::json::JsonValue, what: &str) {
    let oson = fsdm::oson::encode(d).unwrap_or_else(|e| panic!("{what}: oson encode: {e}"));
    let doc = OsonDoc::new(&oson).unwrap_or_else(|e| panic!("{what}: oson framing: {e}"));
    if let Err(e) = doc.validate() {
        panic!("{what}: oson verifier rejected encoder output: {e}");
    }
    // BSON requires an object root; every workload document is an object
    let bson = fsdm::bson::encode(d).unwrap_or_else(|e| panic!("{what}: bson encode: {e}"));
    let doc = BsonDoc::new(&bson).unwrap_or_else(|e| panic!("{what}: bson framing: {e}"));
    if let Err(e) = doc.validate() {
        panic!("{what}: bson verifier rejected encoder output: {e}");
    }
}

#[test]
fn nobench_documents_verify() {
    let mut rng = rng_for("nobench-verify", 11);
    for i in 0..200 {
        assert_verifies(&nobench::doc(&mut rng, i), "nobench");
    }
}

#[test]
fn olap_corpus_verifies() {
    let mut rng = rng_for("olap-verify", 12);
    for (i, d) in olap::corpus(&mut rng, 100).iter().enumerate() {
        assert_verifies(d, &format!("olap[{i}]"));
    }
}

#[test]
fn all_collections_verify() {
    for c in Collection::ALL {
        let n = if matches!(c, Collection::TwitterMsgArchive | Collection::SensorData) {
            2 // multi-megabyte documents: enough to cover wide-offset mode
        } else {
            25
        };
        let mut rng = rng_for(c.name(), 13);
        for i in 0..n {
            assert_verifies(&generate(c, &mut rng, i), c.name());
        }
    }
}

//! Integration test: the vectorized columnar pipeline is invisible in
//! results. With the NOBENCH Q1–Q3 virtual columns materialized into the
//! VC-IMC, every workload query — NOBENCH Q1–Q11 and the OLAP Table-13
//! set — must return byte-identical `QueryResult`s with the columnar
//! executor on and off, at degree 1 and 4, under a tiny morsel size that
//! forces many batches per scan. On top of identity, the IMC-covered
//! Q1–Q3 must actually *take* the columnar pipeline (EXPLAIN shows
//! `mode=columnar`), and the optimizer's virtual-column substitution must
//! stay translation-valid under planck.

use fsdm::sqljson::Datum;
use fsdm_bench::setup::{
    add_nobench_columnar_vcs, bind_datum, nobench_db, nobench_q11_plan, nobench_q5_bind, olap_db,
    olap_queries, StorageMethod,
};
use fsdm_store::optimizer::optimize;
use fsdm_store::{infer, rewrite_violations};

const DEGREES: [usize; 2] = [1, 4];

#[test]
fn nobench_columnar_identical_to_row_at_every_degree() {
    let n = 500;
    let mut session = nobench_db(n);
    add_nobench_columnar_vcs(&mut session);
    session.db.set_morsel_rows(64); // ~8 batches per scan even at n=500
    let queries: Vec<(String, Vec<Datum>)> = (1..=10)
        .map(|q| {
            let sql = fsdm::workloads::nobench::query_sql(q, n);
            let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
            (sql, binds)
        })
        .collect();
    let q11 = nobench_q11_plan(n, false);

    let mut baseline = None;
    for degree in DEGREES {
        session.set_parallelism(degree);
        for columnar in [false, true] {
            session.db.set_columnar(columnar);
            let mut results = Vec::new();
            for (sql, binds) in &queries {
                results.push(session.execute_with(sql, binds).unwrap());
            }
            results.push(session.db.execute(&q11).unwrap());
            match &baseline {
                None => baseline = Some(results),
                Some(b) => assert_eq!(
                    &results, b,
                    "columnar={columnar} degree={degree} diverged from the row baseline"
                ),
            }
        }
    }
    session.db.set_columnar(true);
}

#[test]
fn olap_columnar_identical_to_row_at_every_degree() {
    let n = 300;
    let queries = olap_queries(n);
    for method in [StorageMethod::Oson, StorageMethod::Rel] {
        let mut session = olap_db(method, n);
        session.db.set_morsel_rows(32);
        let mut baseline = None;
        for degree in DEGREES {
            session.set_parallelism(degree);
            for columnar in [false, true] {
                session.db.set_columnar(columnar);
                let results: Vec<_> = queries
                    .iter()
                    .map(|q| {
                        let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
                        session.execute_with(&q.sql, &binds).unwrap()
                    })
                    .collect();
                match &baseline {
                    None => baseline = Some(results),
                    Some(b) => assert_eq!(
                        &results,
                        b,
                        "{}: columnar={columnar} degree={degree} diverged",
                        method.label()
                    ),
                }
            }
        }
    }
}

/// The acceptance gate on pipeline *selection*: with the Q1–Q3 virtual
/// columns resident in the IMC, the optimizer substitutes the JSON
/// operators for vector-backed columns and the executor picks the
/// columnar pipeline — visible in EXPLAIN as `mode=columnar`. With the
/// columnar executor switched off, the same plans report `mode=row`.
#[test]
fn explain_marks_imc_covered_queries_columnar() {
    let n = 200;
    let mut session = nobench_db(n);
    add_nobench_columnar_vcs(&mut session);
    for q in 1..=3 {
        let sql = fsdm::workloads::nobench::query_sql(q, n);
        let text = session.explain(&sql, &[]).unwrap();
        assert!(text.contains("mode=columnar"), "Q{q} not columnar:\n{text}");

        let plan = session.plan(&sql, &[]).unwrap();
        let optimized = optimize(&session.db, plan);
        assert_eq!(session.db.plan_mode(&optimized), "columnar", "Q{q}");
        session.db.set_columnar(false);
        assert_eq!(session.db.plan_mode(&optimized), "row", "Q{q} with columnar off");
        session.db.set_columnar(true);
    }
    // a query none of the kernels cover stays on the row pipeline
    let text = session.explain(&fsdm::workloads::nobench::query_sql(8, n), &[]).unwrap();
    assert!(!text.contains("mode=columnar"), "Q8 must stay row:\n{text}");
}

/// Planck soundness for the substituted plans: replacing a JSON operator
/// with its materialized virtual column must be translation-valid — the
/// optimized plan's inferred schema matches the original's, with no
/// rewrite violations, for the whole workload set.
#[test]
fn vc_substitution_is_translation_valid() {
    let n = 200;
    let mut session = nobench_db(n);
    add_nobench_columnar_vcs(&mut session);
    for q in 1..=10 {
        let sql = fsdm::workloads::nobench::query_sql(q, n);
        let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
        let plan = session.plan(&sql, &binds).unwrap();
        let optimized = optimize(&session.db, plan.clone());
        let violations = rewrite_violations(&session.db, &plan, &optimized);
        assert!(violations.is_empty(), "Q{q}: {violations:?}");
        assert_eq!(
            infer(&session.db, &plan).schema.render(),
            infer(&session.db, &optimized).schema.render(),
            "Q{q} schema drifted under substitution"
        );
    }
    let q11 = nobench_q11_plan(n, false);
    let optimized = optimize(&session.db, q11.clone());
    let violations = rewrite_violations(&session.db, &q11, &optimized);
    assert!(violations.is_empty(), "Q11: {violations:?}");
}

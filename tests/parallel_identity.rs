//! Integration test: the morsel-driven parallel executor is invisible in
//! results. Every workload query — NOBENCH Q1–Q11 and the OLAP Table-13
//! set — must return byte-identical `QueryResult`s at degree 1, 2 and 8,
//! including the row order produced by Sort ties and Window/LAG over a
//! tie-heavy key. A tiny morsel size forces many morsels per operator so
//! the cross-morsel reassembly actually gets exercised at small scales.

use fsdm::sqljson::Datum;
use fsdm::store::{Database, Expr, Query, Table};
use fsdm_bench::setup::{
    bind_datum, nobench_db, nobench_q11_plan, nobench_q5_bind, olap_db, olap_queries, StorageMethod,
};

/// `Database` (and everything a plan closes over) must be shareable
/// across the executor's scoped worker threads. This is the compile-time
/// acceptance gate for the `RefCell` removal: it fails to build if any
/// layer regresses to single-thread interior mutability.
#[test]
fn database_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Table>();
    assert_send_sync::<Expr>();
    assert_send_sync::<Query>();
}

const DEGREES: [usize; 3] = [1, 2, 8];

#[test]
fn nobench_results_identical_at_every_degree() {
    let n = 500;
    let mut session = nobench_db(n);
    session.db.set_morsel_rows(64); // ~8 morsels per scan even at n=500
    let mut queries: Vec<(String, Vec<Datum>)> = (1..=10)
        .map(|q| {
            let sql = fsdm::workloads::nobench::query_sql(q, n);
            let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
            (sql, binds)
        })
        .collect();
    queries.push((String::new(), vec![])); // placeholder slot for Q11 below
    let q11 = nobench_q11_plan(n, false);

    let mut baseline = None;
    for degree in DEGREES {
        session.set_parallelism(degree);
        let mut results = Vec::new();
        for (sql, binds) in &queries {
            if sql.is_empty() {
                results.push(session.db.execute(&q11).unwrap());
            } else {
                results.push(session.execute_with(sql, binds).unwrap());
            }
        }
        match &baseline {
            None => baseline = Some(results),
            Some(b) => assert_eq!(&results, b, "degree {degree} diverged from degree 1"),
        }
    }
}

#[test]
fn olap_results_identical_at_every_degree() {
    let n = 300;
    let queries = olap_queries(n);
    for method in [StorageMethod::Oson, StorageMethod::Rel] {
        let mut session = olap_db(method, n);
        session.db.set_morsel_rows(32);
        let mut baseline = None;
        for degree in DEGREES {
            session.set_parallelism(degree);
            let results: Vec<_> = queries
                .iter()
                .map(|q| {
                    let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
                    session.execute_with(&q.sql, &binds).unwrap()
                })
                .collect();
            match &baseline {
                None => baseline = Some(results),
                Some(b) => {
                    assert_eq!(&results, b, "{}: degree {degree} diverged", method.label())
                }
            }
        }
    }
}

/// Sort on a two-valued key (`$.bool`) makes almost every row a tie, and
/// LAG over the same ordering reads its neighbor across morsel borders:
/// the stable tie order (input order) must survive any degree.
#[test]
fn tie_heavy_sort_and_lag_keep_deterministic_order() {
    let n = 400;
    let mut session = nobench_db(n);
    session.db.set_morsel_rows(16); // 25 morsels: plenty of seams
    let sort_sql = "SELECT did, JSON_VALUE(jdoc, '$.bool') b FROM nobench \
                    ORDER BY JSON_VALUE(jdoc, '$.bool')";
    let lag_sql = "SELECT did, LAG(did, 1, did) OVER (ORDER BY JSON_VALUE(jdoc, '$.bool')) p \
                   FROM nobench";
    let mut baseline = None;
    for degree in DEGREES {
        session.set_parallelism(degree);
        let sorted = session.execute(sort_sql).unwrap();
        let lagged = session.execute(lag_sql).unwrap();
        assert_eq!(sorted.rows.len(), n);
        match &baseline {
            None => baseline = Some((sorted, lagged)),
            Some((s, l)) => {
                assert_eq!(&sorted, s, "sort ties broke at degree {degree}");
                assert_eq!(&lagged, l, "LAG broke at degree {degree}");
            }
        }
    }
}

//! Integration test: structured tracing produces well-formed span trees
//! for every workload query — NOBENCH Q1–Q11 and the OLAP Table-13 set —
//! at executor degree 1 and 4. "Well-formed" is the full contract:
//! every span is balanced (`end >= start`), children nest inside their
//! parents, implicit parents share the child's thread lane (only the
//! executor's explicit cross-thread handoff may change lanes), the
//! morsel span count matches what `QueryProfile` measured, and both
//! exporters (Chrome trace-event JSON, collapsed stacks) emit output the
//! in-repo parsers accept.

use fsdm::obs::catalog::{
    SPAN_EXEC_MORSEL, SPAN_EXEC_OP, SPAN_EXEC_PIPELINE, SPAN_EXEC_WORKER, SPAN_SQLJSON_EVAL,
    SPAN_STORE_QUERY,
};
use fsdm::obs::trace::Trace;
use fsdm::store::QueryProfile;
use fsdm_bench::setup::{
    bind_datum, nobench_db, nobench_q11_plan, nobench_q5_bind, olap_db, olap_queries, StorageMethod,
};

const DEGREES: [usize; 2] = [1, 4];

/// The per-trace contract every workload query must satisfy.
fn check_trace(label: &str, degree: usize, trace: &Trace, profile: &QueryProfile) {
    trace.validate().unwrap_or_else(|e| panic!("{label} at degree {degree}: {e}"));
    assert!(
        trace.count(SPAN_STORE_QUERY) >= 1,
        "{label} at degree {degree}: no root store.query span"
    );
    let ops = profile.ops().len();
    assert!(
        trace.count(SPAN_EXEC_OP) >= ops,
        "{label} at degree {degree}: {} exec.op spans for {ops} profiled operators",
        trace.count(SPAN_EXEC_OP)
    );
    assert_eq!(
        trace.count(SPAN_EXEC_MORSEL),
        profile.total_morsels(),
        "{label} at degree {degree}: morsel spans must match the profile's morsel count"
    );
    if degree == 1 {
        // the serial path runs morsels inline on the caller's thread:
        // no worker spans, and pipelines only where morsels ran
        assert_eq!(
            trace.count(SPAN_EXEC_WORKER),
            0,
            "{label}: serial execution must not spawn worker spans"
        );
    }
    if profile.total_morsels() > 0 {
        assert!(
            trace.count(SPAN_EXEC_PIPELINE) >= 1,
            "{label} at degree {degree}: morsels ran without a pipeline span"
        );
    }
    check_exports(label, degree, trace);
}

/// Both exporters must produce output the in-repo parsers accept.
fn check_exports(label: &str, degree: usize, trace: &Trace) {
    let chrome = trace.to_chrome_json();
    fsdm::json::parse(&chrome)
        .unwrap_or_else(|e| panic!("{label} at degree {degree}: Chrome JSON re-parse: {e}"));
    assert!(chrome.contains("\"traceEvents\""), "{label}: missing traceEvents array");
    let events = chrome.matches("\"ph\":\"X\"").count();
    assert_eq!(
        events,
        trace.spans.len(),
        "{label} at degree {degree}: one X event per recorded span"
    );

    let collapsed = trace.to_collapsed();
    if !trace.spans.is_empty() {
        assert!(!collapsed.is_empty(), "{label}: spans recorded but collapsed export empty");
    }
    for line in collapsed.lines() {
        let (stack, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("{label}: collapsed line without a value: {line}"));
        assert!(!stack.is_empty(), "{label}: empty collapsed stack");
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{label}: non-numeric collapsed value: {line}"));
    }
}

#[test]
fn nobench_traces_are_well_formed_at_every_degree() {
    let n = 400;
    let mut session = nobench_db(n);
    session.db.set_morsel_rows(64); // force multi-morsel scans at small scale
    let q11 = nobench_q11_plan(n, false);
    for degree in DEGREES {
        session.set_parallelism(degree);
        let mut worker_spans = 0;
        for q in 1..=10 {
            let sql = fsdm::workloads::nobench::query_sql(q, n);
            let binds = if q == 5 { vec![nobench_q5_bind(n)] } else { vec![] };
            let (_, profile, trace) = session.trace_with(&sql, &binds).unwrap();
            let profile = profile.unwrap_or_else(|| panic!("Q{q}: no profile from trace_with"));
            check_trace(&format!("Q{q}"), degree, &trace, &profile);
            worker_spans += trace.count(SPAN_EXEC_WORKER);
            if q == 8 {
                // Q1–Q7 rewrite to materialized DMDV column reads (no
                // per-row path evaluation — the trace honestly shows
                // none); Q8's array predicate cannot, so it must walk
                // paths through the engine
                assert!(
                    trace.count(SPAN_SQLJSON_EVAL) > 0,
                    "Q8 evaluates paths but recorded no sqljson.eval spans"
                );
            }
        }
        let (_, profile, trace) = session.db.execute_traced(&q11).unwrap();
        check_trace("Q11", degree, &trace, &profile);
        worker_spans += trace.count(SPAN_EXEC_WORKER);
        if degree > 1 {
            assert!(
                worker_spans > 0,
                "degree {degree} ran the whole NOBENCH set without a single worker span"
            );
        }
    }
}

#[test]
fn olap_traces_are_well_formed_at_every_degree() {
    let n = 200;
    let queries = olap_queries(n);
    for method in [StorageMethod::Oson, StorageMethod::Rel] {
        let mut session = olap_db(method, n);
        session.db.set_morsel_rows(32);
        for degree in DEGREES {
            session.set_parallelism(degree);
            for (i, q) in queries.iter().enumerate() {
                let binds: Vec<_> = q.binds.iter().map(|b| bind_datum(b)).collect();
                let label = format!("{} OLAP Q{}", method.label(), i + 1);
                let (_, profile, trace) = session.trace_with(&q.sql, &binds).unwrap();
                let profile =
                    profile.unwrap_or_else(|| panic!("{label}: no profile from trace_with"));
                check_trace(&label, degree, &trace, &profile);
            }
        }
    }
}

//! Tier-1: planck inference soundness. Over arbitrary generated plans on
//! the NoBench corpus, the inferred output schema must agree with what
//! the executor actually materializes — same column names, every cell
//! admitted by the inferred scalar type, and a column inferred
//! non-nullable must never materialize SQL NULL (nullability is an
//! over-approximation, never an under-approximation). The same generator
//! then drives the optimizer contract: every rewrite is translation-valid
//! (schema-equivalent, checked again here on top of `optimize()`'s own
//! `debug_assert!`) and `optimize` is idempotent, on generated plans and
//! on every workload query.

use fsdm_bench::setup::{
    add_nobench_vcs, bind_datum, nobench_guided_db, nobench_q11_plan, nobench_q5_bind,
    olap_guided_db, olap_queries,
};
use fsdm_planck::{infer, rewrite_violations, Database, Query};
use fsdm_store::expr::ArithOp;
use fsdm_store::optimizer::optimize;
use fsdm_store::query::{AggSpec, SortKey, WindowFun};
use fsdm_store::{AggFun, CmpOp, Datum, Expr};
use fsdm_workloads::nobench;
use proptest::prelude::*;
use std::sync::OnceLock;

const N: usize = 80;

/// One shared NoBench database (with the Figure 6 virtual columns), so
/// the per-case cost is plan building, not corpus ingestion.
fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let mut s = nobench_guided_db(N);
        add_nobench_vcs(&mut s);
        s.db
    })
}

/// What the generator tracks about each output column — just enough to
/// build well-typed expressions on top (the inference pass itself is the
/// system under test, so the generator keeps its own books).
#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Num,
    Str,
    Json,
}

/// A decision tape: the proptest byte vector consumed as a stream of
/// bounded choices. Exhausted tapes read as zero, so every prefix is a
/// valid (shorter) plan program.
struct Tape<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Tape<'_> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn pick(&mut self, n: usize) -> usize {
        self.next() as usize % n.max(1)
    }
}

fn cols_of(kinds: &[Kind], want: Kind) -> Vec<usize> {
    kinds.iter().enumerate().filter_map(|(i, k)| (*k == want).then_some(i)).collect()
}

/// A numeric-valued expression over the current schema. The generator
/// guarantees at least one numeric column survives every operator, so
/// the column arm is always available.
fn num_expr(tape: &mut Tape, kinds: &[Kind], depth: usize) -> Expr {
    let nums = cols_of(kinds, Kind::Num);
    let jsons = cols_of(kinds, Kind::Json);
    match tape.pick(if depth > 0 { 4 } else { 3 }) {
        0 => Expr::Lit(Datum::from((tape.next() as i64) - 128)),
        1 | 2 if !nums.is_empty() => Expr::Col(nums[tape.pick(nums.len())]),
        2 if !jsons.is_empty() => Expr::json_value(
            jsons[tape.pick(jsons.len())],
            fsdm_sqljson::parse_path("$.num").unwrap(),
            fsdm_sqljson::SqlType::Number,
        ),
        3 => {
            let op = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul][tape.pick(3)];
            Expr::Arith(
                Box::new(num_expr(tape, kinds, depth - 1)),
                op,
                Box::new(num_expr(tape, kinds, depth - 1)),
            )
        }
        _ => Expr::Lit(Datum::from(tape.next() as i64)),
    }
}

/// A string-valued expression; falls back to a literal when no string
/// column is in scope.
fn str_expr(tape: &mut Tape, kinds: &[Kind]) -> Expr {
    let strs = cols_of(kinds, Kind::Str);
    let jsons = cols_of(kinds, Kind::Json);
    match tape.pick(3) {
        0 if !strs.is_empty() => Expr::Col(strs[tape.pick(strs.len())]),
        1 if !jsons.is_empty() => Expr::json_value(
            jsons[tape.pick(jsons.len())],
            fsdm_sqljson::parse_path("$.str1").unwrap(),
            fsdm_sqljson::SqlType::Varchar2(32),
        ),
        _ => Expr::Lit(Datum::Str(format!("s{}", tape.next() % 10))),
    }
}

/// A boolean predicate over the current schema, type-consistent by
/// construction so inference reports zero errors on every generated plan.
fn pred(tape: &mut Tape, kinds: &[Kind], depth: usize) -> Expr {
    let jsons = cols_of(kinds, Kind::Json);
    let nums = cols_of(kinds, Kind::Num);
    match tape.pick(if depth > 0 { 7 } else { 5 }) {
        0 => {
            let op =
                [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][tape.pick(6)];
            Expr::cmp(num_expr(tape, kinds, 1), op, num_expr(tape, kinds, 1))
        }
        1 => {
            let op = [CmpOp::Eq, CmpOp::Ne][tape.pick(2)];
            Expr::cmp(str_expr(tape, kinds), op, str_expr(tape, kinds))
        }
        2 if !jsons.is_empty() => {
            let path = ["$.str1", "$.num", "$.dyn1"][tape.pick(3)];
            Expr::json_exists(
                jsons[tape.pick(jsons.len())],
                fsdm_sqljson::parse_path(path).unwrap(),
            )
        }
        3 => Expr::IsNull(Box::new(num_expr(tape, kinds, 0))),
        4 if !nums.is_empty() => Expr::InList(
            Box::new(Expr::Col(nums[tape.pick(nums.len())])),
            vec![Datum::from(1i64), Datum::from(2i64)],
        ),
        5 => Expr::Not(Box::new(pred(tape, kinds, depth - 1))),
        6 => {
            let a = pred(tape, kinds, depth - 1);
            let b = pred(tape, kinds, depth - 1);
            if tape.next().is_multiple_of(2) {
                Expr::And(Box::new(a), Box::new(b))
            } else {
                Expr::Or(Box::new(a), Box::new(b))
            }
        }
        _ => Expr::Like(Box::new(str_expr(tape, kinds)), "%a%".to_string()),
    }
}

/// Consume the tape into a plan over the `nobench` scan schema
/// `[did:num, jdoc:json, nb$str1:str, nb$num:num, nb$dyn1:num]`,
/// stacking 0–3 operators plus an optional self-join. Every plan built
/// here is well-typed: the soundness property asserts inference agrees,
/// not merely that it is total.
fn build_plan(tape: &mut Tape) -> Query {
    let mut kinds = vec![Kind::Num, Kind::Json, Kind::Str, Kind::Num, Kind::Num];
    let mut plan = if tape.next().is_multiple_of(2) {
        Query::scan("nobench")
    } else {
        Query::scan_where("nobench", pred(tape, &kinds, 2))
    };
    let mut windowed = false;
    for _ in 0..tape.pick(4) {
        match tape.pick(6) {
            0 => plan = plan.filter(pred(tape, &kinds, 2)),
            1 => {
                // Project: item 0 is always numeric so later operators
                // keep a numeric column to build on
                let n = 1 + tape.pick(3);
                let mut exprs = Vec::new();
                let mut new_kinds = Vec::new();
                for j in 0..n {
                    let name = format!("p{j}");
                    if j > 0 && tape.next().is_multiple_of(2) {
                        let i = tape.pick(kinds.len());
                        exprs.push((name, Expr::Col(i)));
                        new_kinds.push(kinds[i]);
                    } else {
                        exprs.push((name, num_expr(tape, &kinds, 2)));
                        new_kinds.push(Kind::Num);
                    }
                }
                plan = Query::Project { input: Box::new(plan), exprs };
                kinds = new_kinds;
            }
            2 => {
                // GroupBy: key over a non-Json column (the executor
                // never hashes raw JSON cells), COUNT(*) plus one more
                // aggregate
                let hashable: Vec<usize> = kinds
                    .iter()
                    .enumerate()
                    .filter_map(|(i, k)| (*k != Kind::Json).then_some(i))
                    .collect();
                let key = hashable[tape.pick(hashable.len())];
                let mut aggs = vec![AggSpec::count_star("cnt")];
                let extra_kind = if tape.next().is_multiple_of(2) {
                    aggs.push(AggSpec::of("total", AggFun::Sum, num_expr(tape, &kinds, 1)));
                    Kind::Num
                } else {
                    aggs.push(AggSpec::of("mn", AggFun::Min, str_expr(tape, &kinds)));
                    Kind::Str
                };
                plan = Query::GroupBy {
                    input: Box::new(plan),
                    keys: vec![("k".to_string(), Expr::Col(key))],
                    aggs,
                };
                kinds = vec![kinds[key], Kind::Num, extra_kind];
            }
            3 => {
                // Sort over 1–2 distinct non-Json columns
                let mut sortable: Vec<usize> = kinds
                    .iter()
                    .enumerate()
                    .filter_map(|(i, k)| (*k != Kind::Json).then_some(i))
                    .collect();
                let mut keys = Vec::new();
                for _ in 0..(1 + tape.pick(2)).min(sortable.len()) {
                    let i = sortable.remove(tape.pick(sortable.len()));
                    keys.push(if tape.next().is_multiple_of(2) {
                        SortKey::asc(Expr::Col(i))
                    } else {
                        SortKey::desc(Expr::Col(i))
                    });
                }
                plan = plan.sort(keys);
            }
            4 => plan = plan.limit(1 + tape.pick(16)),
            _ => {
                if !windowed {
                    windowed = true;
                    let order = cols_of(&kinds, Kind::Num)[0];
                    plan = Query::Window {
                        input: Box::new(plan),
                        name: "lagv".to_string(),
                        fun: WindowFun::Lag {
                            expr: num_expr(tape, &kinds, 1),
                            offset: 1,
                            default: None,
                        },
                        order: vec![SortKey::asc(Expr::Col(order))],
                    };
                    kinds.push(Kind::Num);
                }
            }
        }
    }
    if tape.next().is_multiple_of(4) {
        // numeric-keyed self equi-join; the right side projects to a
        // fresh name so the joined schema stays duplicate-free
        let right = Query::Project {
            input: Box::new(Query::scan("nobench")),
            exprs: vec![("rdid".to_string(), Expr::Col(0))],
        };
        let nums = cols_of(&kinds, Kind::Num);
        plan = Query::HashJoin {
            left: Box::new(plan),
            right: Box::new(right),
            left_key: nums[tape.pick(nums.len())],
            right_key: 0,
        };
        kinds.push(Kind::Num);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Inference soundness: zero errors on every generated (well-typed)
    /// plan, executed column names match the inferred schema exactly,
    /// every materialized cell is admitted by the inferred type, and no
    /// column inferred non-nullable ever materializes NULL.
    #[test]
    fn inferred_schema_agrees_with_execution(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let db = db();
        let mut tape = Tape { bytes: &bytes, pos: 0 };
        let plan = build_plan(&mut tape);
        let inf = infer(db, &plan);
        prop_assert_eq!(
            inf.errors(), 0,
            "generator emitted an ill-typed plan:\n{}\n{:?}", plan.render(), inf.diagnostics
        );
        let res = db.execute(&plan).expect("a zero-error plan must execute");
        let names: Vec<&str> = inf.schema.cols.iter().map(|c| c.name.as_str()).collect();
        let got: Vec<&str> = res.columns.iter().map(String::as_str).collect();
        prop_assert_eq!(&got, &names, "column names diverge on\n{}", plan.render());
        for row in &res.rows {
            prop_assert_eq!(row.len(), inf.schema.cols.len());
            for (d, c) in row.iter().zip(&inf.schema.cols) {
                if d.is_null() {
                    prop_assert!(
                        c.nullable,
                        "column `{}` inferred non-nullable but materialized NULL in\n{}",
                        c.name, plan.render()
                    );
                } else {
                    prop_assert!(
                        c.ty.admits(d),
                        "column `{}`: {:?} not admitted by inferred {:?} in\n{}",
                        c.name, d, c.ty, plan.render()
                    );
                }
            }
        }
    }

    /// The optimizer contract on arbitrary plans: every rewrite is
    /// translation-valid, idempotent, and result-identical.
    #[test]
    fn optimize_is_translation_valid_and_idempotent(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let db = db();
        let mut tape = Tape { bytes: &bytes, pos: 0 };
        let plan = build_plan(&mut tape);
        let once = optimize(db, plan.clone());
        let violations = rewrite_violations(db, &plan, &once);
        prop_assert!(
            violations.is_empty(),
            "rewrite of\n{}\ninto\n{}\nviolates: {violations:?}", plan.render(), once.render()
        );
        let twice = optimize(db, once.clone());
        prop_assert_eq!(
            format!("{once:?}"), format!("{twice:?}"),
            "optimize is not idempotent on\n{}", plan.render()
        );
        let raw = db.execute_unoptimized(&plan).expect("raw plan executes");
        let opt = db.execute_unoptimized(&once).expect("optimized plan executes");
        prop_assert_eq!(raw.columns, opt.columns);
        prop_assert_eq!(raw.rows, opt.rows, "rewrite changed results of\n{}", plan.render());
    }
}

/// Satellite check pinned as a plain test: `optimize` is idempotent and
/// translation-valid on every workload query — NoBench Q1–Q11 (both Q11
/// variants) and OLAP Table-13 plus the registered view plans.
#[test]
fn workload_queries_optimize_idempotently() {
    let mut plans: Vec<(String, &'static Database, Query)> = Vec::new();

    static NB: OnceLock<fsdm_sql::Session> = OnceLock::new();
    let nb = NB.get_or_init(|| {
        let mut s = nobench_guided_db(N);
        add_nobench_vcs(&mut s);
        s
    });
    for q in 1..=10 {
        let sql = nobench::query_sql(q, N);
        let binds = if q == 5 { vec![nobench_q5_bind(N)] } else { vec![] };
        plans.push((format!("nobench:Q{q}"), &nb.db, nb.plan(&sql, &binds).unwrap()));
    }
    for vc in [false, true] {
        plans.push((format!("nobench:Q11(vc={vc})"), &nb.db, nobench_q11_plan(N, vc)));
    }

    static OLAP: OnceLock<fsdm_sql::Session> = OnceLock::new();
    let olap = OLAP.get_or_init(|| olap_guided_db(60));
    for q in olap_queries(60) {
        let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
        plans.push((format!("olap:Q{}", q.id), &olap.db, olap.plan(&q.sql, &binds).unwrap()));
    }
    for view in ["po_mv", "po_item_dmdv"] {
        plans.push((format!("view:{view}"), &olap.db, Query::view(view)));
    }

    assert!(plans.len() >= 23, "workload sweep lost queries: {}", plans.len());
    for (label, db, plan) in plans {
        let once = optimize(db, plan.clone());
        let violations = rewrite_violations(db, &plan, &once);
        assert!(violations.is_empty(), "{label}: {violations:?}");
        let twice = optimize(db, once.clone());
        assert_eq!(
            format!("{once:?}"),
            format!("{twice:?}"),
            "{label}: optimize re-fired on its own output"
        );
    }
}

//! Tier-1: the analyzer ↔ optimizer handshake. FA001 (unknown path) is
//! the optimizer's proof obligation for the dead-predicate scan rewrite,
//! so enabling pruning must never change any result — it only replaces
//! row loops that cannot match with a constant-false scan — and EXPLAIN
//! must show both the diagnostic and the rewritten plan.

use fsdm_sql::Session;
use fsdm_workloads::nobench;

use fsdm_bench::setup::{nobench_guided_db, nobench_q5_bind};

const N: usize = 400;

/// Row counts for the NOBENCH query set plus two statements whose JSON
/// predicates are provably dead against the corpus.
fn results_for(session: &mut Session, pruning: bool) -> Vec<(String, usize)> {
    session.db.set_dead_path_pruning(pruning);
    let mut out = Vec::new();
    for q in 1..=10 {
        let sql = nobench::query_sql(q, N);
        let binds = if q == 5 { vec![nobench_q5_bind(N)] } else { vec![] };
        let rows = session.execute_with(&sql, &binds).unwrap().rows.len();
        out.push((format!("Q{q}"), rows));
    }
    for (label, sql) in [
        ("dead-exists", "select did from nobench where json_exists(jdoc, '$.persno')"),
        ("dead-value", "select did from nobench where json_value(jdoc, '$.persno') = 'x'"),
    ] {
        out.push((label.to_string(), session.execute(sql).unwrap().rows.len()));
    }
    out
}

#[test]
fn pruning_is_result_identical_over_nobench() {
    let mut session = nobench_guided_db(N);
    let off = results_for(&mut session, false);
    let on = results_for(&mut session, true);
    assert_eq!(off, on, "dead-path pruning changed a result");
    // the workload queries actually return rows, and the dead statements
    // actually return none — the comparison is not vacuous
    assert!(off.iter().any(|(_, rows)| *rows > 0), "{off:?}");
    assert!(off.iter().rev().take(2).all(|(_, rows)| *rows == 0), "{off:?}");
}

#[test]
fn explain_shows_the_diagnostic_and_the_rewrite() {
    let mut session = nobench_guided_db(N);
    session.db.set_dead_path_pruning(true);
    let sql = "select did from nobench where json_exists(jdoc, '$.persno')";
    let explain = session.explain(sql, &[]).unwrap();
    assert!(explain.contains("FA001"), "{explain}");
    assert!(explain.contains("plan:"), "{explain}");
    assert!(explain.contains("JSON_EXISTS"), "the pre-rewrite plan keeps the predicate: {explain}");
    assert!(explain.contains("optimized:"), "{explain}");
    assert!(explain.contains("filter=false"), "the rewrite is visible: {explain}");
    // with pruning off the optimized plan keeps the live predicate
    session.db.set_dead_path_pruning(false);
    let explain_off = session.explain(sql, &[]).unwrap();
    assert!(!explain_off.contains("filter=false"), "{explain_off}");
    assert!(explain_off.contains("FA001"), "diagnostics do not depend on the flag: {explain_off}");
}

#[test]
fn live_predicates_survive_pruning_untouched() {
    let mut session = nobench_guided_db(N);
    session.db.set_dead_path_pruning(true);
    let sql = "select did from nobench where json_exists(jdoc, '$.sparse_110')";
    let explain = session.explain(sql, &[]).unwrap();
    assert!(!explain.contains("filter=false"), "{explain}");
    let rows = session.execute(sql).unwrap().rows.len();
    assert!(rows > 0, "sparse_110 exists in ~1% of {N} docs");
}

//! Integration test: the paper's §3 worked example (Tables 1–8) run end to
//! end through the public API — documents in, $DG rows, view generation,
//! DMDV expansion.

use fsdm::{CollectionOptions, FsdmDatabase};
use fsdm_sqljson::Datum;

/// Table 1's two documents.
const DOC1: &str = r#"{"purchaseOrder": {"id" : 1, "podate" : "2014-09-08",
 "items" :
 [ {"name":"phone" , "price" : 100, "quantity" : 2},
   {"name":"ipad", "price" : 350.86, "quantity" : 3}]}}"#;
const DOC2: &str = r#"{"purchaseOrder": {"id" : 2, "podate" : "2015-03-04",
 "items" :
 [ {"name":"table", "price": 52.78, "quantity": 2},
   {"name":"chair", "price" : 35.24, "quantity" : 4}]}}"#;

/// Table 3's document: new child hierarchy "parts" + new "foreign_id".
const DOC3: &str = r#"{"purchaseOrder": {"id" : 2, "podate" : "2015-06-03",
 "foreign_id" : "CDEG35",
 "items" :
 [ {"name": "TV", "price" : 345.55, "quantity" : 1,
    "parts" : [
      {"partName" : "remoteCon", "partQuantity" : "1"},
      {"partName" : "antenna", "partQuantity" : "2"}]},
   {"name": "PC", "price" : 546.78, "quantity" : 10,
    "parts" : [
      {"partName" : "mouse", "partQuantity" : "2"},
      {"partName" : "keyboard", "partQuantity" : "1"}]}]}}"#;

/// Table 5's document: new sibling hierarchy "discount_items".
const DOC4: &str = r#"{"purchaseOrder": {"id" : 3, "podate" : "2015-07-01",
 "discount_items" :
 [ {"dis_itemName" : "lamp", "dis_itemPrice" : 15.5, "dis_itemQuanitty" : 2,
    "dis_parts" : [
      {"dis_partName" : "bulb", "dis_partQuantity" : 3}]}]}}"#;

fn paths(db: &FsdmDatabase) -> Vec<(String, String)> {
    db.dataguide("po").unwrap().rows().into_iter().map(|r| (r.path, r.type_str)).collect()
}

#[test]
fn tables_1_through_6_dataguide_evolution() {
    let mut db = FsdmDatabase::new();
    db.create_collection("po", CollectionOptions::default()).unwrap();
    db.put("po", DOC1).unwrap();
    db.put("po", DOC2).unwrap();

    // Table 2: exactly seven rows
    let p = paths(&db);
    assert_eq!(p.len(), 7, "{p:#?}");
    assert!(p.contains(&("$.purchaseOrder.items.price".into(), "array of number".into())));

    // Table 4: DOC3 adds exactly four rows (deeper + wider)
    db.put("po", DOC3).unwrap();
    let p = paths(&db);
    assert_eq!(p.len(), 11, "{p:#?}");
    assert!(p.contains(&("$.purchaseOrder.items.parts".into(), "array of array".into())));
    assert!(p.contains(&("$.purchaseOrder.foreign_id".into(), "string".into())));

    // Table 6: DOC4 adds exactly seven rows (sibling hierarchy)
    db.put("po", DOC4).unwrap();
    let p = paths(&db);
    assert_eq!(p.len(), 18, "{p:#?}");
    assert!(p.contains(&(
        "$.purchaseOrder.discount_items.dis_parts.dis_partName".into(),
        "array of string".into()
    )));
}

#[test]
fn table7_virtual_columns_and_table8_dmdv() {
    let mut db = FsdmDatabase::new();
    db.create_collection("po", CollectionOptions::default()).unwrap();
    for d in [DOC1, DOC2, DOC3, DOC4] {
        db.put("po", d).unwrap();
    }
    let schema = db.infer_relational_schema("po").unwrap();

    // Table 7: the three singleton scalars become virtual columns
    for vc in ["jdoc$id", "jdoc$podate", "jdoc$foreign_id"] {
        assert!(
            schema.virtual_columns.contains(&vc.to_string()),
            "{vc} missing from {:?}",
            schema.virtual_columns
        );
    }

    // Table 8 semantics over the generated DMDV:
    // DOC1: 2 items; DOC2: 2 items; DOC3: 2 items × 2 parts = 4;
    // DOC4: union join → 1 discount row. Total = 9.
    let r = db.sql("select * from po_dmdv").unwrap();
    assert_eq!(r.rows.len(), 9, "{:?}", r.rows.len());

    // union join: discount rows have NULL item columns and vice versa
    let name_col = r.col("jdoc$name").unwrap();
    let dis_col = r.col("jdoc$dis_itemName").unwrap();
    for row in &r.rows {
        assert!(
            row[name_col].is_null() || row[dis_col].is_null(),
            "sibling hierarchies must never populate the same row"
        );
    }

    // master fields repeat for every detail row (left outer join)
    let q = db.sql("select count(*) from po_dmdv where \"jdoc$podate\" = '2015-06-03'").unwrap();
    assert_eq!(q.rows[0][0], Datum::from(4i64));
}

#[test]
fn queries_equivalent_across_all_storages() {
    use fsdm::store::JsonStorage;
    let mut results = Vec::new();
    for storage in [JsonStorage::Text, JsonStorage::Bson, JsonStorage::Oson] {
        let mut db = FsdmDatabase::new();
        db.create_collection("po", CollectionOptions { storage, ..Default::default() }).unwrap();
        for d in [DOC1, DOC2, DOC3, DOC4] {
            db.put("po", d).unwrap();
        }
        db.infer_relational_schema("po").unwrap();
        let r1 = db.sql("select count(*) from po_dmdv where \"jdoc$price\" > 100").unwrap();
        let r2 = db
            .sql("select count(*) from po where json_exists(jdoc, '$.purchaseOrder.items[*]?(@.quantity >= 10)')")
            .unwrap();
        let r3 = db.sql("select \"jdoc$id\" from po_mv order by \"jdoc$id\" desc").unwrap();
        results.push((r1, r2, r3.rows.len()));
    }
    assert_eq!(results[0], results[1], "text vs bson");
    assert_eq!(results[0], results[2], "text vs oson");
}

#[test]
fn partial_update_roundtrip_through_collection() {
    // update a leaf in place in OSON storage and observe via SQL
    use fsdm::store::{Cell, JsonCell};
    let mut db = FsdmDatabase::new();
    db.create_collection("po", CollectionOptions::default()).unwrap();
    db.put("po", DOC1).unwrap();
    {
        let table = db.engine_mut().table_mut("po").unwrap();
        let Cell::J(JsonCell::Oson(bytes)) = &table.rows[0][1] else {
            panic!("expected OSON cell");
        };
        let mut buf = bytes.as_ref().clone();
        let doc = fsdm::oson::OsonDoc::new(&buf).unwrap();
        use fsdm::json::{field_hash, JsonDom};
        let po = doc.get_field(doc.root(), "purchaseOrder", field_hash("purchaseOrder")).unwrap();
        let id = doc.get_field(po, "id", field_hash("id")).unwrap();
        let out =
            fsdm::oson::update_scalar(&mut buf, id, &fsdm::json::parse("42").unwrap()).unwrap();
        assert_eq!(out, fsdm::oson::UpdateOutcome::Updated);
        table.rows[0][1] = Cell::J(JsonCell::Oson(std::sync::Arc::new(buf)));
    }
    let r =
        db.sql("select json_value(jdoc, '$.purchaseOrder.id' returning number) from po").unwrap();
    assert_eq!(r.rows[0][0], Datum::from(42i64));
}

//! Integration test for the §6.3 predicate pushdown: the optimizer must
//! never change results, only cost.

use fsdm_bench::setup::{bind_datum, olap_db, olap_queries, StorageMethod};
use fsdm_sqljson::Datum;

#[test]
fn pushdown_preserves_every_olap_result() {
    let n = 300;
    let queries = olap_queries(n);
    for method in [StorageMethod::Json, StorageMethod::Oson] {
        let mut session = olap_db(method, n);
        for q in &queries {
            let binds: Vec<Datum> = q.binds.iter().map(|b| bind_datum(b)).collect();
            // optimized path (execute applies the rewrites)
            let optimized = session.execute_with(&q.sql, &binds).unwrap();
            // unoptimized path: plan then execute verbatim
            let plan = session.plan(&q.sql, &binds).unwrap();
            let raw = session.db.execute_unoptimized(&plan).unwrap();
            let mut a = optimized.rows.clone();
            let mut b = raw.rows.clone();
            let key =
                |r: &Vec<Datum>| r.iter().map(|d| d.to_text()).collect::<Vec<_>>().join("\u{1}");
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "Q{} under {:?}", q.id, method);
        }
    }
}

#[test]
fn pushdown_handles_between_and_in() {
    let n = 200;
    let mut session = olap_db(StorageMethod::Oson, n);
    // BETWEEN splits into two pushable conjuncts
    let r1 = session
        .execute("select count(*) from po_item_dmdv where quantity between 3 and 7")
        .unwrap();
    let plan = session
        .plan("select count(*) from po_item_dmdv where quantity between 3 and 7", &[])
        .unwrap();
    let r2 = session.db.execute_unoptimized(&plan).unwrap();
    assert_eq!(r1, r2);
    assert!(r1.rows[0][0].as_num().unwrap().to_i64().unwrap() > 0);
    // IN over strings
    let q = olap_queries(n).into_iter().find(|q| q.id == 5).unwrap();
    let r3 = session.execute(&q.sql).unwrap();
    let plan = session.plan(&q.sql, &[]).unwrap();
    let r4 = session.db.execute_unoptimized(&plan).unwrap();
    assert_eq!(r3.rows.len(), r4.rows.len());
}

#[test]
fn pushdown_is_a_real_speedup_on_selective_predicates() {
    // not a strict perf assertion — just that the pre-filter drops most
    // documents before expansion (observable through timing at this scale
    // would be flaky; instead verify plan shape)
    let n = 50;
    let session = olap_db(StorageMethod::Oson, n);
    let plan = session.plan("select count(*) from po_item_dmdv where partno = 'XYZ'", &[]).unwrap();
    let optimized = fsdm::store::optimizer::optimize(&session.db, plan);
    let txt = format!("{optimized:?}");
    assert!(txt.contains("JSON_EXISTS"), "prefilter missing: {txt}");
    assert!(txt.contains("partno"), "{txt}");
}

//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: `StdRng::seed_from_u64` and `Rng::gen_range` over
//! half-open integer and `f64` ranges.
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this package shadows it via a workspace path
//! dependency. The generator is SplitMix64 — statistically fine for
//! workload synthesis and deterministic for a given seed, which is all the
//! benchmarks and property tests need. It makes no cross-version
//! reproducibility promise with the real `rand`.

use std::ops::Range;

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`. Panics on an empty range, like the
    /// real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
///
/// The single blanket impl over [`SampleUniform`] matters: it lets type
/// inference flow from the use site back into unsuffixed range literals
/// (`LETTERS[rng.gen_range(0..26)]` forces `usize`), exactly like the real
/// crate.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

/// Scalar types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)`; panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo with a 128-bit widening: bias is < 2^-64 for the
                // spans used here, irrelevant for test-data synthesis.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample empty f64 range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let f = r.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let u = r.gen_range(0u8..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn covers_full_span() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

//! Corpus of malformed BSON buffers: every entry must make [`decode`]
//! return `Err` — never panic. Cases start from real encoder output and
//! break one framing invariant at a time (lengths, NULs, terminators,
//! tags, canonical array keys), plus hand-built buffers for shapes the
//! encoder cannot produce (overdeep nesting).

use fsdm_bson::{decode, encode, ErrorKind};
use fsdm_json::parse;

fn enc(text: &str) -> Vec<u8> {
    encode(&parse(text).expect("corpus JSON parses")).expect("corpus JSON encodes")
}

fn assert_rejected(name: &str, bytes: &[u8]) {
    match decode(bytes) {
        Err(_) => {}
        Ok(v) => panic!("{name}: corrupted buffer decoded to {v}"),
    }
}

fn assert_kind(name: &str, bytes: &[u8], kind: ErrorKind) {
    match decode(bytes) {
        Err(e) => assert_eq!(e.kind, kind, "{name}: wrong kind: {e}"),
        Ok(v) => panic!("{name}: corrupted buffer decoded to {v}"),
    }
}

// --- framing -------------------------------------------------------------

#[test]
fn empty_buffer() {
    assert_rejected("empty", &[]);
}

#[test]
fn shorter_than_minimum() {
    assert_rejected("4 bytes", &[4, 0, 0, 0]);
    assert_rejected("len 5, 4 bytes", &[5, 0, 0, 0]);
}

#[test]
fn negative_root_length() {
    let mut b = enc(r#"{"a":1}"#);
    b[0..4].copy_from_slice(&(-1i32).to_le_bytes());
    assert_rejected("negative len", &b);
}

#[test]
fn root_length_mismatch() {
    let mut b = enc(r#"{"a":1}"#);
    let lied = i32::try_from(b.len()).unwrap() + 1;
    b[0..4].copy_from_slice(&lied.to_le_bytes());
    assert_kind("len+1", &b, ErrorKind::Corrupt);
}

#[test]
fn missing_final_terminator() {
    let mut b = enc(r#"{"a":1}"#);
    let last = b.len() - 1;
    b[last] = 1;
    assert_rejected("no terminator", &b);
}

#[test]
fn truncated_everywhere() {
    let b = enc(r#"{"a":[1,"two",3.5],"b":{"c":null,"d":true},"e":9999999999}"#);
    for cut in 0..b.len() {
        assert_rejected("prefix", &b[..cut]);
    }
}

#[test]
fn trailing_garbage() {
    let mut b = enc(r#"{"a":1}"#);
    b.push(0);
    assert_rejected("trailing byte", &b);
}

// --- elements ------------------------------------------------------------

#[test]
fn unknown_type_tag() {
    let mut b = enc(r#"{"a":1}"#);
    b[4] = 0x7F;
    assert_kind("tag 0x7F", &b, ErrorKind::UnsupportedTag);
}

#[test]
fn deprecated_tag_is_unsupported() {
    let mut b = enc(r#"{"a":1}"#);
    b[4] = 0x0E; // symbol (deprecated in the spec, outside the subset)
    assert_kind("tag 0x0E", &b, ErrorKind::UnsupportedTag);
}

#[test]
fn element_name_missing_nul() {
    // {"a":1}: the name's NUL at offset 6 becomes printable, so the
    // cstring scan runs into the value bytes and framing falls apart
    let mut b = enc(r#"{"a":1}"#);
    assert_eq!(b[6], 0);
    b[6] = b'x';
    assert_rejected("name nul", &b);
}

#[test]
fn element_name_not_utf8() {
    let mut b = enc(r#"{"a":1}"#);
    assert_eq!(b[5], b'a');
    b[5] = 0xFF;
    assert_kind("name utf8", &b, ErrorKind::Corrupt);
}

#[test]
fn premature_terminator_tag() {
    // {"a":1,"b":2}: the second element's tag byte becomes 0x00 — the
    // terminator value is not a legal element tag mid-list
    let b0 = enc(r#"{"a":1}"#);
    let mut b = enc(r#"{"a":1,"b":2}"#);
    let second_tag = b0.len() - 1; // right after the first element
    assert_eq!(b[second_tag], 0x10);
    b[second_tag] = 0x00;
    assert_kind("early terminator", &b, ErrorKind::UnsupportedTag);
}

#[test]
fn bool_byte_out_of_domain() {
    let mut b = enc(r#"{"b":true}"#);
    let last_val = b.len() - 2; // value byte sits before the terminator
    assert_eq!(b[last_val], 1);
    b[last_val] = 2;
    assert_kind("bool 2", &b, ErrorKind::Corrupt);
}

// --- strings -------------------------------------------------------------

#[test]
fn string_length_zero() {
    // a BSON string length counts its NUL, so 0 is always invalid
    let mut b = enc(r#"{"s":"x"}"#);
    b[7..11].copy_from_slice(&0i32.to_le_bytes());
    assert_rejected("sl 0", &b);
}

#[test]
fn string_length_negative() {
    let mut b = enc(r#"{"s":"x"}"#);
    b[7..11].copy_from_slice(&(-2i32).to_le_bytes());
    assert_rejected("sl negative", &b);
}

#[test]
fn string_length_escapes_document() {
    let mut b = enc(r#"{"s":"x"}"#);
    b[7..11].copy_from_slice(&1000i32.to_le_bytes());
    assert_kind("sl escape", &b, ErrorKind::Truncated);
}

#[test]
fn string_missing_nul() {
    let mut b = enc(r#"{"s":"x"}"#);
    let nul = b.len() - 2;
    assert_eq!(b[nul], 0);
    b[nul] = b'y';
    assert_kind("string nul", &b, ErrorKind::Corrupt);
}

#[test]
fn string_body_not_utf8() {
    let mut b = enc(r#"{"s":"xy"}"#);
    b[11] = 0xFF;
    assert_kind("string utf8", &b, ErrorKind::Corrupt);
}

// --- containers ----------------------------------------------------------

#[test]
fn nested_document_length_escapes_parent() {
    let mut b = enc(r#"{"o":{"a":1}}"#);
    // inner document length starts after tag(1) + "o\0"(2) + outer len(4)
    let inner = 7;
    let lied = i32::from_le_bytes([b[inner], b[inner + 1], b[inner + 2], b[inner + 3]]) + 8;
    b[inner..inner + 4].copy_from_slice(&lied.to_le_bytes());
    assert_rejected("inner escape", &b);
}

#[test]
fn nested_document_length_shrunk() {
    let mut b = enc(r#"{"o":{"a":1}}"#);
    let inner = 7;
    b[inner..inner + 4].copy_from_slice(&5i32.to_le_bytes());
    assert_rejected("inner shrunk", &b);
}

#[test]
fn array_keys_must_be_canonical() {
    let mut b = enc(r#"{"a":[true,false]}"#);
    // element names inside the array are "0" and "1"; break the second
    let pos = b.iter().position(|&c| c == b'1').expect("key 1 present");
    b[pos] = b'7';
    assert_kind("array key", &b, ErrorKind::Corrupt);
}

#[test]
fn array_keys_must_be_in_order() {
    let mut b = enc(r#"{"a":[true,false]}"#);
    let p0 = b.iter().position(|&c| c == b'0').expect("key 0 present");
    b[p0] = b'1'; // keys become "1", "1"
    assert_kind("array order", &b, ErrorKind::Corrupt);
}

// --- hand-built ----------------------------------------------------------

/// An array element wrapping `child`, keyed "0", as a full document.
fn wrap_in_array_doc(child: &[u8]) -> Vec<u8> {
    let total = 4 + 1 + 2 + child.len() + 1;
    let mut b = Vec::with_capacity(total);
    b.extend_from_slice(&i32::try_from(total).unwrap().to_le_bytes());
    b.push(0x04); // array
    b.extend_from_slice(b"0\0");
    b.extend_from_slice(child);
    b.push(0);
    b
}

#[test]
fn hand_built_control_decodes() {
    // positive control: {} and {"0":[]} assembled from the spec
    assert_eq!(decode(&[5, 0, 0, 0, 0]).expect("{} decodes"), parse("{}").unwrap());
    let one = wrap_in_array_doc(&[5, 0, 0, 0, 0]);
    assert_eq!(decode(&one).expect("nested decodes"), parse(r#"{"0":[]}"#).unwrap());
}

#[test]
fn nesting_beyond_max_depth() {
    // 600 nested arrays — deeper than the shared MAX_DEPTH (512), which
    // the encoder can never produce; only a hostile buffer looks like
    // this, and it must be rejected without exhausting the call stack
    let mut doc: Vec<u8> = vec![5, 0, 0, 0, 0];
    for _ in 0..600 {
        doc = wrap_in_array_doc(&doc);
    }
    assert_kind("depth", &doc, ErrorKind::Limit);
}

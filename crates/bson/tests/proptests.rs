//! Property-based tests for the BSON codec: round-tripping over the
//! losslessly-representable value subset, verifier acceptance of every
//! encoder output, and decoder totality under random damage.

use fsdm_bson::{decode, encode, BsonDoc};
use fsdm_json::{JsonNumber, JsonValue, Object};
use proptest::prelude::*;

/// Values BSON represents losslessly: ints, doubles (finite; integral
/// doubles normalize to ints on both sides of the codec), strings,
/// booleans, null. Decimals are excluded — BSON stores them as doubles,
/// which is the lossy behaviour the unit tests document separately.
fn arb_value() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<i64>().prop_map(|v| JsonValue::Number(JsonNumber::Int(v))),
        (-1_000_000i64..1_000_000, 0u32..1000).prop_map(|(i, f)| {
            let d = i as f64 + (i.signum() as f64) * (f as f64 / 1000.0);
            JsonValue::Number(JsonNumber::from(d))
        }),
        "[a-zA-Z0-9 _\u{e9}]{0,24}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Array),
            prop::collection::vec(("[a-z][a-z0-9_]{0,10}", inner), 0..6).prop_map(make_object),
        ]
    })
}

/// BSON requires an object at the root.
fn arb_doc() -> impl Strategy<Value = JsonValue> {
    prop::collection::vec(("[a-z][a-z0-9_]{0,10}", arb_value()), 0..6).prop_map(make_object)
}

fn make_object(pairs: Vec<(String, JsonValue)>) -> JsonValue {
    let mut o = Object::new();
    let mut seen = std::collections::HashSet::new();
    for (k, v) in pairs {
        if seen.insert(k.clone()) {
            o.push(k, v);
        }
    }
    JsonValue::Object(o)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode preserves the JSON data model over the lossless
    /// subset.
    #[test]
    fn bson_roundtrip(v in arb_doc()) {
        let bytes = encode(&v).unwrap();
        prop_assert!(decode(&bytes).unwrap().eq_unordered(&v));
    }

    /// Every encoder-produced buffer passes the deep structural verifier.
    #[test]
    fn encoded_documents_validate(v in arb_doc()) {
        let bytes = encode(&v).unwrap();
        let doc = BsonDoc::new(&bytes).unwrap();
        prop_assert!(doc.validate().is_ok());
    }

    /// Flipping a single byte of a valid buffer yields `Err` or a value —
    /// never a panic. No `catch_unwind`: the decode path is total.
    #[test]
    fn decoder_total_on_single_byte_flip(
        v in arb_doc(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = encode(&v).unwrap();
        let n = bytes.len();
        bytes[pos % n] ^= 1 << bit;
        let _ = decode(&bytes);
    }

    /// The decoder stays total under heavier damage: multiple flips and a
    /// truncation.
    #[test]
    fn decoder_total_on_bitflips(
        v in arb_doc(),
        flips in prop::collection::vec((0usize..4096, 0u8..8), 1..8),
        cut in 0usize..4096,
    ) {
        let mut bytes = encode(&v).unwrap();
        for (pos, bit) in flips {
            let n = bytes.len();
            bytes[pos % n] ^= 1 << bit;
        }
        bytes.truncate(cut % (bytes.len() + 1));
        let _ = decode(&bytes);
    }
}

//! `fsdm-bson`: a BSON codec implementing the subset of
//! <http://bsonspec.org> needed for JSON document storage.
//!
//! BSON is the baseline binary format in the paper's evaluation (Tables 10,
//! Figures 3–4). Its characteristic trade-offs, reproduced here, are:
//!
//! * field names are stored inline at every object level and repeated for
//!   every element of an array of objects — no dictionary sharing;
//! * names are NUL-terminated C strings, so a name comparison requires a
//!   byte scan;
//! * containers carry leading length words, so an unneeded child can be
//!   *skipped*, but reaching the N-th field or element still requires a
//!   sequential walk — there is no random access.
//!
//! The [`BsonDoc`] reader implements [`fsdm_json::JsonDom`] directly over
//! the serialized bytes with exactly those sequential-access semantics, so
//! the shared path engine measures BSON's true navigation cost.

pub mod decode;
pub mod encode;

pub use decode::{decode, BsonDoc};
pub use encode::encode;

use std::fmt;

/// What went wrong while decoding or validating a BSON buffer — the
/// typed half of [`BsonError`], so callers can distinguish a short read
/// from structural damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The buffer ends before the structure it promises.
    Truncated,
    /// A framing invariant is violated (bad lengths, missing NULs, …).
    Corrupt,
    /// An element carries a type tag outside the supported JSON subset.
    UnsupportedTag,
    /// A documented format limit was exceeded (e.g. nesting depth).
    Limit,
    /// The API was used against its contract.
    Usage,
}

impl ErrorKind {
    fn label(self) -> &'static str {
        match self {
            ErrorKind::Truncated => "truncated",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::UnsupportedTag => "unsupported tag",
            ErrorKind::Limit => "limit",
            ErrorKind::Usage => "usage",
        }
    }
}

/// Errors produced by the BSON codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsonError {
    /// Machine-readable classification.
    pub kind: ErrorKind,
    /// Description of the failure.
    pub message: String,
}

impl BsonError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        BsonError { kind: ErrorKind::Usage, message: message.into() }
    }

    pub(crate) fn with_kind(kind: ErrorKind, message: impl Into<String>) -> Self {
        BsonError { kind, message: message.into() }
    }

    pub(crate) fn corrupt(message: impl Into<String>) -> Self {
        BsonError::with_kind(ErrorKind::Corrupt, message)
    }

    pub(crate) fn truncated(message: impl Into<String>) -> Self {
        BsonError::with_kind(ErrorKind::Truncated, message)
    }

    pub(crate) fn limit(message: impl Into<String>) -> Self {
        BsonError::with_kind(ErrorKind::Limit, message)
    }
}

impl fmt::Display for BsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BSON error ({}): {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for BsonError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, BsonError>;

/// BSON element type tags (the subset used by JSON data).
pub mod tag {
    /// 64-bit IEEE double.
    pub const DOUBLE: u8 = 0x01;
    /// UTF-8 string with int32 length prefix and NUL terminator.
    pub const STRING: u8 = 0x02;
    /// Embedded document.
    pub const DOCUMENT: u8 = 0x03;
    /// Array (a document with keys "0", "1", …).
    pub const ARRAY: u8 = 0x04;
    /// Boolean.
    pub const BOOL: u8 = 0x08;
    /// Null.
    pub const NULL: u8 = 0x0A;
    /// 32-bit integer.
    pub const INT32: u8 = 0x10;
    /// 64-bit integer.
    pub const INT64: u8 = 0x12;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    #[test]
    fn matches_bsonspec_hello_world() {
        // The canonical example from bsonspec.org:
        // {"hello": "world"} ->
        // \x16\x00\x00\x00\x02hello\x00\x06\x00\x00\x00world\x00\x00
        let v = parse(r#"{"hello":"world"}"#).unwrap();
        let bytes = encode(&v).unwrap();
        assert_eq!(bytes, b"\x16\x00\x00\x00\x02hello\x00\x06\x00\x00\x00world\x00\x00");
    }

    #[test]
    fn error_display() {
        assert_eq!(BsonError::new("x").to_string(), "BSON error (usage): x");
        assert_eq!(BsonError::truncated("y").to_string(), "BSON error (truncated): y");
    }
}

//! BSON reader: full decode to [`JsonValue`] plus a zero-copy [`BsonDoc`]
//! that implements [`JsonDom`] with BSON's native *sequential* access
//! semantics (skip navigation only — the contrast the paper draws against
//! OSON's jump navigation, §4.1).
//!
//! # Safety discipline
//!
//! Mirrors `fsdm-oson`: the [`JsonDom`] accessors are total — every read
//! is bounds-checked and a read that falls outside the buffer yields a
//! neutral value instead of panicking — while [`BsonDoc::validate`] is
//! the deep verifier that untrusted buffers must pass (and [`decode`]
//! runs unconditionally) before the bytes are treated as meaningful.

use fsdm_json::{JsonDom, JsonNumber, JsonValue, NodeKind, NodeRef, Object, ScalarRef};

use crate::{tag, BsonError, ErrorKind, Result};

/// Maximum container nesting accepted by the structural verifier;
/// matches the JSON parser's bound.
pub const MAX_DEPTH: usize = fsdm_json::parse::MAX_DEPTH;

/// Fully decode a BSON document into the JSON value model.
///
/// This is the **untrusted-input** entry point: the buffer is run through
/// the deep structural verifier ([`BsonDoc::validate`]) first, so
/// corrupted or truncated input returns `Err` — it can never panic.
pub fn decode(bytes: &[u8]) -> Result<JsonValue> {
    let doc = BsonDoc::new(bytes)?;
    doc.validate()?;
    Ok(doc.materialize(doc.root()))
}

/// A read-only view over serialized BSON bytes.
///
/// `NodeRef` packing: `(value_offset << 8) | type_tag`. The root is the
/// whole document (`offset 0`, tag DOCUMENT).
pub struct BsonDoc<'a> {
    bytes: &'a [u8],
}

fn pack(offset: usize, t: u8) -> NodeRef {
    (u64::try_from(offset).unwrap_or(u64::MAX) << 8) | u64::from(t)
}

fn unpack(r: NodeRef) -> (usize, u8) {
    let off = usize::try_from(r >> 8).unwrap_or(usize::MAX);
    let t = u8::try_from(r & 0xFF).unwrap_or(0);
    (off, t)
}

impl<'a> BsonDoc<'a> {
    /// Wrap a BSON document, checking the outer framing only (length word
    /// matches the buffer, final terminator byte present). Use
    /// [`BsonDoc::validate`] for the deep structural check.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < 5 {
            return Err(BsonError::truncated("document too short"));
        }
        let len = i32::from_le_bytes([
            *bytes.first().unwrap_or(&0),
            *bytes.get(1).unwrap_or(&0),
            *bytes.get(2).unwrap_or(&0),
            *bytes.get(3).unwrap_or(&0),
        ]);
        if usize::try_from(len).ok() != Some(bytes.len()) {
            return Err(BsonError::corrupt(format!(
                "length header {} != buffer size {}",
                len,
                bytes.len()
            )));
        }
        if bytes.last().copied() != Some(0) {
            return Err(BsonError::corrupt("missing document terminator"));
        }
        Ok(BsonDoc { bytes })
    }

    /// Underlying bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    fn read_u8(&self, off: usize) -> Option<u8> {
        self.bytes.get(off).copied()
    }

    fn read_i32(&self, off: usize) -> Option<i32> {
        let b = self.bytes.get(off..off.checked_add(4)?)?;
        Some(i32::from_le_bytes(b.try_into().ok()?))
    }

    fn read_i64(&self, off: usize) -> Option<i64> {
        let b = self.bytes.get(off..off.checked_add(8)?)?;
        Some(i64::from_le_bytes(b.try_into().ok()?))
    }

    fn read_f64(&self, off: usize) -> Option<f64> {
        let b = self.bytes.get(off..off.checked_add(8)?)?;
        Some(f64::from_le_bytes(b.try_into().ok()?))
    }

    /// Size in bytes of the value of type `t` starting at `off` — this is
    /// the "skip" operation BSON's leading length words enable. `None`
    /// for unknown tags or lengths that do not fit the buffer.
    fn value_size(&self, t: u8, off: usize) -> Option<usize> {
        match t {
            tag::DOUBLE | tag::INT64 => Some(8),
            tag::STRING => usize::try_from(self.read_i32(off)?).ok()?.checked_add(4),
            tag::DOCUMENT | tag::ARRAY => usize::try_from(self.read_i32(off)?).ok(),
            tag::BOOL => Some(1),
            tag::NULL => Some(0),
            tag::INT32 => Some(4),
            _ => None,
        }
    }

    /// Iterate elements of the document/array whose *value* begins at
    /// `doc_off`. Yields (name, type, value_offset). On damaged framing
    /// the iterator simply ends early — [`BsonDoc::validate`] is the
    /// place where damage becomes an `Err`.
    fn elements(&self, doc_off: usize) -> ElementIter<'a, '_> {
        let len = self.read_i32(doc_off).and_then(|l| usize::try_from(l).ok()).unwrap_or(0);
        let end =
            doc_off.checked_add(len.saturating_sub(1)).unwrap_or(doc_off).min(self.bytes.len());
        ElementIter { doc: self, pos: doc_off.saturating_add(4), end }
    }

    /// Deep structural verifier.
    ///
    /// Walks the whole element tree and checks, beyond the outer framing
    /// of [`BsonDoc::new`]: every length word is non-negative and lies
    /// inside its parent, element names are NUL-terminated UTF-8, array
    /// keys are the canonical decimal indices `"0", "1", …`, strings
    /// carry their promised NUL and valid UTF-8, booleans are `0`/`1`,
    /// every type tag belongs to the supported JSON subset, each
    /// document's element list ends exactly at its terminator, and
    /// nesting stays within [`MAX_DEPTH`]. Runs in O(buffer size).
    pub fn validate(&self) -> Result<()> {
        let total = self.validate_doc(0, 0, false)?;
        if total != self.bytes.len() {
            return Err(BsonError::corrupt("root document does not fill the buffer"));
        }
        Ok(())
    }

    /// Validate the document/array whose length word starts at `off`;
    /// returns its total size in bytes.
    fn validate_doc(&self, off: usize, depth: usize, is_array: bool) -> Result<usize> {
        if depth > MAX_DEPTH {
            return Err(BsonError::limit(format!("nesting exceeds MAX_DEPTH ({MAX_DEPTH})")));
        }
        let len_raw =
            self.read_i32(off).ok_or_else(|| BsonError::truncated("document length word"))?;
        let len = usize::try_from(len_raw)
            .map_err(|_| BsonError::corrupt(format!("negative document length {len_raw}")))?;
        if len < 5 {
            return Err(BsonError::corrupt(format!("document length {len} < 5")));
        }
        let total_end =
            off.checked_add(len).ok_or_else(|| BsonError::corrupt("document length overflows"))?;
        if total_end > self.bytes.len() {
            return Err(BsonError::truncated(format!(
                "document at {off} promises {len} bytes past the buffer"
            )));
        }
        if self.read_u8(total_end - 1) != Some(0) {
            return Err(BsonError::corrupt(format!(
                "document at {off} missing its terminator byte"
            )));
        }
        let end = total_end - 1;
        let mut pos = off + 4;
        let mut index: u64 = 0;
        while pos < end {
            let t = self.read_u8(pos).ok_or_else(|| BsonError::truncated("element tag"))?;
            let name_start = pos + 1;
            let hay = self
                .bytes
                .get(name_start..end)
                .ok_or_else(|| BsonError::truncated("element name"))?;
            let rel = hay
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| BsonError::corrupt("unterminated element name"))?;
            let name = std::str::from_utf8(hay.get(..rel).unwrap_or(&[]))
                .map_err(|_| BsonError::corrupt("element name is not UTF-8"))?;
            if is_array && name != index.to_string() {
                return Err(BsonError::corrupt(format!(
                    "array key {name:?} is not the canonical index {index}"
                )));
            }
            index += 1;
            let val_off = name_start + rel + 1;
            let size = match t {
                tag::DOUBLE | tag::INT64 => 8,
                tag::INT32 => 4,
                tag::NULL => 0,
                tag::BOOL => {
                    let b = self
                        .read_u8(val_off)
                        .ok_or_else(|| BsonError::truncated("boolean value"))?;
                    if b > 1 {
                        return Err(BsonError::corrupt(format!(
                            "non-canonical boolean byte {b:#04x}"
                        )));
                    }
                    1
                }
                tag::STRING => {
                    let sl_raw = self
                        .read_i32(val_off)
                        .ok_or_else(|| BsonError::truncated("string length"))?;
                    let sl = usize::try_from(sl_raw).map_err(|_| {
                        BsonError::corrupt(format!("negative string length {sl_raw}"))
                    })?;
                    if sl < 1 {
                        return Err(BsonError::corrupt("string length < 1 (no room for NUL)"));
                    }
                    let body_end = val_off
                        .checked_add(4)
                        .and_then(|p| p.checked_add(sl))
                        .ok_or_else(|| BsonError::corrupt("string length overflows"))?;
                    if body_end > end {
                        return Err(BsonError::truncated("string body escapes its document"));
                    }
                    if self.read_u8(body_end - 1) != Some(0) {
                        return Err(BsonError::corrupt("string missing its NUL terminator"));
                    }
                    let body = self.bytes.get(val_off + 4..body_end - 1).unwrap_or(&[]);
                    if std::str::from_utf8(body).is_err() {
                        return Err(BsonError::corrupt("string body is not UTF-8"));
                    }
                    4 + sl
                }
                tag::DOCUMENT | tag::ARRAY => {
                    let inner = self.validate_doc(val_off, depth + 1, t == tag::ARRAY)?;
                    let inner_end = val_off
                        .checked_add(inner)
                        .ok_or_else(|| BsonError::corrupt("nested document overflows"))?;
                    if inner_end > end {
                        return Err(BsonError::truncated("nested document escapes its parent"));
                    }
                    inner
                }
                other => {
                    return Err(BsonError::with_kind(
                        ErrorKind::UnsupportedTag,
                        format!("unsupported BSON tag {other:#04x}"),
                    ));
                }
            };
            pos = val_off
                .checked_add(size)
                .ok_or_else(|| BsonError::corrupt("element size overflows"))?;
            if pos > end {
                return Err(BsonError::truncated("element value escapes its document"));
            }
        }
        if pos != end {
            return Err(BsonError::corrupt(
                "element list does not end exactly at the document terminator",
            ));
        }
        Ok(len)
    }
}

struct ElementIter<'a, 'd> {
    doc: &'d BsonDoc<'a>,
    pos: usize,
    end: usize,
}

impl<'a> Iterator for ElementIter<'a, '_> {
    type Item = (&'a str, u8, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let t = self.doc.read_u8(self.pos)?;
        // scan for the NUL terminating the name: the byte scan the paper
        // calls out as a BSON access cost
        let name_start = self.pos.checked_add(1)?;
        let hay = self.doc.bytes.get(name_start..self.end)?;
        let rel = hay.iter().position(|&b| b == 0)?;
        let name = std::str::from_utf8(hay.get(..rel)?).unwrap_or("");
        let val_off = name_start.checked_add(rel)?.checked_add(1)?;
        let size = self.doc.value_size(t, val_off)?;
        self.pos = val_off.checked_add(size)?;
        Some((name, t, val_off))
    }
}

impl JsonDom for BsonDoc<'_> {
    fn root(&self) -> NodeRef {
        pack(0, tag::DOCUMENT)
    }

    fn kind(&self, node: NodeRef) -> NodeKind {
        match unpack(node).1 {
            tag::DOCUMENT => NodeKind::Object,
            tag::ARRAY => NodeKind::Array,
            _ => NodeKind::Scalar,
        }
    }

    fn object_len(&self, node: NodeRef) -> usize {
        let (off, _) = unpack(node);
        self.elements(off).count()
    }

    fn object_entry(&self, node: NodeRef, i: usize) -> (&str, NodeRef) {
        let (off, _) = unpack(node);
        match self.elements(off).nth(i) {
            Some((name, t, voff)) => (name, pack(voff, t)),
            None => {
                debug_assert!(false, "object_entry index out of range");
                ("", pack(0, tag::NULL))
            }
        }
    }

    fn array_len(&self, node: NodeRef) -> usize {
        let (off, _) = unpack(node);
        self.elements(off).count()
    }

    fn array_element(&self, node: NodeRef, i: usize) -> NodeRef {
        let (off, _) = unpack(node);
        match self.elements(off).nth(i) {
            Some((_, t, voff)) => pack(voff, t),
            None => {
                debug_assert!(false, "array_element index out of range");
                pack(0, tag::NULL)
            }
        }
    }

    fn scalar(&self, node: NodeRef) -> ScalarRef<'_> {
        let (off, t) = unpack(node);
        match t {
            tag::DOUBLE => ScalarRef::Num(JsonNumber::from(self.read_f64(off).unwrap_or(0.0))),
            tag::STRING => {
                let s = self
                    .read_i32(off)
                    .and_then(|l| usize::try_from(l).ok())
                    .filter(|&l| l >= 1)
                    .and_then(|l| {
                        let start = off.checked_add(4)?;
                        self.bytes.get(start..start.checked_add(l)?.checked_sub(1)?)
                    })
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .unwrap_or("");
                ScalarRef::Str(s)
            }
            tag::BOOL => ScalarRef::Bool(self.read_u8(off).unwrap_or(0) != 0),
            tag::NULL => ScalarRef::Null,
            tag::INT32 => {
                ScalarRef::Num(JsonNumber::Int(i64::from(self.read_i32(off).unwrap_or(0))))
            }
            tag::INT64 => ScalarRef::Num(JsonNumber::Int(self.read_i64(off).unwrap_or(0))),
            _ => {
                debug_assert!(
                    t != tag::DOCUMENT && t != tag::ARRAY,
                    "scalar() on container tag {t:#04x}"
                );
                ScalarRef::Null
            }
        }
    }

    /// Field lookup is a *sequential scan with value skipping* — BSON has
    /// no sorted directory to binary-search.
    fn get_field(&self, node: NodeRef, name: &str, _hash: u32) -> Option<NodeRef> {
        let (off, t) = unpack(node);
        if t != tag::DOCUMENT {
            return None;
        }
        self.elements(off).find(|(n, _, _)| *n == name).map(|(_, t, voff)| pack(voff, t))
    }
}

/// Decode helper used by tests: materialize with object semantics.
pub fn to_object(bytes: &[u8]) -> Result<Object> {
    match decode(bytes)? {
        JsonValue::Object(o) => Ok(o),
        _ => Err(BsonError::new("not an object")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use fsdm_json::{field_hash, parse};

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn roundtrip(text: &str) -> std::result::Result<JsonValue, Box<dyn std::error::Error>> {
        Ok(decode(&encode(&parse(text)?)?)?)
    }

    #[test]
    fn roundtrips_document() -> TestResult {
        let doc = r#"{"id":1,"name":"phone","price":350.86,"ok":true,"n":null,
                      "tags":["a","b"],"nested":{"x":[1,2,3]}}"#;
        let v = parse(doc)?;
        assert_eq!(roundtrip(doc)?, v);
        Ok(())
    }

    #[test]
    fn roundtrips_int64() -> TestResult {
        let v = roundtrip(r#"{"big":5000000000}"#)?;
        assert_eq!(v.get("big").and_then(|b| b.as_i64()), Some(5_000_000_000));
        Ok(())
    }

    #[test]
    fn decimal_loses_to_double() -> TestResult {
        // documents BSON's lossy decimal handling relative to OSON
        let v = roundtrip(r#"{"d":0.1}"#)?;
        assert_eq!(v.get("d").and_then(|d| d.as_f64()), Some(0.1));
        Ok(())
    }

    #[test]
    fn dom_navigation() -> TestResult {
        let v = parse(r#"{"a":{"b":[10,"x"]},"c":false}"#)?;
        let bytes = encode(&v)?;
        let doc = BsonDoc::new(&bytes)?;
        let root = doc.root();
        assert_eq!(doc.kind(root), NodeKind::Object);
        assert_eq!(doc.object_len(root), 2);
        let a = doc.get_field(root, "a", field_hash("a")).ok_or("field a missing")?;
        let b = doc.get_field(a, "b", field_hash("b")).ok_or("field b missing")?;
        assert_eq!(doc.kind(b), NodeKind::Array);
        assert_eq!(doc.array_len(b), 2);
        assert_eq!(doc.scalar(doc.array_element(b, 0)), ScalarRef::Num(JsonNumber::Int(10)));
        assert_eq!(doc.scalar(doc.array_element(b, 1)), ScalarRef::Str("x"));
        let (name, c) = doc.object_entry(root, 1);
        assert_eq!(name, "c");
        assert_eq!(doc.scalar(c), ScalarRef::Bool(false));
        assert!(doc.get_field(root, "zzz", 0).is_none());
        Ok(())
    }

    #[test]
    fn validates_framing() -> TestResult {
        assert!(BsonDoc::new(b"").is_err());
        assert!(BsonDoc::new(b"\x06\x00\x00\x00\x00").is_err()); // bad length
        let good = encode(&parse("{}")?)?;
        let mut bad = good.clone();
        if let Some(last) = bad.last_mut() {
            *last = 1; // clobber terminator
        }
        assert!(BsonDoc::new(&bad).is_err());
        Ok(())
    }

    #[test]
    fn validate_accepts_encoder_output() -> TestResult {
        let texts = [
            "{}",
            r#"{"a":1}"#,
            r#"{"a":{"b":[10,"x",null,true]},"c":false,"big":5000000000,"d":1.5}"#,
            r#"{"x":[[],[[]]]}"#,
        ];
        for t in texts {
            let bytes = encode(&parse(t)?)?;
            BsonDoc::new(&bytes)?.validate()?;
        }
        Ok(())
    }

    #[test]
    fn error_kinds_distinguish_failures() -> TestResult {
        assert_eq!(BsonDoc::new(b"").err().map(|e| e.kind), Some(crate::ErrorKind::Truncated));
        let good = encode(&parse(r#"{"a":1}"#)?)?;
        let mut bad = good.clone();
        if let Some(t) = bad.get_mut(4) {
            *t = 0x7F; // unknown element tag
        }
        let doc = BsonDoc::new(&bad)?;
        assert_eq!(doc.validate().err().map(|e| e.kind), Some(crate::ErrorKind::UnsupportedTag));
        Ok(())
    }

    #[test]
    fn empty_object_roundtrip() -> TestResult {
        assert_eq!(roundtrip("{}")?, parse("{}")?);
        Ok(())
    }

    #[test]
    fn unicode_strings() -> TestResult {
        let v = roundtrip(r#"{"s":"héllo 😀"}"#)?;
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("héllo 😀"));
        Ok(())
    }
}

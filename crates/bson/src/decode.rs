//! BSON reader: full decode to [`JsonValue`] plus a zero-copy [`BsonDoc`]
//! that implements [`JsonDom`] with BSON's native *sequential* access
//! semantics (skip navigation only — the contrast the paper draws against
//! OSON's jump navigation, §4.1).

use fsdm_json::{JsonDom, JsonNumber, JsonValue, NodeKind, NodeRef, Object, ScalarRef};

use crate::{tag, BsonError, Result};

/// Fully decode a BSON document into the JSON value model.
pub fn decode(bytes: &[u8]) -> Result<JsonValue> {
    let doc = BsonDoc::new(bytes)?;
    Ok(doc.materialize(doc.root()))
}

/// A read-only view over serialized BSON bytes.
///
/// `NodeRef` packing: `(value_offset << 8) | type_tag`. The root is the
/// whole document (`offset 0`, tag DOCUMENT).
pub struct BsonDoc<'a> {
    bytes: &'a [u8],
}

fn pack(offset: usize, t: u8) -> NodeRef {
    ((offset as u64) << 8) | t as u64
}

fn unpack(r: NodeRef) -> (usize, u8) {
    ((r >> 8) as usize, (r & 0xFF) as u8)
}

impl<'a> BsonDoc<'a> {
    /// Wrap (and structurally validate the framing of) a BSON document.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < 5 {
            return Err(BsonError::new("document too short"));
        }
        let len = i32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if len as usize != bytes.len() {
            return Err(BsonError::new(format!(
                "length header {} != buffer size {}",
                len,
                bytes.len()
            )));
        }
        if bytes[bytes.len() - 1] != 0 {
            return Err(BsonError::new("missing document terminator"));
        }
        Ok(BsonDoc { bytes })
    }

    /// Underlying bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    fn read_i32(&self, off: usize) -> i32 {
        i32::from_le_bytes(self.bytes[off..off + 4].try_into().unwrap())
    }

    /// Size in bytes of the value of type `t` starting at `off` — this is
    /// the "skip" operation BSON's leading length words enable.
    fn value_size(&self, t: u8, off: usize) -> usize {
        match t {
            tag::DOUBLE => 8,
            tag::STRING => 4 + self.read_i32(off) as usize,
            tag::DOCUMENT | tag::ARRAY => self.read_i32(off) as usize,
            tag::BOOL => 1,
            tag::NULL => 0,
            tag::INT32 => 4,
            tag::INT64 => 8,
            _ => panic!("unsupported BSON tag 0x{t:02x}"),
        }
    }

    /// Iterate elements of the document/array whose *value* begins at
    /// `doc_off`. Yields (name, type, value_offset).
    fn elements(&self, doc_off: usize) -> ElementIter<'a, '_> {
        let len = self.read_i32(doc_off) as usize;
        ElementIter { doc: self, pos: doc_off + 4, end: doc_off + len - 1 }
    }
}

struct ElementIter<'a, 'd> {
    doc: &'d BsonDoc<'a>,
    pos: usize,
    end: usize,
}

impl<'a> Iterator for ElementIter<'a, '_> {
    type Item = (&'a str, u8, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let t = self.doc.bytes[self.pos];
        // scan for the NUL terminating the name: the byte scan the paper
        // calls out as a BSON access cost
        let name_start = self.pos + 1;
        let rel = self.doc.bytes[name_start..self.end]
            .iter()
            .position(|&b| b == 0)
            .expect("name terminator");
        let name = std::str::from_utf8(&self.doc.bytes[name_start..name_start + rel]).unwrap_or("");
        let val_off = name_start + rel + 1;
        self.pos = val_off + self.doc.value_size(t, val_off);
        Some((name, t, val_off))
    }
}

impl JsonDom for BsonDoc<'_> {
    fn root(&self) -> NodeRef {
        pack(0, tag::DOCUMENT)
    }

    fn kind(&self, node: NodeRef) -> NodeKind {
        match unpack(node).1 {
            tag::DOCUMENT => NodeKind::Object,
            tag::ARRAY => NodeKind::Array,
            _ => NodeKind::Scalar,
        }
    }

    fn object_len(&self, node: NodeRef) -> usize {
        let (off, _) = unpack(node);
        self.elements(off).count()
    }

    fn object_entry(&self, node: NodeRef, i: usize) -> (&str, NodeRef) {
        let (off, _) = unpack(node);
        let (name, t, voff) = self.elements(off).nth(i).expect("index in range");
        (name, pack(voff, t))
    }

    fn array_len(&self, node: NodeRef) -> usize {
        let (off, _) = unpack(node);
        self.elements(off).count()
    }

    fn array_element(&self, node: NodeRef, i: usize) -> NodeRef {
        let (off, _) = unpack(node);
        let (_, t, voff) = self.elements(off).nth(i).expect("index in range");
        pack(voff, t)
    }

    fn scalar(&self, node: NodeRef) -> ScalarRef<'_> {
        let (off, t) = unpack(node);
        match t {
            tag::DOUBLE => {
                let v = f64::from_le_bytes(self.bytes[off..off + 8].try_into().unwrap());
                ScalarRef::Num(JsonNumber::from(v))
            }
            tag::STRING => {
                let len = self.read_i32(off) as usize;
                let s = std::str::from_utf8(&self.bytes[off + 4..off + 4 + len - 1]).unwrap_or("");
                ScalarRef::Str(s)
            }
            tag::BOOL => ScalarRef::Bool(self.bytes[off] != 0),
            tag::NULL => ScalarRef::Null,
            tag::INT32 => ScalarRef::Num(JsonNumber::Int(self.read_i32(off) as i64)),
            tag::INT64 => ScalarRef::Num(JsonNumber::Int(i64::from_le_bytes(
                self.bytes[off..off + 8].try_into().unwrap(),
            ))),
            _ => panic!("scalar() on container tag 0x{t:02x}"),
        }
    }

    /// Field lookup is a *sequential scan with value skipping* — BSON has
    /// no sorted directory to binary-search.
    fn get_field(&self, node: NodeRef, name: &str, _hash: u32) -> Option<NodeRef> {
        let (off, t) = unpack(node);
        if t != tag::DOCUMENT {
            return None;
        }
        self.elements(off).find(|(n, _, _)| *n == name).map(|(_, t, voff)| pack(voff, t))
    }
}

/// Decode helper used by tests: materialize with object semantics.
pub fn to_object(bytes: &[u8]) -> Result<Object> {
    match decode(bytes)? {
        JsonValue::Object(o) => Ok(o),
        _ => Err(BsonError::new("not an object")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use fsdm_json::{field_hash, parse};

    fn roundtrip(text: &str) -> JsonValue {
        decode(&encode(&parse(text).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn roundtrips_document() {
        let doc = r#"{"id":1,"name":"phone","price":350.86,"ok":true,"n":null,
                      "tags":["a","b"],"nested":{"x":[1,2,3]}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(roundtrip(doc), v);
    }

    #[test]
    fn roundtrips_int64() {
        let v = roundtrip(r#"{"big":5000000000}"#);
        assert_eq!(v.get("big").unwrap().as_i64(), Some(5_000_000_000));
    }

    #[test]
    fn decimal_loses_to_double() {
        // documents BSON's lossy decimal handling relative to OSON
        let v = roundtrip(r#"{"d":0.1}"#);
        assert_eq!(v.get("d").unwrap().as_f64(), Some(0.1));
    }

    #[test]
    fn dom_navigation() {
        let v = parse(r#"{"a":{"b":[10,"x"]},"c":false}"#).unwrap();
        let bytes = encode(&v).unwrap();
        let doc = BsonDoc::new(&bytes).unwrap();
        let root = doc.root();
        assert_eq!(doc.kind(root), NodeKind::Object);
        assert_eq!(doc.object_len(root), 2);
        let a = doc.get_field(root, "a", field_hash("a")).unwrap();
        let b = doc.get_field(a, "b", field_hash("b")).unwrap();
        assert_eq!(doc.kind(b), NodeKind::Array);
        assert_eq!(doc.array_len(b), 2);
        assert_eq!(doc.scalar(doc.array_element(b, 0)), ScalarRef::Num(JsonNumber::Int(10)));
        assert_eq!(doc.scalar(doc.array_element(b, 1)), ScalarRef::Str("x"));
        let (name, c) = doc.object_entry(root, 1);
        assert_eq!(name, "c");
        assert_eq!(doc.scalar(c), ScalarRef::Bool(false));
        assert!(doc.get_field(root, "zzz", 0).is_none());
    }

    #[test]
    fn validates_framing() {
        assert!(BsonDoc::new(b"").is_err());
        assert!(BsonDoc::new(b"\x06\x00\x00\x00\x00").is_err()); // bad length
        let good = encode(&parse("{}").unwrap()).unwrap();
        let mut bad = good.clone();
        *bad.last_mut().unwrap() = 1; // clobber terminator
        assert!(BsonDoc::new(&bad).is_err());
    }

    #[test]
    fn empty_object_roundtrip() {
        assert_eq!(roundtrip("{}"), parse("{}").unwrap());
    }

    #[test]
    fn unicode_strings() {
        let v = roundtrip(r#"{"s":"héllo 😀"}"#);
        assert_eq!(v.get("s").unwrap().as_str(), Some("héllo 😀"));
    }
}

//! BSON encoder: [`fsdm_json::JsonValue`] → BSON document bytes.

use fsdm_json::{JsonNumber, JsonValue};

use crate::{tag, BsonError, Result};

/// Encode a JSON value as a BSON document. BSON requires an object at the
/// root; other roots are rejected (all collection documents in this stack
/// are objects, matching the paper's workloads).
pub fn encode(v: &JsonValue) -> Result<Vec<u8>> {
    let obj = v.as_object().ok_or_else(|| BsonError::new("BSON root must be an object"))?;
    let mut out = Vec::with_capacity(256);
    write_document(&mut out, obj.iter())?;
    // the deep structural verifier must accept everything we emit; in
    // debug builds every encode proves it
    debug_assert!(
        crate::decode::BsonDoc::new(&out).and_then(|d| d.validate()).is_ok(),
        "encoder produced a BSON document the verifier rejects"
    );
    Ok(out)
}

/// Write `int32 total_len, elements…, 0x00` for an iterator of members.
fn write_document<'a>(
    out: &mut Vec<u8>,
    members: impl Iterator<Item = (&'a str, &'a JsonValue)>,
) -> Result<()> {
    let len_pos = out.len();
    out.extend_from_slice(&[0u8; 4]); // patched below
    for (name, value) in members {
        write_element(out, name, value)?;
    }
    out.push(0);
    let total = (out.len() - len_pos) as u32;
    out[len_pos..len_pos + 4].copy_from_slice(&(total as i32).to_le_bytes());
    Ok(())
}

fn write_cstring(out: &mut Vec<u8>, s: &str) -> Result<()> {
    if s.as_bytes().contains(&0) {
        return Err(BsonError::new("field name contains NUL"));
    }
    out.extend_from_slice(s.as_bytes());
    out.push(0);
    Ok(())
}

fn write_element(out: &mut Vec<u8>, name: &str, value: &JsonValue) -> Result<()> {
    match value {
        JsonValue::Null => {
            out.push(tag::NULL);
            write_cstring(out, name)?;
        }
        JsonValue::Bool(b) => {
            out.push(tag::BOOL);
            write_cstring(out, name)?;
            out.push(*b as u8);
        }
        JsonValue::Number(n) => match n {
            JsonNumber::Int(v) if i32::try_from(*v).is_ok() => {
                out.push(tag::INT32);
                write_cstring(out, name)?;
                out.extend_from_slice(&(*v as i32).to_le_bytes());
            }
            JsonNumber::Int(v) => {
                out.push(tag::INT64);
                write_cstring(out, name)?;
                out.extend_from_slice(&v.to_le_bytes());
            }
            // BSON (pre-decimal128) represents non-integers as doubles;
            // decimals lose precision beyond an f64, as real BSON does.
            other => {
                out.push(tag::DOUBLE);
                write_cstring(out, name)?;
                out.extend_from_slice(&other.to_f64().to_le_bytes());
            }
        },
        JsonValue::String(s) => {
            out.push(tag::STRING);
            write_cstring(out, name)?;
            let bytes = s.as_bytes();
            out.extend_from_slice(&((bytes.len() + 1) as i32).to_le_bytes());
            out.extend_from_slice(bytes);
            out.push(0);
        }
        JsonValue::Object(o) => {
            out.push(tag::DOCUMENT);
            write_cstring(out, name)?;
            write_document(out, o.iter())?;
        }
        JsonValue::Array(a) => {
            out.push(tag::ARRAY);
            write_cstring(out, name)?;
            // arrays are documents keyed "0", "1", …: this is where BSON
            // pays its name-repetition overhead
            let keys: Vec<String> = (0..a.len()).map(|i| i.to_string()).collect();
            write_document(out, keys.iter().map(|k| k.as_str()).zip(a.iter()))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    #[test]
    fn empty_document_is_five_bytes() {
        let v = parse("{}").unwrap();
        assert_eq!(encode(&v).unwrap(), b"\x05\x00\x00\x00\x00");
    }

    #[test]
    fn rejects_non_object_root() {
        assert!(encode(&parse("[1,2]").unwrap()).is_err());
        assert!(encode(&parse("3").unwrap()).is_err());
    }

    #[test]
    fn int_width_selection() {
        let small = encode(&parse(r#"{"v":1}"#).unwrap()).unwrap();
        assert_eq!(small[4], tag::INT32);
        let big = encode(&parse(r#"{"v":5000000000}"#).unwrap()).unwrap();
        assert_eq!(big[4], tag::INT64);
        let dbl = encode(&parse(r#"{"v":1.5}"#).unwrap()).unwrap();
        assert_eq!(dbl[4], tag::DOUBLE);
    }

    #[test]
    fn array_keys_are_decimal_strings() {
        let v = parse(r#"{"a":[true,false]}"#).unwrap();
        let b = encode(&v).unwrap();
        // element "0" and "1" names must appear
        let s = b.iter().map(|&c| c as char).collect::<String>();
        assert!(s.contains('0') && s.contains('1'));
    }

    #[test]
    fn rejects_nul_in_name() {
        let mut o = fsdm_json::Object::new();
        o.push("a\0b", 1);
        assert!(encode(&JsonValue::Object(o)).is_err());
    }
}

//! Structure signatures: the fast no-change path for persistent DataGuide
//! maintenance (§3.2.1).
//!
//! "In the common case where a new JSON instance doesn't result in any new
//! path structures or scalar node changes, the DataGuide processing
//! terminates without the need to call any persistent DataGuide processing
//! module." The insert pipeline hashes the instance *skeleton* (field
//! names, container shape, scalar types — not scalar values); a signature
//! already seen means the instance cannot add rows to `$DG`, so the guide
//! walk is skipped entirely.

use fsdm_json::JsonValue;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Hash of the document's structural skeleton. Two documents with the
/// same field names, nesting shape, and scalar types (lengths excluded)
/// produce the same signature.
pub fn structure_signature(doc: &JsonValue) -> u64 {
    let mut h = FNV_OFFSET;
    walk(doc, &mut h);
    h
}

fn mix_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn mix(h: &mut u64, b: u8) {
    *h ^= b as u64;
    *h = h.wrapping_mul(FNV_PRIME);
}

fn walk(v: &JsonValue, h: &mut u64) {
    match v {
        JsonValue::Object(o) => {
            mix(h, b'{');
            // sort member names so field order does not change the
            // signature (the guide is order-insensitive too)
            let mut entries: Vec<(&str, &JsonValue)> = o.iter().collect();
            entries.sort_by_key(|(k, _)| *k);
            for (k, c) in entries {
                mix_bytes(h, k.as_bytes());
                mix(h, b':');
                walk(c, h);
            }
            mix(h, b'}');
        }
        JsonValue::Array(a) => {
            mix(h, b'[');
            // element skeletons are deduplicated: an array of 2 vs 3
            // identically-shaped objects has identical guide impact
            let mut seen = Vec::new();
            for e in a {
                let mut eh = FNV_OFFSET;
                walk(e, &mut eh);
                if !seen.contains(&eh) {
                    seen.push(eh);
                }
            }
            seen.sort_unstable();
            for eh in seen {
                mix_bytes(h, &eh.to_le_bytes());
            }
            mix(h, b']');
        }
        JsonValue::String(_) => mix(h, b's'),
        JsonValue::Number(_) => mix(h, b'n'),
        JsonValue::Bool(_) => mix(h, b'b'),
        JsonValue::Null => mix(h, b'0'),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    fn sig(s: &str) -> u64 {
        structure_signature(&parse(s).unwrap())
    }

    #[test]
    fn value_changes_do_not_change_signature() {
        assert_eq!(sig(r#"{"a":1,"b":"x"}"#), sig(r#"{"a":999,"b":"yyyy"}"#));
    }

    #[test]
    fn field_order_is_insignificant() {
        assert_eq!(sig(r#"{"a":1,"b":2}"#), sig(r#"{"b":5,"a":7}"#));
    }

    #[test]
    fn new_field_changes_signature() {
        assert_ne!(sig(r#"{"a":1}"#), sig(r#"{"a":1,"b":2}"#));
    }

    #[test]
    fn scalar_type_change_changes_signature() {
        assert_ne!(sig(r#"{"a":1}"#), sig(r#"{"a":"1"}"#));
        assert_ne!(sig(r#"{"a":true}"#), sig(r#"{"a":null}"#));
    }

    #[test]
    fn array_cardinality_of_same_shape_is_insignificant() {
        assert_eq!(
            sig(r#"{"items":[{"p":1},{"p":2}]}"#),
            sig(r#"{"items":[{"p":9},{"p":8},{"p":7}]}"#)
        );
        assert_ne!(sig(r#"{"items":[{"p":1}]}"#), sig(r#"{"items":[{"p":1},{"q":2}]}"#));
    }

    #[test]
    fn nesting_shape_matters() {
        assert_ne!(sig(r#"{"a":{"b":1}}"#), sig(r#"{"a":[{"b":1}]}"#));
        assert_ne!(sig(r#"{"a":[1]}"#), sig(r#"{"a":[[1]]}"#));
    }

    #[test]
    fn signature_stability_matches_guide_equality() {
        // same-signature docs must merge into the guide without adding rows
        use crate::guide::DataGuide;
        let d1 = parse(r#"{"x":{"y":[{"z":1}]}}"#).unwrap();
        let d2 = parse(r#"{"x":{"y":[{"z":42},{"z":7}]}}"#).unwrap();
        assert_eq!(structure_signature(&d1), structure_signature(&d2));
        let mut g = DataGuide::new();
        g.add_document(&d1);
        let rows = g.distinct_paths();
        g.add_document(&d2);
        assert_eq!(g.distinct_paths(), rows);
    }
}

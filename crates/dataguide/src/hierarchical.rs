//! The two JSON renderings of a DataGuide (§3.2.2): the *flat* form (the
//! `$DG` rows as a JSON array) and the *hierarchical* form (a JSON-schema-
//! like document with `o:`-prefixed annotations that users can edit and
//! pass back to `CreateViewOnPath()`).

use fsdm_json::{JsonValue, Object};

use crate::guide::{DataGuide, GuideNode};

/// Flat form: a JSON array of `$DG` rows.
pub fn to_flat_json(g: &DataGuide) -> JsonValue {
    let rows = g
        .rows()
        .into_iter()
        .map(|r| {
            let mut o = Object::new();
            o.push("o:path", r.path);
            o.push("type", r.type_str);
            o.push("o:frequency", frequency_pct(r.doc_count, g.doc_count));
            if r.max_len > 0 {
                o.push("o:length", pow2_length(r.max_len));
            }
            if let Some(m) = r.min {
                o.push("o:low_value", m);
            }
            if let Some(m) = r.max {
                o.push("o:high_value", m);
            }
            if r.nulls > 0 {
                o.push("o:num_nulls", r.nulls as i64);
            }
            JsonValue::Object(o)
        })
        .collect();
    JsonValue::Array(rows)
}

/// Hierarchical form: a single JSON document mirroring the guide tree.
pub fn to_hierarchical_json(g: &DataGuide) -> JsonValue {
    node_json(&g.root, g.doc_count, None)
}

fn node_json(n: &GuideNode, total_docs: u64, name: Option<&str>) -> JsonValue {
    let mut o = Object::new();
    let mut types: Vec<JsonValue> = Vec::new();
    if n.object.seen() || (!n.children.is_empty() && !n.array.seen()) {
        types.push("object".into());
    }
    if n.array.seen() {
        types.push("array".into());
    }
    if !n.scalars.kinds.is_empty() {
        types.push(n.scalars.generalized().name().into());
    }
    match types.len() {
        0 => o.push("type", "object"),
        1 => o.push("type", types.pop().unwrap()),
        _ => o.push("type", JsonValue::Array(types)),
    }
    if let Some(nm) = name {
        o.push("o:preferred_column_name", preferred_column_name(nm));
    }
    let docs = n.object.doc_count.max(n.array.doc_count).max(n.scalars.doc_count());
    if total_docs > 0 && docs > 0 {
        o.push("o:frequency", frequency_pct(docs, total_docs));
    }
    if n.scalars.max_len > 0 {
        o.push("o:length", pow2_length(n.scalars.max_len));
    }
    if !n.children.is_empty() {
        let mut props = Object::new();
        for (k, c) in &n.children {
            props.push(k.clone(), node_json(c, total_docs, Some(k)));
        }
        // array nodes expose element structure under "items", object
        // nodes under "properties" — when both kinds occur, both appear
        if n.array.seen() {
            o.push("items", JsonValue::Object(props.clone()));
        }
        if n.object.seen() || !n.array.seen() {
            o.push("properties", JsonValue::Object(props));
        }
    }
    JsonValue::Object(o)
}

/// Oracle reports `o:length` rounded up to a power of two.
pub fn pow2_length(len: usize) -> i64 {
    let mut p = 1usize;
    while p < len {
        p *= 2;
    }
    p as i64
}

/// Frequency as an integer percentage of documents.
pub fn frequency_pct(docs: u64, total: u64) -> i64 {
    if total == 0 {
        0
    } else {
        ((docs as f64 / total as f64) * 100.0).round() as i64
    }
}

/// A column name derived from a field name: uppercased identifier with
/// non-alphanumerics folded to `_` (Oracle's preferred-name convention).
pub fn preferred_column_name(field: &str) -> String {
    let mut s: String = field
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_uppercase() } else { '_' })
        .collect();
    if s.is_empty() || s.as_bytes()[0].is_ascii_digit() {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    fn guide(docs: &[&str]) -> DataGuide {
        let mut g = DataGuide::new();
        for d in docs {
            g.add_document(&parse(d).unwrap());
        }
        g
    }

    #[test]
    fn flat_form_shape() {
        let g = guide(&[r#"{"a":1,"b":[{"c":"xy"}]}"#, r#"{"a":2}"#]);
        let flat = to_flat_json(&g);
        let rows = flat.as_array().unwrap();
        assert_eq!(rows.len(), g.distinct_paths());
        let a_row = rows.iter().find(|r| r.get("o:path").unwrap().as_str() == Some("$.a")).unwrap();
        assert_eq!(a_row.get("type").unwrap().as_str(), Some("number"));
        assert_eq!(a_row.get("o:frequency").unwrap().as_i64(), Some(100));
        let b_row = rows.iter().find(|r| r.get("o:path").unwrap().as_str() == Some("$.b")).unwrap();
        assert_eq!(b_row.get("o:frequency").unwrap().as_i64(), Some(50));
    }

    #[test]
    fn hierarchical_form_shape() {
        let g = guide(&[r#"{"purchaseOrder":{"id":7,"items":[{"name":"tv"}]}}"#]);
        let h = to_hierarchical_json(&g);
        assert_eq!(h.get("type").unwrap().as_str(), Some("object"));
        let po = h.get("properties").unwrap().get("purchaseOrder").unwrap();
        assert_eq!(po.get("type").unwrap().as_str(), Some("object"));
        let items = po.get("properties").unwrap().get("items").unwrap();
        assert_eq!(items.get("type").unwrap().as_str(), Some("array"));
        let name = items.get("items").unwrap().get("name").unwrap();
        assert_eq!(name.get("type").unwrap().as_str(), Some("string"));
        assert_eq!(name.get("o:length").unwrap().as_i64(), Some(2));
        assert_eq!(name.get("o:preferred_column_name").unwrap().as_str(), Some("NAME"));
    }

    #[test]
    fn mixed_type_nodes_list_all_types() {
        let g = guide(&[r#"{"x":1}"#, r#"{"x":{"y":2}}"#]);
        let h = to_hierarchical_json(&g);
        let x = h.get("properties").unwrap().get("x").unwrap();
        let types = x.get("type").unwrap().as_array().unwrap();
        assert_eq!(types.len(), 2);
    }

    #[test]
    fn pow2_rounding() {
        assert_eq!(pow2_length(1), 1);
        assert_eq!(pow2_length(2), 2);
        assert_eq!(pow2_length(3), 4);
        assert_eq!(pow2_length(17), 32);
    }

    #[test]
    fn preferred_names() {
        assert_eq!(preferred_column_name("podate"), "PODATE");
        assert_eq!(preferred_column_name("foreign id"), "FOREIGN_ID");
        assert_eq!(preferred_column_name("9lives"), "_9LIVES");
    }

    #[test]
    fn forms_are_valid_json_text() {
        let g = guide(&[r#"{"a":[1,2],"b":{"c":null}}"#]);
        let flat = fsdm_json::to_string(&to_flat_json(&g));
        let hier = fsdm_json::to_string(&to_hierarchical_json(&g));
        assert!(fsdm_json::parse(&flat).is_ok());
        assert!(fsdm_json::parse(&hier).is_ok());
    }
}

//! Virtual relational schema generation driven by the DataGuide (§3.3):
//! `AddVC()` virtual columns and `CreateViewOnPath()` de-normalized
//! master-detail views (DMDV).

use std::collections::HashMap;

use fsdm_sqljson::json_table::{ColumnDef, JsonTableDef, NestedDef};
use fsdm_sqljson::path::{parse_path, path_step_text};
use fsdm_sqljson::SqlType;

use crate::guide::{DataGuide, GuideNode, ScalarKind};
use crate::hierarchical::{frequency_pct, pow2_length};

/// A generated `JSON_VALUE()` virtual column (§3.3.1, Table 7).
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualColumnDef {
    /// Column name, `<jsoncol>$<field>` as in the paper's Table 7.
    pub name: String,
    /// Absolute SQL/JSON path of the singleton scalar.
    pub path: String,
    /// RETURNING type.
    pub ty: SqlType,
    /// The defining SQL expression.
    pub sql: String,
}

/// User annotations applied to generated columns (the paper's "annotate
/// the computed DataGuide by picking fields, renaming column names,
/// changing the maximum length of data types").
#[derive(Debug, Clone, Default)]
pub struct ColumnOverride {
    /// Replacement column name.
    pub rename: Option<String>,
    /// Replacement SQL type.
    pub retype: Option<SqlType>,
    /// Exclude this path from the view entirely.
    pub exclude: bool,
}

/// A generated DMDV view (§3.3.2, Table 8).
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// The executable JSON_TABLE definition.
    pub table_def: JsonTableDef,
    /// Equivalent `CREATE VIEW … JSON_TABLE(…)` SQL text.
    pub sql: String,
}

/// `AddVC()`: derive a virtual column for every singleton scalar path —
/// scalars with a one-to-one relationship to the document (never under an
/// array). `min_frequency_pct` prunes sparse fields (0 keeps everything).
pub fn add_vc(guide: &DataGuide, json_col: &str, min_frequency_pct: i64) -> Vec<VirtualColumnDef> {
    let mut out = Vec::new();
    let mut used = HashMap::new();
    collect_vc(
        &guide.root,
        "$".to_string(),
        json_col,
        guide.doc_count,
        min_frequency_pct,
        &mut used,
        &mut out,
    );
    out
}

fn collect_vc(
    node: &GuideNode,
    path: String,
    json_col: &str,
    total_docs: u64,
    min_freq: i64,
    used: &mut HashMap<String, usize>,
    out: &mut Vec<VirtualColumnDef>,
) {
    for (name, child) in &node.children {
        let child_path = format!("{path}{}", path_step_text(name));
        if child.is_singleton_scalar() {
            let freq = frequency_pct(child.scalars.doc_count(), total_docs);
            if freq >= min_freq {
                let col = unique_name(format!("{json_col}${name}"), used);
                let ty = scalar_sql_type(child);
                let sql = format!("JSON_VALUE({json_col}, '{child_path}' returning {ty})");
                out.push(VirtualColumnDef { name: col, path: child_path.clone(), ty, sql });
            }
        }
        // descend through objects only: a scalar under an array is not a
        // singleton (those belong in the DMDV)
        if child.object.seen() && !child.array.seen() {
            collect_vc(child, child_path, json_col, total_docs, min_freq, used, out);
        }
    }
}

/// `CreateViewOnPath()`: generate the DMDV `JSON_TABLE` view rooted at
/// `root_path` ("$" for the full expansion). Child arrays become NESTED
/// PATH blocks (left-outer-join un-nesting); sibling arrays union-join.
/// `min_frequency_pct` drops sparse/outlier fields; `overrides` applies
/// user annotations keyed by absolute path.
pub fn create_view_on_path(
    guide: &DataGuide,
    root_path: &str,
    json_col: &str,
    view_name: &str,
    min_frequency_pct: i64,
    overrides: &HashMap<String, ColumnOverride>,
) -> Option<ViewDef> {
    let node = guide.node_at(root_path)?;
    let ctx = Ctx { json_col, total_docs: guide.doc_count, min_freq: min_frequency_pct, overrides };
    let mut used = HashMap::new();
    let mut abs = root_path.to_string();
    if abs == "$" {
        abs.clear();
        abs.push('$');
    }
    let (columns, nested) = build_level(node, &abs, "$", &ctx, &mut used);
    let table_def = JsonTableDef { row_path: parse_path(root_path).ok()?, columns, nested };
    let sql = render_sql(view_name, json_col, root_path, &table_def);
    Some(ViewDef { name: view_name.to_string(), table_def, sql })
}

struct Ctx<'a> {
    json_col: &'a str,
    total_docs: u64,
    min_freq: i64,
    overrides: &'a HashMap<String, ColumnOverride>,
}

/// Walk one nesting level: scalars (and scalars inside plain objects)
/// become columns; arrays become NESTED PATH blocks.
fn build_level(
    node: &GuideNode,
    abs_path: &str,
    rel_path: &str,
    ctx: &Ctx<'_>,
    used: &mut HashMap<String, usize>,
) -> (Vec<ColumnDef>, Vec<NestedDef>) {
    let mut columns = Vec::new();
    let mut nested = Vec::new();
    // scalar elements of the array this level un-nests ("$" column)
    if rel_path == "$" && node.scalars.any_under_array() && !node.scalars.kinds.is_empty() {
        // handled by the parent when creating the block; nothing here
    }
    walk_level(node, abs_path, rel_path, ctx, used, &mut columns, &mut nested);
    (columns, nested)
}

fn walk_level(
    node: &GuideNode,
    abs_path: &str,
    rel_path: &str,
    ctx: &Ctx<'_>,
    used: &mut HashMap<String, usize>,
    columns: &mut Vec<ColumnDef>,
    nested: &mut Vec<NestedDef>,
) {
    for (name, child) in &node.children {
        let step = path_step_text(name);
        let abs = format!("{abs_path}{step}");
        let rel = format!("{rel_path}{step}");
        let over = ctx.overrides.get(&abs);
        if over.is_some_and(|o| o.exclude) {
            continue;
        }
        let docs = child.object.doc_count.max(child.array.doc_count).max(child.scalars.doc_count());
        if frequency_pct(docs, ctx.total_docs) < ctx.min_freq {
            continue;
        }
        // scalar at this path (not through an additional array) → column
        if !child.scalars.kinds.is_empty() && !child.array.seen() {
            columns.push(make_column(name, child, &abs, &rel, ctx, used, over));
        }
        // array → NESTED PATH block
        if child.array.seen() {
            let block_rel = format!("{rel}[*]");
            let mut block_cols = Vec::new();
            let mut block_nested = Vec::new();
            // scalar elements of the array itself → one column at '$'
            if !child.scalars.kinds.is_empty() {
                columns.reserve(0);
                block_cols.push(make_column(name, child, &abs, "$", ctx, used, over));
            }
            walk_level(child, &abs, "$", ctx, used, &mut block_cols, &mut block_nested);
            if !block_cols.is_empty() || !block_nested.is_empty() {
                nested.push(NestedDef {
                    path: parse_path(&block_rel).expect("generated path parses"),
                    columns: block_cols,
                    nested: block_nested,
                });
            }
        }
        // plain object → inline (columns keep dotted paths, no new block)
        if child.object.seen() && !child.array.seen() {
            walk_level(child, &abs, &rel, ctx, used, columns, nested);
        }
    }
}

fn make_column(
    field: &str,
    node: &GuideNode,
    _abs: &str,
    rel: &str,
    ctx: &Ctx<'_>,
    used: &mut HashMap<String, usize>,
    over: Option<&ColumnOverride>,
) -> ColumnDef {
    let default_name = format!("{}${}", ctx.json_col, field);
    let name =
        over.and_then(|o| o.rename.clone()).unwrap_or_else(|| unique_name(default_name, used));
    let ty = over.and_then(|o| o.retype).unwrap_or_else(|| scalar_sql_type(node));
    ColumnDef::value(name, ty, parse_path(rel).expect("generated path parses"))
}

fn scalar_sql_type(node: &GuideNode) -> SqlType {
    match node.scalars.generalized() {
        ScalarKind::Number => SqlType::Number,
        ScalarKind::Boolean => SqlType::Boolean,
        ScalarKind::Null => SqlType::Varchar2(1),
        ScalarKind::String => SqlType::Varchar2(pow2_length(node.scalars.max_len.max(1)) as usize),
    }
}

fn unique_name(base: String, used: &mut HashMap<String, usize>) -> String {
    let n = used.entry(base.clone()).or_insert(0);
    *n += 1;
    if *n == 1 {
        base
    } else {
        format!("{base}_{}", *n - 1)
    }
}

/// Render the Table 8–style SQL text of a DMDV view.
fn render_sql(view_name: &str, json_col: &str, root_path: &str, def: &JsonTableDef) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str(&format!(
        "CREATE VIEW {view_name} AS\n  SELECT JT.*\n  FROM SRC,\n  JSON_TABLE(\"{json_col}\" FORMAT JSON, '{root_path}'\n    COLUMNS (\n"
    ));
    render_cols(&mut s, &def.columns, &def.nested, 6);
    s.push_str("    )) JT");
    s
}

fn render_cols(s: &mut String, cols: &[ColumnDef], nested: &[NestedDef], indent: usize) {
    let pad = " ".repeat(indent);
    let mut first = true;
    for c in cols {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(&format!("{pad}\"{}\" {} path '{}'", c.name, c.ty, c.path.text()));
    }
    for n in nested {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(&format!("{pad}NESTED PATH '{}' COLUMNS (\n", n.path.text()));
        render_cols(s, &n.columns, &n.nested, indent + 2);
        s.push_str(&format!("\n{pad})"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;
    use fsdm_json::ValueDom;

    fn guide(docs: &[&str]) -> DataGuide {
        let mut g = DataGuide::new();
        for d in docs {
            g.add_document(&parse(d).unwrap());
        }
        g
    }

    const PO1: &str = r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
        {"name":"phone","price":100,"quantity":2},
        {"name":"ipad","price":350.86,"quantity":3}]}}"#;
    const PO3: &str = r#"{"purchaseOrder":{"id":3,"podate":"2015-06-03","foreign_id":"CDEG35",
        "items":[{"name":"TV","price":345.55,"quantity":1,
                  "parts":[{"partName":"remoteCon","partQuantity":"1"}]}]}}"#;

    /// Table 7: AddVC produces JSON_VALUE virtual columns for the three
    /// singleton scalars.
    #[test]
    fn add_vc_table7() {
        let g = guide(&[PO1, PO3]);
        let vcs = add_vc(&g, "JCOL", 0);
        // children iterate in name order (BTreeMap), not document order
        let names: Vec<&str> = vcs.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["JCOL$foreign_id", "JCOL$id", "JCOL$podate"]);
        let id = vcs.iter().find(|v| v.name == "JCOL$id").unwrap();
        assert_eq!(id.ty, SqlType::Number);
        assert!(id.sql.contains("JSON_VALUE(JCOL, '$.purchaseOrder.id'"));
        let podate = vcs.iter().find(|v| v.name == "JCOL$podate").unwrap();
        assert_eq!(podate.ty, SqlType::Varchar2(16));
    }

    #[test]
    fn add_vc_respects_frequency_threshold() {
        let g = guide(&[PO1, PO3]);
        // foreign_id occurs in 1 of 2 docs = 50%
        let vcs = add_vc(&g, "JCOL", 60);
        assert!(vcs.iter().all(|v| v.name != "JCOL$foreign_id"));
        assert_eq!(vcs.len(), 2);
    }

    #[test]
    fn add_vc_excludes_array_scalars() {
        let g = guide(&[PO1]);
        let vcs = add_vc(&g, "JCOL", 0);
        assert!(vcs.iter().all(|v| !v.path.contains("items")));
    }

    /// Table 8: the generated DMDV un-nests items (outer join) and parts
    /// (outer join below items).
    #[test]
    fn create_view_generates_dmdv() {
        let g = guide(&[PO1, PO3]);
        let view = create_view_on_path(&g, "$", "JCOL", "PO_RV", 0, &HashMap::new()).unwrap();
        let names = view.table_def.column_names();
        assert!(names.contains(&"JCOL$id".to_string()));
        assert!(names.contains(&"JCOL$name".to_string()));
        assert!(names.contains(&"JCOL$partName".to_string()));
        assert!(
            view.sql.contains("NESTED PATH '$.items[*]'")
                || view.sql.contains("NESTED PATH '$.purchaseOrder.items[*]'"),
            "{}",
            view.sql
        );

        // executing the generated view over the documents produces the
        // de-normalized master-detail rows
        let v = parse(PO3).unwrap();
        let dom = ValueDom::new(&v);
        let rows = view.table_def.rows(&dom);
        assert_eq!(rows.len(), 1, "1 item × 1 part");
        let idx_id = names.iter().position(|n| n == "JCOL$id").unwrap();
        let idx_part = names.iter().position(|n| n == "JCOL$partName").unwrap();
        assert_eq!(rows[0][idx_id], fsdm_sqljson::Datum::from(3i64));
        assert_eq!(rows[0][idx_part], fsdm_sqljson::Datum::from("remoteCon"));
    }

    #[test]
    fn create_view_on_subpath() {
        let g = guide(&[PO1, PO3]);
        let view = create_view_on_path(
            &g,
            "$.purchaseOrder.items",
            "JCOL",
            "ITEMS_RV",
            0,
            &HashMap::new(),
        )
        .unwrap();
        let names = view.table_def.column_names();
        assert!(names.contains(&"JCOL$name".to_string()));
        assert!(!names.contains(&"JCOL$podate".to_string()));
        let v = parse(PO1).unwrap();
        let dom = ValueDom::new(&v);
        // row path $.purchaseOrder.items un-nests per lax semantics via
        // the nested path blocks below it
        assert!(!view.table_def.rows(&dom).is_empty());
    }

    #[test]
    fn overrides_rename_retype_exclude() {
        let g = guide(&[PO1]);
        let mut ov = HashMap::new();
        ov.insert(
            "$.purchaseOrder.podate".to_string(),
            ColumnOverride {
                rename: Some("ORDER_DATE".into()),
                retype: Some(SqlType::Varchar2(32)),
                exclude: false,
            },
        );
        ov.insert(
            "$.purchaseOrder.items.quantity".to_string(),
            ColumnOverride { exclude: true, ..Default::default() },
        );
        let view = create_view_on_path(&g, "$", "JCOL", "V", 0, &ov).unwrap();
        let names = view.table_def.column_names();
        assert!(names.contains(&"ORDER_DATE".to_string()));
        assert!(!names.iter().any(|n| n.contains("quantity")));
    }

    #[test]
    fn scalar_array_becomes_nested_scalar_column() {
        let g = guide(&[r#"{"name":"n","tags":["a","b"]}"#]);
        let view = create_view_on_path(&g, "$", "J", "V", 0, &HashMap::new()).unwrap();
        let v = parse(r#"{"name":"n","tags":["a","b"]}"#).unwrap();
        let dom = ValueDom::new(&v);
        let rows = view.table_def.rows(&dom);
        assert_eq!(rows.len(), 2, "one row per tag");
        let names = view.table_def.column_names();
        let idx = names.iter().position(|n| n == "J$tags").unwrap();
        assert_eq!(rows[0][idx], fsdm_sqljson::Datum::from("a"));
        assert_eq!(rows[1][idx], fsdm_sqljson::Datum::from("b"));
    }

    #[test]
    fn name_collisions_get_suffixes() {
        let g = guide(&[r#"{"a":{"x":1},"b":[{"x":"s"}]}"#]);
        let view = create_view_on_path(&g, "$", "J", "V", 0, &HashMap::new()).unwrap();
        let names = view.table_def.column_names();
        assert!(names.contains(&"J$x".to_string()));
        assert!(names.contains(&"J$x_1".to_string()), "{names:?}");
    }

    #[test]
    fn frequency_prunes_sparse_fields_from_view() {
        // one common field, one field present in 1% of docs
        let mut g = DataGuide::new();
        for i in 0..100 {
            let doc = if i == 0 {
                r#"{"common":1,"rare":2}"#.to_string()
            } else {
                r#"{"common":1}"#.to_string()
            };
            g.add_document(&parse(&doc).unwrap());
        }
        let view = create_view_on_path(&g, "$", "J", "V", 50, &HashMap::new()).unwrap();
        let names = view.table_def.column_names();
        assert!(names.contains(&"J$common".to_string()));
        assert!(!names.contains(&"J$rare".to_string()));
    }
}

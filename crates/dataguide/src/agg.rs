//! The transient DataGuide as a SQL aggregate function (§3.4):
//! `JSON_DATAGUIDEAGG()`.
//!
//! Implemented with the classic user-defined-aggregation shape from the
//! ORDBMS lineage the paper cites: `initialize` / `iterate` / `merge`
//! (for parallel partials) / `terminate`. The relational engine drives it
//! over any row set — including sampled or filtered subsets (Table 9's Q1
//! through Q3) — and the result is a single JSON document in flat or
//! hierarchical form.

use fsdm_json::JsonValue;

use crate::guide::DataGuide;
use crate::hierarchical::{to_flat_json, to_hierarchical_json};

/// Output form of the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuideFormat {
    /// Flat `$DG`-row array (Oracle's `DBMS_JSON.FORMAT_FLAT`).
    #[default]
    Flat,
    /// Hierarchical JSON-schema-like document.
    Hierarchical,
}

/// Aggregation state for `JSON_DATAGUIDEAGG()`.
#[derive(Debug, Clone, Default)]
pub struct DataGuideAgg {
    guide: DataGuide,
    format: GuideFormat,
}

impl DataGuideAgg {
    /// `initialize`: fresh aggregation state.
    pub fn new(format: GuideFormat) -> Self {
        DataGuideAgg { guide: DataGuide::new(), format }
    }

    /// `iterate`: absorb one JSON document.
    pub fn iterate(&mut self, doc: &JsonValue) {
        self.guide.add_document(doc);
    }

    /// `merge`: combine a parallel partial into this state.
    pub fn merge(&mut self, other: &DataGuideAgg) {
        self.guide.merge(&other.guide);
    }

    /// `terminate`: produce the DataGuide as a single JSON document.
    pub fn terminate(&self) -> JsonValue {
        match self.format {
            GuideFormat::Flat => to_flat_json(&self.guide),
            GuideFormat::Hierarchical => to_hierarchical_json(&self.guide),
        }
    }

    /// The underlying guide (for callers that want rows/views rather than
    /// the JSON rendering).
    pub fn guide(&self) -> &DataGuide {
        &self.guide
    }

    /// Documents aggregated so far.
    pub fn count(&self) -> u64 {
        self.guide.doc_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    fn docs() -> Vec<JsonValue> {
        (0..20)
            .map(|i| {
                let extra =
                    if i % 4 == 0 { format!(",\"sparse_{i}\":true") } else { String::new() };
                parse(&format!(r#"{{"id":{i},"name":"d{i}"{extra}}}"#)).unwrap()
            })
            .collect()
    }

    #[test]
    fn iterate_then_terminate_flat() {
        let mut agg = DataGuideAgg::new(GuideFormat::Flat);
        for d in docs() {
            agg.iterate(&d);
        }
        assert_eq!(agg.count(), 20);
        let out = agg.terminate();
        let rows = out.as_array().unwrap();
        // id, name + 5 sparse fields
        assert_eq!(rows.len(), 7);
    }

    #[test]
    fn parallel_merge_equals_serial() {
        let all = docs();
        let mut serial = DataGuideAgg::new(GuideFormat::Flat);
        for d in &all {
            serial.iterate(d);
        }
        let mut left = DataGuideAgg::new(GuideFormat::Flat);
        let mut right = DataGuideAgg::new(GuideFormat::Flat);
        for (i, d) in all.iter().enumerate() {
            if i % 2 == 0 {
                left.iterate(d);
            } else {
                right.iterate(d);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), serial.count());
        assert_eq!(left.guide().rows(), serial.guide().rows());
    }

    #[test]
    fn hierarchical_output() {
        let mut agg = DataGuideAgg::new(GuideFormat::Hierarchical);
        agg.iterate(&parse(r#"{"a":{"b":[1,2]}}"#).unwrap());
        let out = agg.terminate();
        assert!(out.get("properties").unwrap().get("a").is_some());
    }

    #[test]
    fn empty_aggregate() {
        let agg = DataGuideAgg::new(GuideFormat::Flat);
        assert_eq!(agg.terminate(), JsonValue::Array(vec![]));
    }
}

//! `fsdm-dataguide`: the JSON DataGuide (§3 of the paper) — an
//! automatically computed, continuously evolving *soft schema* over a JSON
//! collection.
//!
//! A DataGuide for one document is the container-node skeleton of its DOM
//! tree with leaf scalars replaced by type and length; the DataGuide of a
//! collection is the merge-union of instance guides, where duplicate tree
//! paths collapse when node types agree, paths with different node types
//! stay distinct, conflicting scalar types generalize (to `string`), and
//! lengths take the maximum (§3.1).
//!
//! The guide materializes in two forms (§3.2.2): the **flat** form — the
//! rows of the `$DG` table (path, type, statistics) — and the
//! **hierarchical** form, a single JSON document with `o:`-prefixed
//! annotations that users can edit and feed back into the view generator.
//!
//! On top of the guide sit the §3.3 services: [`views::add_vc`]
//! (`AddVC()`) derives `JSON_VALUE` virtual columns for singleton scalars,
//! and [`views::create_view_on_path`] (`CreateViewOnPath()`) generates the
//! de-normalized master-detail view (DMDV) as a `JSON_TABLE()` definition
//! plus its SQL text — child arrays un-nest with left-outer-join
//! semantics, sibling arrays with union joins.

pub mod agg;
pub mod guide;
pub mod hierarchical;
pub mod signature;
pub mod views;

pub use agg::DataGuideAgg;
pub use guide::{DataGuide, DgRow, GuideNode, ScalarKind};
pub use signature::structure_signature;
pub use views::{add_vc, create_view_on_path, ColumnOverride, ViewDef, VirtualColumnDef};

//! The DataGuide tree: instance extraction, merge, and the flat `$DG`
//! row form.

use std::collections::BTreeMap;

use fsdm_json::JsonValue;

/// Scalar leaf types tracked by the guide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScalarKind {
    /// JSON string.
    String,
    /// JSON number.
    Number,
    /// JSON boolean.
    Boolean,
    /// JSON null.
    Null,
}

impl ScalarKind {
    /// Type name as reported in `$DG`.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarKind::String => "string",
            ScalarKind::Number => "number",
            ScalarKind::Boolean => "boolean",
            ScalarKind::Null => "null",
        }
    }
}

/// Occurrence statistics for one (path, node-kind).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KindStats {
    /// Number of documents in which this (path, kind) occurs.
    pub doc_count: u64,
    /// Total occurrences (can exceed doc_count under arrays).
    pub occurrences: u64,
    /// True if any occurrence sits below an array on its path — this is
    /// what prefixes the reported type with "array of".
    pub under_array: bool,
    /// Internal: id of the last document counted (dedups doc_count).
    last_doc: u64,
}

impl KindStats {
    fn hit(&mut self, doc_id: u64, under_array: bool) {
        self.occurrences += 1;
        self.under_array |= under_array;
        if self.last_doc != doc_id {
            self.last_doc = doc_id;
            self.doc_count += 1;
        }
    }

    fn merge(&mut self, other: &KindStats) {
        self.doc_count += other.doc_count;
        self.occurrences += other.occurrences;
        self.under_array |= other.under_array;
    }

    /// True once at least one occurrence was recorded.
    pub fn seen(&self) -> bool {
        self.occurrences > 0
    }
}

/// Statistics for scalar occurrences at one path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalarStats {
    /// Occurrences of *any* scalar at this path (documents counted once
    /// even when a document holds several scalar types here).
    pub any: KindStats,
    /// Per-scalar-type occurrence stats.
    pub kinds: BTreeMap<ScalarKind, KindStats>,
    /// Maximum value byte length observed (strings: byte length; numbers:
    /// literal length).
    pub max_len: usize,
    /// Minimum scalar value observed (numbers compare numerically).
    pub min: Option<JsonValue>,
    /// Maximum scalar value observed.
    pub max: Option<JsonValue>,
    /// Count of JSON null occurrences.
    pub null_count: u64,
}

impl ScalarStats {
    fn observe(&mut self, v: &JsonValue, doc_id: u64, under_array: bool) {
        let kind = match v {
            JsonValue::String(s) => {
                self.max_len = self.max_len.max(s.len());
                ScalarKind::String
            }
            JsonValue::Number(n) => {
                self.max_len = self.max_len.max(n.to_literal().len());
                ScalarKind::Number
            }
            JsonValue::Bool(_) => {
                self.max_len = self.max_len.max(5);
                ScalarKind::Boolean
            }
            JsonValue::Null => {
                self.null_count += 1;
                ScalarKind::Null
            }
            _ => unreachable!("scalar expected"),
        };
        self.any.hit(doc_id, under_array);
        self.kinds.entry(kind).or_default().hit(doc_id, under_array);
        if !v.is_null() {
            let lower = scalar_lt(v, self.min.as_ref());
            if lower {
                self.min = Some(v.clone());
            }
            let higher = scalar_gt(v, self.max.as_ref());
            if higher {
                self.max = Some(v.clone());
            }
        }
    }

    fn merge(&mut self, other: &ScalarStats) {
        self.any.merge(&other.any);
        for (k, s) in &other.kinds {
            self.kinds.entry(*k).or_default().merge(s);
        }
        self.max_len = self.max_len.max(other.max_len);
        self.null_count += other.null_count;
        if let Some(m) = &other.min {
            if scalar_lt(m, self.min.as_ref()) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if scalar_gt(m, self.max.as_ref()) {
                self.max = Some(m.clone());
            }
        }
    }

    /// The generalized scalar type after merge (§3.1): a single non-null
    /// type stands; conflicting non-null types generalize to `string`;
    /// only-null stays `null`.
    pub fn generalized(&self) -> ScalarKind {
        let mut non_null: Vec<ScalarKind> = self
            .kinds
            .iter()
            .filter(|(k, s)| **k != ScalarKind::Null && s.seen())
            .map(|(k, _)| *k)
            .collect();
        non_null.dedup();
        match non_null.len() {
            0 => ScalarKind::Null,
            1 => non_null[0],
            _ => ScalarKind::String,
        }
    }

    /// True if any scalar occurrence at this path sat under an array.
    pub fn any_under_array(&self) -> bool {
        self.any.under_array
    }

    /// Documents containing a scalar at this path (each document counted
    /// once, even when it contributes several scalar types).
    pub fn doc_count(&self) -> u64 {
        self.any.doc_count
    }

    /// True when `kind` was ever observed at this path.
    pub fn has_kind(&self, kind: ScalarKind) -> bool {
        self.kinds.get(&kind).is_some_and(KindStats::seen)
    }

    /// The scalar kinds observed at this path, in `ScalarKind` order.
    pub fn observed_kinds(&self) -> Vec<ScalarKind> {
        self.kinds.iter().filter(|(_, s)| s.seen()).map(|(k, _)| *k).collect()
    }
}

fn scalar_lt(v: &JsonValue, cur: Option<&JsonValue>) -> bool {
    match cur {
        None => true,
        Some(c) => cmp_scalars(v, c) == std::cmp::Ordering::Less,
    }
}

fn scalar_gt(v: &JsonValue, cur: Option<&JsonValue>) -> bool {
    match cur {
        None => true,
        Some(c) => cmp_scalars(v, c) == std::cmp::Ordering::Greater,
    }
}

fn cmp_scalars(a: &JsonValue, b: &JsonValue) -> std::cmp::Ordering {
    match (a, b) {
        (JsonValue::Number(x), JsonValue::Number(y)) => x.total_cmp(y),
        (JsonValue::String(x), JsonValue::String(y)) => x.cmp(y),
        (JsonValue::Bool(x), JsonValue::Bool(y)) => x.cmp(y),
        // cross-type extremes compare by textual form (rare: mixed types)
        _ => fsdm_json::to_string(a).cmp(&fsdm_json::to_string(b)),
    }
}

/// One node of the guide tree = one field path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GuideNode {
    /// Occurrences of this path as an object.
    pub object: KindStats,
    /// Occurrences of this path as an array (the outer array itself).
    pub array: KindStats,
    /// Scalar occurrences at this path.
    pub scalars: ScalarStats,
    /// Child fields (reached through objects, including object elements of
    /// arrays at this path).
    pub children: BTreeMap<String, GuideNode>,
}

impl GuideNode {
    /// Absorb one value occurring at this path. Arrays recurse into their
    /// elements at the *same* path with `under_array = true` (this is what
    /// produces "array of …" types and lets object elements contribute
    /// child paths).
    ///
    /// Returns the number of guide nodes (distinct paths) this value
    /// created — 0 means the document's structure was already fully
    /// covered by the guide.
    fn observe(&mut self, v: &JsonValue, doc_id: u64, under_array: bool) -> u64 {
        let mut new_paths = 0u64;
        match v {
            JsonValue::Object(o) => {
                self.object.hit(doc_id, under_array);
                for (k, c) in o.iter() {
                    if !self.children.contains_key(k) {
                        new_paths += 1;
                    }
                    new_paths += self.children.entry(k.to_string()).or_default().observe(
                        c,
                        doc_id,
                        under_array,
                    );
                }
            }
            JsonValue::Array(a) => {
                self.array.hit(doc_id, under_array);
                for e in a {
                    match e {
                        // object elements contribute child paths only —
                        // Table 2 reports `items` as "array", not
                        // "array of object"
                        JsonValue::Object(o) => {
                            for (k, c) in o.iter() {
                                if !self.children.contains_key(k) {
                                    new_paths += 1;
                                }
                                new_paths += self
                                    .children
                                    .entry(k.to_string())
                                    .or_default()
                                    .observe(c, doc_id, true);
                            }
                        }
                        // a nested array is recorded at the same path with
                        // the under-array flag → "array of array" (Table 4)
                        JsonValue::Array(_) => new_paths += self.observe(e, doc_id, true),
                        scalar => self.scalars.observe(scalar, doc_id, true),
                    }
                }
            }
            scalar => self.scalars.observe(scalar, doc_id, under_array),
        }
        new_paths
    }

    fn merge(&mut self, other: &GuideNode) {
        self.object.merge(&other.object);
        self.array.merge(&other.array);
        self.scalars.merge(&other.scalars);
        for (k, c) in &other.children {
            self.children.entry(k.clone()).or_default().merge(c);
        }
    }

    /// True when this path only ever holds a scalar not under any array —
    /// i.e. a one-to-one "singleton" eligible for a virtual column (§3.3.1).
    pub fn is_singleton_scalar(&self) -> bool {
        !self.object.seen()
            && !self.array.seen()
            && !self.scalars.kinds.is_empty()
            && !self.scalars.any_under_array()
    }

    /// Child node for `name`, for step-by-step walks of compiled paths.
    pub fn child(&self, name: &str) -> Option<&GuideNode> {
        self.children.get(name)
    }

    /// True when anything — object, array, or scalar — was ever observed
    /// at this path.
    pub fn seen(&self) -> bool {
        self.object.seen() || self.array.seen() || !self.scalars.kinds.is_empty()
    }

    /// Documents known to contain this path, as a lower bound: per-kind
    /// document sets are tracked separately, so a document holding the
    /// path as several kinds counts once per kind and we return the
    /// largest single-kind count.
    pub fn doc_count_at_least(&self) -> u64 {
        self.object.doc_count.max(self.array.doc_count).max(self.scalars.doc_count())
    }

    /// Observed frequency of this path as an integer percentage of
    /// `total_docs` (a lower bound, per [`GuideNode::doc_count_at_least`]).
    pub fn frequency_pct(&self, total_docs: u64) -> i64 {
        crate::hierarchical::frequency_pct(self.doc_count_at_least(), total_docs)
    }
}

/// One row of the flat (`$DG`) form.
#[derive(Debug, Clone, PartialEq)]
pub struct DgRow {
    /// JSON path from the root (`$.a.b`).
    pub path: String,
    /// Reported type ("object", "array", "string", "array of number", …).
    pub type_str: String,
    /// Documents containing this (path, kind).
    pub doc_count: u64,
    /// Total occurrences.
    pub occurrences: u64,
    /// Maximum leaf length (scalar rows).
    pub max_len: usize,
    /// Minimum scalar value (scalar rows).
    pub min: Option<JsonValue>,
    /// Maximum scalar value (scalar rows).
    pub max: Option<JsonValue>,
    /// Null occurrences (scalar rows).
    pub nulls: u64,
}

/// The JSON DataGuide for a collection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataGuide {
    /// Root guide node (the `$` path).
    pub root: GuideNode,
    /// Documents merged into this guide.
    pub doc_count: u64,
    /// Documents actually walked ([`DataGuide::add_document`] calls);
    /// see [`DataGuide::sampled_docs`].
    walked_docs: u64,
}

impl DataGuide {
    /// Empty guide.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge one document instance into the guide (instance extraction +
    /// merge-union in a single walk). Returns how many previously-unseen
    /// paths the document contributed — 0 means the guide was unchanged.
    pub fn add_document(&mut self, doc: &JsonValue) -> u64 {
        self.doc_count += 1;
        self.walked_docs += 1;
        let new_paths = self.root.observe(doc, self.doc_count, false);
        if new_paths > 0 {
            fsdm_obs::counter!(fsdm_obs::catalog::DATAGUIDE_INSERT_CHANGED).inc();
            fsdm_obs::gauge!(fsdm_obs::catalog::DATAGUIDE_PATHS).add(new_paths as i64);
        } else {
            fsdm_obs::counter!(fsdm_obs::catalog::DATAGUIDE_INSERT_UNCHANGED).inc();
        }
        new_paths
    }

    /// Merge another guide (used by the SQL aggregate's combine phase).
    pub fn merge(&mut self, other: &DataGuide) {
        self.doc_count += other.doc_count;
        self.walked_docs += other.walked_docs;
        self.root.merge(&other.root);
    }

    /// Number of documents actually walked into the tree. The store's
    /// structure-signature insert fast path counts repeated structures
    /// in [`DataGuide::doc_count`] without re-walking them, so per-node
    /// statistics are relative to this sample, not to `doc_count`.
    pub fn sampled_docs(&self) -> u64 {
        self.walked_docs
    }

    /// The flat `$DG` rows, in path order. Each distinct (path, node-kind)
    /// is one row; scalar kinds are generalized per §3.1.
    pub fn rows(&self) -> Vec<DgRow> {
        let mut out = Vec::new();
        emit_rows(&self.root, "$", true, &mut out);
        out
    }

    /// Number of distinct paths — the "Number of Distinct Paths" column of
    /// Table 12 (row count of `$DG`).
    pub fn distinct_paths(&self) -> usize {
        self.rows().len()
    }

    /// Number of root-to-leaf scalar paths — the "DMDV number of columns"
    /// statistic of Table 12.
    pub fn leaf_paths(&self) -> usize {
        self.rows()
            .iter()
            .filter(|r| !r.type_str.ends_with("object") && !r.type_str.ends_with("array"))
            .count()
    }

    /// Navigate to the guide node for a path like `$.a.b` (fields only).
    pub fn node_at(&self, path: &str) -> Option<&GuideNode> {
        let mut node = &self.root;
        let trimmed = path.trim();
        if !trimmed.starts_with('$') {
            return None;
        }
        let rest = &trimmed[1..];
        if rest.is_empty() {
            return Some(node);
        }
        for step in parse_dotted(rest)? {
            node = node.children.get(&step)?;
        }
        Some(node)
    }
}

/// Split `.a.b."c d"` into field names.
fn parse_dotted(s: &str) -> Option<Vec<String>> {
    let b = s.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        if b[i] != b'.' {
            return None;
        }
        i += 1;
        if i < b.len() && b[i] == b'"' {
            i += 1;
            let start = i;
            while i < b.len() && b[i] != b'"' {
                i += 1;
            }
            if i == b.len() {
                return None;
            }
            out.push(s[start..i].to_string());
            i += 1;
        } else {
            let start = i;
            while i < b.len() && b[i] != b'.' {
                i += 1;
            }
            if start == i {
                return None;
            }
            out.push(s[start..i].to_string());
        }
    }
    Some(out)
}

fn emit_rows(node: &GuideNode, path: &str, is_root: bool, out: &mut Vec<DgRow>) {
    if !is_root {
        if node.object.seen() {
            out.push(DgRow {
                path: path.to_string(),
                type_str: typed("object", node.object.under_array),
                doc_count: node.object.doc_count,
                occurrences: node.object.occurrences,
                max_len: 0,
                min: None,
                max: None,
                nulls: 0,
            });
        }
        if node.array.seen() {
            out.push(DgRow {
                path: path.to_string(),
                type_str: typed("array", node.array.under_array),
                doc_count: node.array.doc_count,
                occurrences: node.array.occurrences,
                max_len: 0,
                min: None,
                max: None,
                nulls: 0,
            });
        }
        if !node.scalars.kinds.is_empty() {
            let g = node.scalars.generalized();
            out.push(DgRow {
                path: path.to_string(),
                type_str: typed(g.name(), node.scalars.any_under_array()),
                doc_count: node.scalars.doc_count(),
                occurrences: node.scalars.any.occurrences,
                max_len: node.scalars.max_len,
                min: node.scalars.min.clone(),
                max: node.scalars.max.clone(),
                nulls: node.scalars.null_count,
            });
        }
    }
    for (name, child) in &node.children {
        let step = fsdm_sqljson::path::path_step_text(name);
        let child_path = format!("{path}{step}");
        emit_rows(child, &child_path, false, out);
    }
}

fn typed(kind: &str, under_array: bool) -> String {
    if under_array {
        format!("array of {kind}")
    } else {
        kind.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    fn guide_of(docs: &[&str]) -> DataGuide {
        let mut g = DataGuide::new();
        for d in docs {
            g.add_document(&parse(d).unwrap());
        }
        g
    }

    fn row<'a>(rows: &'a [DgRow], path: &str, ty: &str) -> &'a DgRow {
        rows.iter()
            .find(|r| r.path == path && r.type_str == ty)
            .unwrap_or_else(|| panic!("missing row ({path}, {ty}); have {rows:#?}"))
    }

    /// The Table 1 + Table 2 example: two purchase orders produce exactly
    /// the seven $DG rows of the paper.
    #[test]
    fn table2_rows() {
        let g = guide_of(&[
            r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
                {"name":"phone","price":100,"quantity":2},
                {"name":"ipad","price":350.86,"quantity":3}]}}"#,
            r#"{"purchaseOrder":{"id":2,"podate":"2015-03-04","items":[
                {"name":"table","price":52.78,"quantity":2},
                {"name":"chair","price":35.24,"quantity":4}]}}"#,
        ]);
        let rows = g.rows();
        assert_eq!(rows.len(), 7, "{rows:#?}");
        row(&rows, "$.purchaseOrder", "object");
        row(&rows, "$.purchaseOrder.id", "number");
        row(&rows, "$.purchaseOrder.podate", "string");
        row(&rows, "$.purchaseOrder.items", "array");
        row(&rows, "$.purchaseOrder.items.name", "array of string");
        row(&rows, "$.purchaseOrder.items.price", "array of number");
        row(&rows, "$.purchaseOrder.items.quantity", "array of number");
    }

    /// Table 3 + Table 4: a deeper child hierarchy adds exactly 4 rows.
    #[test]
    fn table4_growth_deeper() {
        let mut g = guide_of(&[r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
                {"name":"phone","price":100,"quantity":2}]}}"#]);
        let before = g.distinct_paths();
        g.add_document(
            &parse(
                r#"{"purchaseOrder":{"id":2,"podate":"2015-06-03","foreign_id":"CDEG35",
               "items":[{"name":"TV","price":345.55,"quantity":1,
                 "parts":[{"partName":"remoteCon","partQuantity":"1"}]}]}}"#,
            )
            .unwrap(),
        );
        let rows = g.rows();
        assert_eq!(rows.len(), before + 4, "{rows:#?}");
        row(&rows, "$.purchaseOrder.items.parts", "array of array");
        row(&rows, "$.purchaseOrder.items.parts.partName", "array of string");
        row(&rows, "$.purchaseOrder.items.parts.partQuantity", "array of string");
        row(&rows, "$.purchaseOrder.foreign_id", "string");
    }

    /// §3.1: same path as scalar in one doc and object in another keeps
    /// both rows; conflicting scalar types generalize to string.
    #[test]
    fn merge_rules() {
        let g = guide_of(&[r#"{"a":{"b":1}}"#, r#"{"a":{"b":{"c":true}}}"#]);
        let rows = g.rows();
        row(&rows, "$.a.b", "number");
        row(&rows, "$.a.b", "object");
        row(&rows, "$.a.b.c", "boolean");

        let g2 = guide_of(&[r#"{"x":1}"#, r#"{"x":"s"}"#]);
        let rows2 = g2.rows();
        row(&rows2, "$.x", "string");
        assert_eq!(row(&rows2, "$.x", "string").doc_count, 2);
    }

    #[test]
    fn scalar_array_reports_both_rows() {
        let g = guide_of(&[r#"{"tags":["a","bb","ccc"]}"#]);
        let rows = g.rows();
        row(&rows, "$.tags", "array");
        let s = row(&rows, "$.tags", "array of string");
        assert_eq!(s.max_len, 3);
        assert_eq!(s.occurrences, 3);
    }

    #[test]
    fn statistics_track_min_max_nulls_len() {
        let g = guide_of(&[
            r#"{"v":5,"s":"hello"}"#,
            r#"{"v":-3,"s":"hi"}"#,
            r#"{"v":null,"s":"world!!"}"#,
        ]);
        let rows = g.rows();
        let v = row(&rows, "$.v", "number");
        assert_eq!(v.min, Some(parse("-3").unwrap()));
        assert_eq!(v.max, Some(parse("5").unwrap()));
        assert_eq!(v.nulls, 1);
        assert_eq!(v.doc_count, 3);
        let s = row(&rows, "$.s", "string");
        assert_eq!(s.max_len, 7);
    }

    #[test]
    fn merge_of_guides_equals_single_pass() {
        let docs = [
            r#"{"a":1,"b":[{"c":2}]}"#,
            r#"{"a":"x","d":true}"#,
            r#"{"b":[{"c":"y"},{"e":null}]}"#,
        ];
        let whole = guide_of(&docs);
        let mut left = guide_of(&docs[..1]);
        let right = guide_of(&docs[1..]);
        left.merge(&right);
        assert_eq!(left.rows(), whole.rows());
        assert_eq!(left.doc_count, whole.doc_count);
    }

    #[test]
    fn singleton_detection() {
        let g = guide_of(&[r#"{"purchaseOrder":{"id":1,"items":[{"name":"x"}]}}"#]);
        let po = g.node_at("$.purchaseOrder").unwrap();
        assert!(!po.is_singleton_scalar());
        assert!(g.node_at("$.purchaseOrder.id").unwrap().is_singleton_scalar());
        assert!(!g.node_at("$.purchaseOrder.items.name").unwrap().is_singleton_scalar());
    }

    #[test]
    fn node_at_paths() {
        let g = guide_of(&[r#"{"a":{"b c":{"d":1}}}"#]);
        assert!(g.node_at("$").is_some());
        assert!(g.node_at("$.a").is_some());
        assert!(g.node_at("$.a.\"b c\".d").is_some());
        assert!(g.node_at("$.zz").is_none());
        assert!(g.node_at("a.b").is_none());
    }

    #[test]
    fn distinct_vs_leaf_paths() {
        let g = guide_of(&[r#"{"purchaseOrder":{"id":1,"podate":"x","items":[
                {"name":"a","price":1,"quantity":1}]}}"#]);
        // rows: purchaseOrder(object), id, podate, items(array), name,
        // price, quantity = 7; leaves = 5
        assert_eq!(g.distinct_paths(), 7);
        assert_eq!(g.leaf_paths(), 5);
    }

    #[test]
    fn kind_and_frequency_helpers() {
        let g = guide_of(&[
            r#"{"a":1,"b":[true],"c":{"d":"x"}}"#,
            r#"{"a":"two"}"#,
            r#"{"a":3}"#,
            r#"{"a":4}"#,
        ]);
        let a = g.node_at("$.a").unwrap();
        assert!(a.scalars.has_kind(ScalarKind::Number));
        assert!(a.scalars.has_kind(ScalarKind::String));
        assert!(!a.scalars.has_kind(ScalarKind::Boolean));
        assert_eq!(a.scalars.observed_kinds(), vec![ScalarKind::String, ScalarKind::Number]);
        assert!(a.seen());
        assert_eq!(a.doc_count_at_least(), 4);
        assert_eq!(a.frequency_pct(g.doc_count), 100);
        let b = g.node_at("$.b").unwrap();
        assert_eq!(b.frequency_pct(g.doc_count), 25);
        let c = g.node_at("$.c").unwrap();
        assert_eq!(c.child("d").map(|n| n.scalars.doc_count()), Some(1));
        assert!(c.child("zz").is_none());
        assert!(!GuideNode::default().seen());
    }

    #[test]
    fn sampled_docs_tracks_walked_documents_only() {
        let mut g = guide_of(&[r#"{"a":1}"#, r#"[1,2]"#, r#""scalar""#]);
        assert_eq!(g.sampled_docs(), 3);
        assert_eq!(g.sampled_docs(), g.doc_count);
        // the store's structure-signature fast path bumps doc_count
        // without walking: the sample stays at what was observed
        g.doc_count += 5;
        assert_eq!(g.sampled_docs(), 3);
        assert_eq!(DataGuide::new().sampled_docs(), 0);
    }

    #[test]
    fn persistent_guide_is_additive() {
        // §3.4: deletions do not remove paths — the guide has no removal
        // API at all; adding more docs only grows or keeps rows
        let mut g = guide_of(&[r#"{"a":1}"#]);
        let before = g.distinct_paths();
        g.add_document(&parse(r#"{"b":2}"#).unwrap());
        assert!(g.distinct_paths() > before);
    }
}

//! Property-based tests for the DataGuide: merge algebra and signature
//! consistency over random documents.

use fsdm_dataguide::{structure_signature, DataGuide};
use fsdm_json::{JsonNumber, JsonValue, Object};
use proptest::prelude::*;

fn arb_doc() -> impl Strategy<Value = JsonValue> {
    let field = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("items".to_string()),
    ];
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-50i64..50).prop_map(|v| JsonValue::Number(JsonNumber::Int(v))),
        "[a-z]{0,5}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 30, 4, move |inner| {
        let field = field.clone();
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::vec((field, inner), 0..4).prop_map(|pairs| {
                let mut o = Object::new();
                let mut seen = std::collections::HashSet::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        o.push(k, v);
                    }
                }
                JsonValue::Object(o)
            }),
        ]
    })
}

fn guide_of(docs: &[JsonValue]) -> DataGuide {
    let mut g = DataGuide::new();
    for d in docs {
        g.add_document(d);
    }
    g
}

fn shape(g: &DataGuide) -> Vec<(String, String, u64)> {
    g.rows().into_iter().map(|r| (r.path, r.type_str, r.doc_count)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging partial guides equals building one guide over the union —
    /// for any split point (the SQL aggregate's combine correctness).
    #[test]
    fn merge_equals_single_pass(
        docs in prop::collection::vec(arb_doc(), 0..12),
        split in 0usize..12,
    ) {
        let split = split.min(docs.len());
        let whole = guide_of(&docs);
        let mut left = guide_of(&docs[..split]);
        let right = guide_of(&docs[split..]);
        left.merge(&right);
        prop_assert_eq!(shape(&left), shape(&whole));
    }

    /// Adding documents never removes *paths* (the guide is additive,
    /// §3.4). Type strings may change — scalar types generalize — so only
    /// the path set is monotone.
    #[test]
    fn guide_is_monotone(docs in prop::collection::vec(arb_doc(), 1..10)) {
        let mut g = DataGuide::new();
        let mut prev: std::collections::HashSet<String> = Default::default();
        for d in &docs {
            g.add_document(d);
            let now: std::collections::HashSet<String> =
                g.rows().into_iter().map(|r| r.path).collect();
            prop_assert!(prev.is_subset(&now), "{:?} ⊄ {:?}", prev, now);
            prev = now;
        }
    }

    /// Equal structure signatures imply equal guide contributions: adding
    /// a same-signature document never adds rows.
    #[test]
    fn signature_soundness(doc in arb_doc(), other in arb_doc()) {
        let mut g = DataGuide::new();
        g.add_document(&doc);
        let rows_before = g.distinct_paths();
        if structure_signature(&doc) == structure_signature(&other) {
            g.add_document(&other);
            prop_assert_eq!(g.distinct_paths(), rows_before);
        }
    }

    /// doc_count totals track the number of documents.
    #[test]
    fn doc_counts_bounded(docs in prop::collection::vec(arb_doc(), 1..10)) {
        let g = guide_of(&docs);
        prop_assert_eq!(g.doc_count, docs.len() as u64);
        for r in g.rows() {
            prop_assert!(r.doc_count <= g.doc_count, "{} counted {} of {}", r.path, r.doc_count, g.doc_count);
        }
    }
}

//! `fsdm-core`: the Flexible Schema Data Management facade.
//!
//! This is the user-visible paradigm of the paper (§1, §3.3): **"write
//! without schema, read with schema."** Applications store JSON documents
//! into a collection with no upfront schema definition; the engine
//! continuously derives a [`fsdm_dataguide::DataGuide`] soft
//! schema, from which it can project a *virtual relational schema* —
//! `JSON_VALUE` virtual columns for singleton scalars and a de-normalized
//! master-detail view (DMDV) for nested arrays — that SQL queries then
//! treat exactly like physically shredded tables.
//!
//! ```
//! use fsdm_core::{FsdmDatabase, CollectionOptions};
//!
//! let mut db = FsdmDatabase::new();
//! db.create_collection("po", CollectionOptions::default()).unwrap();
//! db.put("po", r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08",
//!     "items":[{"name":"phone","price":100,"quantity":2}]}}"#).unwrap();
//!
//! // schema was never declared, yet it is queryable relationally:
//! db.infer_relational_schema("po").unwrap();
//! let r = db.sql("select * from po_dmdv").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! ```

use fsdm_dataguide::views::{add_vc, create_view_on_path};
use fsdm_dataguide::DataGuide;
use fsdm_sql::{Session, SqlError};
use fsdm_sqljson::{parse_path, Datum, PathEvaluator};
use fsdm_store::table::InsertValue;
use fsdm_store::{
    Cell, ColType, ColumnSpec, ConstraintMode, Expr, JsonStorage, Query, QueryResult, Table,
    TableSchema,
};

pub use fsdm_store::Database;

/// Error type of the facade.
pub type FsdmError = SqlError;

/// Result alias.
pub type Result<T> = std::result::Result<T, FsdmError>;

/// Options for a new JSON collection.
#[derive(Debug, Clone, Copy)]
pub struct CollectionOptions {
    /// Physical JSON storage.
    pub storage: JsonStorage,
    /// Maintain the persistent DataGuide on insert (§3.2).
    pub dataguide: bool,
    /// Validate documents with the IS JSON constraint.
    pub validate: bool,
}

impl Default for CollectionOptions {
    fn default() -> Self {
        CollectionOptions { storage: JsonStorage::Oson, dataguide: true, validate: true }
    }
}

/// The FSDM database: JSON collections + relational tables + SQL, with
/// DataGuide-driven schema inference.
pub struct FsdmDatabase {
    session: Session,
}

impl Default for FsdmDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl FsdmDatabase {
    /// Fresh database.
    pub fn new() -> Self {
        FsdmDatabase { session: Session::new() }
    }

    /// Access the underlying engine.
    pub fn engine(&self) -> &Database {
        &self.session.db
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Database {
        &mut self.session.db
    }

    /// Create a JSON collection: a table `(did number, jdoc json)`.
    pub fn create_collection(&mut self, name: &str, opts: CollectionOptions) -> Result<()> {
        let mode = match (opts.validate, opts.dataguide) {
            (_, true) => ConstraintMode::IsJsonWithDataGuide,
            (true, false) => ConstraintMode::IsJson,
            (false, false) => ConstraintMode::None,
        };
        let schema = TableSchema::new(
            name,
            vec![
                ColumnSpec::new("did", ColType::Number),
                ColumnSpec::json("jdoc", opts.storage, mode),
            ],
        );
        self.session.db.add_table(Table::new(schema));
        Ok(())
    }

    /// Store a JSON document; returns its document id. No schema is
    /// declared or checked beyond well-formedness — "schema-less for
    /// write".
    pub fn put(&mut self, collection: &str, json_text: &str) -> Result<u64> {
        let table = self
            .session
            .db
            .table_mut(collection)
            .ok_or_else(|| SqlError::new(format!("no collection {collection}")))?;
        let id = table.len() as u64;
        table
            .insert(vec![
                InsertValue::Datum(Datum::from(id as i64)),
                InsertValue::Json(json_text.to_string()),
            ])
            .map_err(SqlError::from)?;
        Ok(id)
    }

    /// Fetch a document back as JSON text.
    pub fn get(&self, collection: &str, id: u64) -> Option<String> {
        let table = self.session.db.table(collection)?;
        let row = table.rows.get(id as usize)?;
        match row.get(1) {
            Some(Cell::J(j)) => Some(j.decode_to_text()),
            _ => None,
        }
    }

    /// Number of documents in a collection.
    pub fn count(&self, collection: &str) -> usize {
        self.session.db.table(collection).map(|t| t.len()).unwrap_or(0)
    }

    /// The collection's persistent DataGuide (§3.2) — the continuously
    /// maintained soft schema.
    pub fn dataguide(&self, collection: &str) -> Option<&DataGuide> {
        self.session.db.table(collection).map(|t| &t.dataguide)
    }

    /// The DataGuide in hierarchical JSON form (`getDataGuide()` of
    /// §3.2.2).
    pub fn dataguide_json(&self, collection: &str) -> Option<String> {
        self.dataguide(collection)
            .map(|g| fsdm_json::to_string(&fsdm_dataguide::hierarchical::to_hierarchical_json(g)))
    }

    /// "Read with schema": derive the virtual relational schema from the
    /// DataGuide. Registers:
    ///
    /// * `JSON_VALUE` virtual columns on the base table for every
    ///   singleton scalar (`AddVC()` of §3.3.1), and a `<name>_mv` view
    ///   projecting them;
    /// * the full de-normalized master-detail view `<name>_dmdv`
    ///   (`CreateViewOnPath('$')` of §3.3.2).
    pub fn infer_relational_schema(&mut self, collection: &str) -> Result<InferredSchema> {
        let table = self
            .session
            .db
            .table(collection)
            .ok_or_else(|| SqlError::new(format!("no collection {collection}")))?;
        let guide = table.dataguide.clone();
        let json_col_name = "jdoc";
        let json_col = table
            .schema
            .col_index(json_col_name)
            .ok_or_else(|| SqlError::new("collection has no jdoc column"))?;
        // virtual columns
        let vcs = add_vc(&guide, json_col_name, 0);
        let table = self.session.db.table_mut(collection).expect("checked");
        let base_width = table.schema.width();
        let existing = table.virtual_columns.len();
        for vc in &vcs {
            if table.scan_col_index(&vc.name).is_none() {
                let path = parse_path(&vc.path).map_err(|e| SqlError::new(e.message))?;
                table.add_virtual_column(&vc.name, Expr::json_value(json_col, path, vc.ty));
            }
        }
        let _ = existing;
        // <name>_mv: did + the virtual columns
        let mut mv_exprs: Vec<(String, Expr)> = vec![("did".to_string(), Expr::Col(0))];
        for (i, vc) in vcs.iter().enumerate() {
            mv_exprs.push((vc.name.clone(), Expr::Col(base_width + i)));
        }
        let mv_plan = Query::Project { input: Box::new(Query::scan(collection)), exprs: mv_exprs };
        self.session.db.create_view(format!("{collection}_mv"), mv_plan);
        // <name>_dmdv
        let view = create_view_on_path(
            &guide,
            "$",
            json_col_name,
            &format!("{collection}_dmdv"),
            0,
            &Default::default(),
        )
        .ok_or_else(|| SqlError::new("empty DataGuide: insert documents first"))?;
        let columns = view.table_def.column_names();
        let dmdv_plan = Query::Project {
            input: Box::new(Query::JsonTable {
                input: Box::new(Query::scan(collection)),
                json_col,
                def: view.table_def.clone(),
            }),
            exprs: {
                // expose did + the JSON_TABLE columns, hiding the raw jdoc
                let mut exprs: Vec<(String, Expr)> = vec![("did".to_string(), Expr::Col(0))];
                let vc_count =
                    self.session.db.table(collection).map(|t| t.virtual_columns.len()).unwrap_or(0);
                let jt_base = 2 + vc_count; // did, jdoc, VCs…, then JT cols
                for (i, c) in columns.iter().enumerate() {
                    exprs.push((c.clone(), Expr::Col(jt_base + i)));
                }
                exprs
            },
        };
        self.session.db.create_view(format!("{collection}_dmdv"), dmdv_plan);
        Ok(InferredSchema {
            virtual_columns: vcs.iter().map(|v| v.name.clone()).collect(),
            mv_view: format!("{collection}_mv"),
            dmdv_view: format!("{collection}_dmdv"),
            dmdv_columns: columns,
            view_sql: view.sql,
        })
    }

    /// Run SQL.
    pub fn sql(&mut self, sql: &str) -> Result<QueryResult> {
        self.session.execute(sql)
    }

    /// Run SQL with positional binds.
    pub fn sql_with(&mut self, sql: &str, binds: &[Datum]) -> Result<QueryResult> {
        self.session.execute_with(sql, binds)
    }

    /// Run SQL while profiling the executor: for a SELECT the result
    /// comes back with an `EXPLAIN ANALYZE`-style
    /// [`fsdm_store::QueryProfile`] (per-operator output rows and
    /// inclusive wall time); DDL/DML return `None` for the profile.
    pub fn profile_sql(
        &mut self,
        sql: &str,
    ) -> Result<(QueryResult, Option<fsdm_store::QueryProfile>)> {
        self.session.profile(sql)
    }

    /// Run SQL under an armed trace session (see [`fsdm_obs::trace`]):
    /// the rows come back with the full span tree of the execution —
    /// operators, workers, morsels, path evaluations, index probes.
    /// Export with [`fsdm_obs::trace::Trace::to_chrome_json`] (Perfetto)
    /// or `to_collapsed` (flamegraph.pl).
    pub fn trace_sql(&mut self, sql: &str) -> Result<(QueryResult, fsdm_obs::trace::Trace)> {
        self.session.trace_sql(sql)
    }

    /// Arm the slow-query ring log (see [`fsdm_store::SlowLog`]): keep
    /// the last `cap` queries at or over `threshold_ns`, each captured
    /// with its SQL text, elapsed time, degree, and query profile.
    /// `cap = 0` disarms.
    pub fn set_slow_log(&mut self, threshold_ns: u64, cap: usize) {
        self.session.db.set_slow_log(threshold_ns, cap);
    }

    /// The slow-query ring as JSON (empty `entries` until armed).
    pub fn slow_log_json(&self) -> String {
        self.session.db.slow_log_json()
    }

    /// Snapshot of every metric recorded so far in the global
    /// [`fsdm_obs`] registry (`oson.*`, `sqljson.*`, `dataguide.*`,
    /// `index.*`, `store.*`). Use [`fsdm_obs::MetricsSnapshot::diff`]
    /// against an earlier snapshot to isolate one workload's activity.
    pub fn metrics_snapshot(&self) -> fsdm_obs::MetricsSnapshot {
        fsdm_obs::snapshot()
    }

    /// Evaluate a SQL/JSON path against every document; returns (id,
    /// matched values as JSON text) pairs.
    pub fn find(&self, collection: &str, path: &str) -> Result<Vec<(u64, Vec<String>)>> {
        let table = self
            .session
            .db
            .table(collection)
            .ok_or_else(|| SqlError::new(format!("no collection {collection}")))?;
        let jp = parse_path(path).map_err(|e| SqlError::new(e.message))?;
        let mut ev = PathEvaluator::new(jp.clone());
        let mut out = Vec::new();
        for (i, row) in table.rows.iter().enumerate() {
            if let Some(Cell::J(j)) = row.get(1) {
                let values: Vec<String> = match j {
                    fsdm_store::JsonCell::Text(s) => fsdm_sqljson::streaming::eval_text(s, &jp)
                        .map_err(|e| SqlError::new(e.to_string()))?
                        .iter()
                        .map(fsdm_json::to_string)
                        .collect(),
                    fsdm_store::JsonCell::Oson(b) => {
                        let doc =
                            fsdm_oson::OsonDoc::new(b).map_err(|e| SqlError::new(e.to_string()))?;
                        ev.evaluate_values(&doc).iter().map(fsdm_json::to_string).collect()
                    }
                    fsdm_store::JsonCell::Bson(b) => {
                        let doc =
                            fsdm_bson::BsonDoc::new(b).map_err(|e| SqlError::new(e.to_string()))?;
                        ev.evaluate_values(&doc).iter().map(fsdm_json::to_string).collect()
                    }
                };
                if !values.is_empty() {
                    out.push((i as u64, values));
                }
            }
        }
        Ok(out)
    }

    /// Build the schema-agnostic search index on a collection (§3.2).
    pub fn create_search_index(&mut self, collection: &str) -> Result<()> {
        self.session
            .db
            .table_mut(collection)
            .ok_or_else(|| SqlError::new(format!("no collection {collection}")))?
            .create_search_index()
            .map_err(SqlError::from)
    }

    /// `JSON_TEXTCONTAINS`: full-text keyword search through the index.
    pub fn text_contains(&self, collection: &str, path: &str, keyword: &str) -> Result<Vec<u64>> {
        let table = self
            .session
            .db
            .table(collection)
            .ok_or_else(|| SqlError::new(format!("no collection {collection}")))?;
        let ix = table
            .search_index
            .as_ref()
            .ok_or_else(|| SqlError::new("no search index; call create_search_index"))?;
        Ok(ix.docs_text_contains(path, keyword))
    }

    /// Load the collection's OSON-IMC cache (§5.2.2): text stays on disk,
    /// binary serves queries.
    pub fn populate_oson_imc(&mut self, collection: &str) -> Result<()> {
        self.session
            .db
            .table_mut(collection)
            .ok_or_else(|| SqlError::new(format!("no collection {collection}")))?
            .populate_oson_imc()
            .map_err(SqlError::from)
    }

    /// Materialize virtual columns into IMC vectors (§5.2.1).
    pub fn populate_vc_imc(&mut self, collection: &str, columns: &[&str]) -> Result<()> {
        self.session
            .db
            .table_mut(collection)
            .ok_or_else(|| SqlError::new(format!("no collection {collection}")))?
            .populate_vc_imc(columns)
            .map_err(SqlError::from)
    }
}

/// What [`FsdmDatabase::infer_relational_schema`] produced.
#[derive(Debug, Clone)]
pub struct InferredSchema {
    /// Names of the registered virtual columns.
    pub virtual_columns: Vec<String>,
    /// Name of the singleton-scalar view.
    pub mv_view: String,
    /// Name of the DMDV view.
    pub dmdv_view: String,
    /// DMDV output columns.
    pub dmdv_columns: Vec<String>,
    /// The Table 8–style SQL text of the generated view.
    pub view_sql: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    const PO_DOCS: [&str; 3] = [
        r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
            {"name":"phone","price":100,"quantity":2},
            {"name":"ipad","price":350.86,"quantity":3}]}}"#,
        r#"{"purchaseOrder":{"id":2,"podate":"2015-03-04","items":[
            {"name":"table","price":52.78,"quantity":2}]}}"#,
        r#"{"purchaseOrder":{"id":3,"podate":"2015-06-03","foreign_id":"CDEG35","items":[
            {"name":"TV","price":345.55,"quantity":1,
             "parts":[{"partName":"remoteCon","partQuantity":"1"}]}]}}"#,
    ];

    fn seeded() -> FsdmDatabase {
        let mut db = FsdmDatabase::new();
        db.create_collection("po", CollectionOptions::default()).unwrap();
        for d in PO_DOCS {
            db.put("po", d).unwrap();
        }
        db
    }

    #[test]
    fn put_get_roundtrip() {
        let db = seeded();
        assert_eq!(db.count("po"), 3);
        let text = db.get("po", 0).unwrap();
        let v = fsdm_json::parse(&text).unwrap();
        assert_eq!(v.get("purchaseOrder").unwrap().get("id").unwrap().as_i64(), Some(1));
        assert!(db.get("po", 99).is_none());
    }

    #[test]
    fn dataguide_grows_with_documents() {
        let db = seeded();
        let g = db.dataguide("po").unwrap();
        assert_eq!(g.doc_count, 3);
        assert!(g.rows().iter().any(|r| r.path == "$.purchaseOrder.items.parts.partName"));
        let json = db.dataguide_json("po").unwrap();
        assert!(json.contains("purchaseOrder"));
    }

    #[test]
    fn write_without_schema_read_with_schema() {
        let mut db = seeded();
        let schema = db.infer_relational_schema("po").unwrap();
        assert!(schema.virtual_columns.contains(&"jdoc$id".to_string()));
        // singleton view
        let mv = db.sql(&format!("select * from {}", schema.mv_view)).unwrap();
        assert_eq!(mv.rows.len(), 3);
        // DMDV: 2 + 1 + 1 item rows
        let dmdv = db.sql(&format!("select * from {}", schema.dmdv_view)).unwrap();
        assert_eq!(dmdv.rows.len(), 4);
        // SQL analytics over the inferred schema
        let r = db.sql("select count(*) from po_dmdv where \"jdoc$price\" > 100").unwrap();
        assert_eq!(r.rows[0][0], Datum::from(2i64));
        assert!(schema.view_sql.contains("JSON_TABLE"));
    }

    #[test]
    fn find_with_paths() {
        let db = seeded();
        let hits = db.find("po", "$.purchaseOrder.items[*]?(@.price > 300).name").unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, vec!["\"ipad\"".to_string()]);
    }

    #[test]
    fn search_index_text_contains() {
        let mut db = FsdmDatabase::new();
        db.create_collection("notes", CollectionOptions::default()).unwrap();
        db.put("notes", r#"{"note":"expedited shipping requested"}"#).unwrap();
        db.put("notes", r#"{"note":"gift wrap"}"#).unwrap();
        db.create_search_index("notes").unwrap();
        assert_eq!(db.text_contains("notes", "$.note", "shipping").unwrap(), vec![0]);
    }

    #[test]
    fn imc_modes_preserve_results() {
        let mut db = FsdmDatabase::new();
        db.create_collection(
            "po",
            CollectionOptions { storage: JsonStorage::Text, ..Default::default() },
        )
        .unwrap();
        for d in PO_DOCS {
            db.put("po", d).unwrap();
        }
        db.infer_relational_schema("po").unwrap();
        let q = "select count(*) from po where json_value(jdoc, '$.purchaseOrder.id' returning number) >= 2";
        let before = db.sql(q).unwrap();
        db.populate_oson_imc("po").unwrap();
        let after = db.sql(q).unwrap();
        assert_eq!(before, after);
        db.populate_vc_imc("po", &["jdoc$id"]).unwrap();
        let vc = db.sql("select count(*) from po where \"jdoc$id\" >= 2").unwrap();
        assert_eq!(vc.rows[0][0], before.rows[0][0]);
    }

    #[test]
    fn profile_sql_reports_operator_tree() {
        let mut db = seeded();
        db.infer_relational_schema("po").unwrap();
        let (r, profile) =
            db.profile_sql("select count(*) from po_dmdv where \"jdoc$price\" > 100").unwrap();
        assert_eq!(r.rows[0][0], Datum::from(2i64));
        let p = profile.expect("SELECT yields a profile");
        assert!(p.elapsed_ns() > 0);
        // the DMDV view expands to a JSON_TABLE pipeline over the scan;
        // the profile mirrors the *optimized* plan, where the §6.3
        // pushdown pre-filters the scan to the 2 qualifying documents
        assert_eq!(p.find("Scan(po,filtered)").unwrap().rows_out, 2);
        assert_eq!(p.find("JsonTable").unwrap().rows_out, 3, "2 + 1 items survive");
        assert_eq!(p.find("Filter").unwrap().rows_out, 2, "items with price > 100");
        assert_eq!(p.find("GroupBy").unwrap().rows_out, 1);
        // DDL does not run through the volcano executor
        let (_, none) = db.profile_sql("create table x (a number)").unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn metrics_snapshot_observes_activity() {
        let mut db = FsdmDatabase::new();
        let before = db.metrics_snapshot();
        db.create_collection("m", CollectionOptions::default()).unwrap();
        for i in 0..5 {
            db.put("m", &format!(r#"{{"a":{i},"b":"x"}}"#)).unwrap();
        }
        db.sql("select count(*) from m where json_value(jdoc, '$.a' returning number) >= 0")
            .unwrap();
        let delta = db.metrics_snapshot().diff(&before);
        // OSON encodes on insert; the DataGuide takes the signature fast
        // path for 4 of the 5 identically-shaped docs; the query runs
        // through the instrumented executor and path evaluator.
        assert!(delta.counter("oson.encode.docs") >= 5);
        assert!(delta.counter("dataguide.insert.changed") >= 1);
        assert!(delta.counter("store.insert.guide_fast_path") >= 4);
        assert!(delta.counter("store.exec.queries") >= 1);
        assert!(delta.counter("sqljson.eval.paths") >= 5);
    }

    #[test]
    fn invalid_documents_rejected() {
        let mut db = FsdmDatabase::new();
        db.create_collection("c", CollectionOptions::default()).unwrap();
        assert!(db.put("c", "{oops").is_err());
        assert_eq!(db.count("c"), 0);
    }

    #[test]
    fn mixed_sql_and_collections() {
        let mut db = seeded();
        db.sql("create table dept (id number, name varchar2(16))").unwrap();
        db.sql("insert into dept values (1, 'electronics')").unwrap();
        db.infer_relational_schema("po").unwrap();
        // relational table and JSON view in one query engine
        let r = db.sql("select name from dept").unwrap();
        assert_eq!(r.rows[0][0], Datum::from("electronics"));
    }
}

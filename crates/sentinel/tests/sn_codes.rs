//! Every SN code demonstrably fires on a deliberately-broken fixture
//! and stays quiet on the corrected twin — the same positive/negative
//! convention the FA and PK code suites follow.

use fsdm_analyze::Code;
use fsdm_sentinel::{analyze_sources, SentinelReport, ALLOW_BUDGET};

fn report_for(files: &[(&str, &str)]) -> SentinelReport {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, t)| ((*p).to_string(), (*t).to_string())).collect();
    analyze_sources(&owned)
}

fn codes(src: &str) -> Vec<Code> {
    report_for(&[("crates/x/src/lib.rs", src)]).findings.iter().map(|f| f.diag.code).collect()
}

// --- SN001 double-lock --------------------------------------------------

#[test]
fn sn001_fires_on_relocking_a_held_lock() {
    let src = r#"
use std::sync::Mutex;
struct S { inner: Mutex<u8> }
impl S {
    fn f(&self) {
        let a = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let b = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(a);
        drop(b);
    }
}
"#;
    assert_eq!(codes(src), vec![Code::DoubleLock]);
}

#[test]
fn sn001_respects_an_explicit_drop() {
    let src = r#"
use std::sync::Mutex;
struct S { inner: Mutex<u8> }
impl S {
    fn f(&self) {
        let a = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(a);
        let b = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(b);
    }
}
"#;
    assert_eq!(codes(src), vec![]);
}

#[test]
fn sn001_sees_through_a_callee_that_relocks() {
    let src = r#"
use std::sync::Mutex;
struct S { inner: Mutex<u8> }
impl S {
    fn leaf(&self) {
        let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(g);
    }
    fn f(&self) {
        let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        self.leaf();
        drop(g);
    }
}
"#;
    assert_eq!(codes(src), vec![Code::DoubleLock]);
}

// --- SN002 lock-order-inversion -----------------------------------------

#[test]
fn sn002_fires_on_descending_acquisition() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8>, inner: Mutex<u8> }
impl S {
    fn f(&self) {
        let a = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let b = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(a);
        drop(b);
    }
}
"#;
    assert_eq!(codes(src), vec![Code::LockOrderInversion]);
}

#[test]
fn sn002_accepts_ascending_acquisition() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8>, inner: Mutex<u8> }
impl S {
    fn f(&self) {
        let a = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let b = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(a);
        drop(b);
    }
}
"#;
    assert_eq!(codes(src), vec![]);
}

// --- SN003 lock-across-executor -----------------------------------------

const EXECUTOR_STUB: &str = "pub fn run_morsels() {}\n";

#[test]
fn sn003_fires_when_a_guard_is_live_across_the_executor() {
    let caller = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8> }
impl S {
    fn f(&self) {
        let g = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        run_morsels();
        drop(g);
    }
}
"#;
    let report = report_for(&[
        ("crates/store/src/parallel.rs", EXECUTOR_STUB),
        ("crates/x/src/lib.rs", caller),
    ]);
    let codes: Vec<Code> = report.findings.iter().map(|f| f.diag.code).collect();
    assert_eq!(codes, vec![Code::LockAcrossExecutor]);
}

#[test]
fn sn003_is_quiet_once_the_guard_is_dropped_first() {
    let caller = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8> }
impl S {
    fn f(&self) {
        let g = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drop(g);
        run_morsels();
    }
}
"#;
    let report = report_for(&[
        ("crates/store/src/parallel.rs", EXECUTOR_STUB),
        ("crates/x/src/lib.rs", caller),
    ]);
    assert!(report.findings.is_empty(), "{}", report.render_text());
}

// --- SN004 lock-across-panic --------------------------------------------

#[test]
fn sn004_fires_on_the_classic_lock_unwrap() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8> }
impl S {
    fn f(&self) -> u8 {
        let g = self.ring.lock().unwrap();
        *g
    }
}
"#;
    assert_eq!(codes(src), vec![Code::LockAcrossPanic]);
}

#[test]
fn sn004_accepts_a_poison_recovering_guard() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8> }
impl S {
    fn f(&self) -> u8 {
        let g = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g
    }
}
"#;
    assert_eq!(codes(src), vec![]);
}

#[test]
fn sn004_fires_on_indexing_under_a_guard() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<Vec<u8>> }
impl S {
    fn f(&self, xs: &[u8]) -> u8 {
        let g = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let v = xs[0];
        drop(g);
        v
    }
}
"#;
    assert_eq!(codes(src), vec![Code::LockAcrossPanic]);
}

// --- SN005 atomic-ordering ----------------------------------------------

#[test]
fn sn005_fires_on_a_relaxed_handshake_store() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
struct S { epoch: AtomicU64 }
impl S {
    fn f(&self) {
        self.epoch.store(1, Ordering::Relaxed);
    }
}
"#;
    assert_eq!(codes(src), vec![Code::AtomicOrdering]);
}

#[test]
fn sn005_fires_on_an_overstrong_counter() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
struct S { count: AtomicU64 }
impl S {
    fn f(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }
}
"#;
    assert_eq!(codes(src), vec![Code::AtomicOrdering]);
}

#[test]
fn sn005_fires_on_an_undeclared_atomic() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
struct S { widget: AtomicU64 }
impl S {
    fn f(&self) -> u64 {
        self.widget.load(Ordering::Acquire)
    }
}
"#;
    assert_eq!(codes(src), vec![Code::AtomicOrdering]);
}

#[test]
fn sn005_accepts_the_declared_disciplines() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
struct S { epoch: AtomicU64, count: AtomicU64 }
impl S {
    fn f(&self) -> u64 {
        self.epoch.store(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.epoch.load(Ordering::Acquire)
    }
}
"#;
    assert_eq!(codes(src), vec![]);
}

// --- SN006 mut-capture-aliasing -----------------------------------------

#[test]
fn sn006_fires_on_a_shared_mut_capture() {
    let src = r#"
fn go() {
    let mut total = 0u64;
    std::thread::scope(|s| {
        s.spawn(|| {
            total += 1;
        });
    });
    let _ = total;
}
"#;
    assert!(codes(src).contains(&Code::MutCaptureAliasing));
}

#[test]
fn sn006_is_quiet_for_move_closures_and_shadowing() {
    let src = r#"
fn go() {
    let mut total = 0u64;
    total += 1;
    std::thread::scope(|s| {
        s.spawn(move || {
            total += 1;
        });
        s.spawn(|| {
            let mut total = 0u64;
            total += 1;
        });
    });
}
"#;
    assert!(!codes(src).contains(&Code::MutCaptureAliasing));
}

// --- SN007 spawn-outside-executor ---------------------------------------

#[test]
fn sn007_fires_outside_the_executor() {
    let src = r#"
fn go() {
    std::thread::scope(|s| {
        s.spawn(move || {});
    });
}
"#;
    assert_eq!(codes(src), vec![Code::SpawnOutsideExecutor]);
}

#[test]
fn sn007_permits_spawns_in_the_executor_file() {
    let src = r#"
pub fn run_morsels() {
    std::thread::scope(|s| {
        s.spawn(move || {});
    });
}
"#;
    let report = report_for(&[("crates/store/src/parallel.rs", src)]);
    assert!(report.findings.is_empty(), "{}", report.render_text());
}

// --- allow escapes -------------------------------------------------------

#[test]
fn an_allow_on_the_line_above_suppresses_and_counts() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8> }
impl S {
    fn f(&self) -> u8 {
        // fsdm-sentinel: allow(lock-across-panic) -- exercised by tests
        let g = self.ring.lock().unwrap();
        *g
    }
}
"#;
    let report = report_for(&[("crates/x/src/lib.rs", src)]);
    assert!(report.findings.is_empty(), "{}", report.render_text());
    assert_eq!(report.allows_used, 1);
    assert_eq!(report.errors(), 0);
}

#[test]
fn an_unused_allow_is_an_error() {
    let src = r#"
// fsdm-sentinel: allow(double-lock) -- nothing here double-locks
fn quiet() {}
"#;
    let report = report_for(&[("crates/x/src/lib.rs", src)]);
    assert_eq!(report.errors(), 1, "{}", report.render_text());
    assert!(report.meta_errors[0].contains("unused"), "{:?}", report.meta_errors);
}

#[test]
fn allows_are_forbidden_in_the_executor() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8> }
impl S {
    fn helper(&self) -> u8 {
        // fsdm-sentinel: allow(lock-across-panic) -- not even here
        let g = self.ring.lock().unwrap();
        *g
    }
}
pub fn run_morsels() {}
"#;
    let report = report_for(&[("crates/store/src/parallel.rs", src)]);
    assert_eq!(report.findings.len(), 1, "the finding must survive");
    assert_eq!(report.findings[0].diag.code, Code::LockAcrossPanic);
    assert!(report.meta_errors.iter().any(|m| m.contains("forbidden")), "{:?}", report.meta_errors);
}

#[test]
fn the_allow_budget_is_enforced() {
    let one = |name: &str| {
        format!(
            "    fn {name}(&self) -> u8 {{\n        \
             // fsdm-sentinel: allow(lock-across-panic) -- budget test\n        \
             let g = self.ring.lock().unwrap();\n        *g\n    }}\n"
        )
    };
    let mut src = String::from("use std::sync::Mutex;\nstruct S { ring: Mutex<u8> }\nimpl S {\n");
    for i in 0..=ALLOW_BUDGET {
        src.push_str(&one(&format!("f{i}")));
    }
    src.push_str("}\n");
    let report = report_for(&[("crates/x/src/lib.rs", &src)]);
    assert_eq!(report.allows_used, ALLOW_BUDGET + 1);
    assert!(report.meta_errors.iter().any(|m| m.contains("budget")), "{:?}", report.meta_errors);
}

#[test]
fn malformed_and_unknown_allows_are_errors() {
    let src = r#"
// fsdm-sentinel: allow(not-a-rule) -- typo
// fsdm-sentinel: allow(double-lock) missing the reason separator
fn quiet() {}
"#;
    let report = report_for(&[("crates/x/src/lib.rs", src)]);
    assert_eq!(report.errors(), 2, "{:?}", report.meta_errors);
    assert!(report.meta_errors.iter().any(|m| m.contains("unknown rule")));
    assert!(report.meta_errors.iter().any(|m| m.contains("malformed")));
}

// --- report rendering ----------------------------------------------------

#[test]
fn reports_render_counts_carets_and_stable_ids() {
    let src = r#"
use std::sync::Mutex;
struct S { ring: Mutex<u8> }
impl S {
    fn f(&self) -> u8 {
        let g = self.ring.lock().unwrap();
        *g
    }
}
"#;
    let report = report_for(&[("crates/x/src/lib.rs", src)]);
    let text = report.render_text();
    assert!(text.contains(Code::LockAcrossPanic.id()), "{text}");
    assert!(text.contains('^'), "caret snippet expected: {text}");
    assert!(text.contains("crates/x/src/lib.rs:6:"), "{text}");
    let json = report.render_json();
    assert!(json.contains("\"errors\": 1"), "{json}");
    assert!(json.contains(&format!("\"code\": \"{}\"", Code::LockAcrossPanic.id())), "{json}");

    let clean = report_for(&[("crates/x/src/lib.rs", "fn quiet() {}\n")]);
    assert!(clean.render_json().contains("\"errors\": 0"), "{}", clean.render_json());
}

//! `fsdm-sentinel` — run the concurrency analysis over the workspace.
//!
//! ```text
//! fsdm-sentinel [--root DIR] [--json]
//! ```
//!
//! Exits non-zero when any SN finding or allow meta-error survives, so
//! `ci.sh` can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("fsdm-sentinel: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: fsdm-sentinel [--root DIR] [--json]");
                println!(
                    "  concurrency lint over the workspace sources ({}–{})",
                    fsdm_analyze::Code::DoubleLock.id(),
                    fsdm_analyze::Code::SpawnOutsideExecutor.id()
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fsdm-sentinel: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let report = match fsdm_sentinel::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fsdm-sentinel: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print!("{}", if json { report.render_json() } else { report.render_text() });
    if report.errors() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Per-function concurrency fact extraction.
//!
//! One pass over each scanned source file recovers, for every non-test
//! function, the ordered stream of concurrency-relevant **events** in
//! its body: lock acquisitions (direct `.lock()`/`.read()`/`.write()`
//! on a catalog-declared lock, or a call through a recognized lock
//! wrapper), atomic operations with their `Ordering` tokens, panic-
//! capable sites (`unwrap`/`expect`/panicking macros/indexing), thread
//! spawns with their closure captures, and intra-workspace calls. The
//! checks in [`crate::checks`] replay these streams against the lock
//! hierarchy and atomic disciplines declared in `fsdm_obs::catalog`.
//!
//! Extraction is syntactic and deliberately under-approximate: method
//! calls on receivers other than `self` are not resolved, and a name
//! that is ambiguous across the workspace resolves to nothing. That
//! keeps every emitted diagnostic anchored to a concrete token the
//! analyzer actually understood.

use fsdm_lex::{line_idents, parse_items, scan};
use fsdm_obs::catalog;

/// Atomic method names; an occurrence only counts as an atomic op when
/// the call's arguments carry a memory-`Ordering` token (so `Vec::swap`
/// or `io::Read::read` never match).
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The memory-ordering tokens, matched bare (`Relaxed`) or qualified
/// (`Ordering::Relaxed` — the path prefix is just more idents).
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Macros that unwind on failure.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// The observability macros that reach the metrics registry's `inner`
/// lock; modeled as calls to the registry methods they expand to.
const METRIC_MACROS: &[&str] = &["counter", "gauge", "histogram"];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "let", "mut", "ref", "move", "in",
    "as", "fn", "impl", "trait", "struct", "enum", "mod", "use", "pub", "crate", "super", "Self",
    "where", "unsafe", "dyn", "box", "break", "continue", "static", "const", "type", "extern",
    "await", "yield", "true", "false",
];

/// Keywords that may precede `[` without the `[` being an index
/// expression (same inventory `fsdm-tidy`'s no-index rule uses).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "as", "move", "static", "const",
    "dyn", "impl", "for", "while", "loop", "break", "continue", "where", "pub", "fn", "type",
    "use", "mod", "enum", "struct", "trait", "union", "unsafe", "extern", "box", "await", "yield",
];

/// One concurrency-relevant token in a function body.
#[derive(Debug, Clone)]
pub struct Event {
    /// 0-based line.
    pub line: usize,
    /// 0-based starting column.
    pub col: usize,
    /// Token length (for caret rendering).
    pub len: usize,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy the checks replay.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A catalog-declared lock is acquired here.
    Lock {
        /// Catalog name of the lock.
        lock: String,
        /// True when the guard is `let`-bound (held to end of function
        /// in this model); false for a temporary consumed by its own
        /// statement.
        let_bound: bool,
        /// The `let` binding's identifier, for `drop(x)` release
        /// tracking.
        binding: Option<String>,
    },
    /// A call to another workspace function (possibly a lock wrapper).
    Call {
        /// Callee as written: bare name, or `Type::name` for
        /// `self.name(..)` and the metric macros.
        callee: String,
        /// Trailing identifier of the first argument when it names a
        /// catalog lock (`lock(&self.ring)` → `ring`).
        arg_lock: Option<String>,
        /// Trailing identifier of the first argument regardless
        /// (`drop(guard)` → `guard`).
        arg_ident: Option<String>,
        /// Whether a wrapper-acquired guard would be `let`-bound here.
        let_bound: bool,
    },
    /// A site that can unwind: `unwrap`/`expect`, a panicking macro, or
    /// an index expression.
    Panic {
        /// Which kind of site, for the message.
        what: &'static str,
    },
    /// An atomic operation carrying at least one `Ordering` token.
    Atomic {
        /// Receiver name (field, static, local binding, or — for tuple
        /// structs like `Counter(AtomicU64)` — the impl type).
        name: String,
        /// The method (`load`, `store`, `fetch_add`, …).
        method: String,
        /// Every ordering token in the argument list, in order.
        orderings: Vec<String>,
    },
    /// A `spawn(..)` call.
    Spawn {
        /// `let mut` bindings of the enclosing function, declared before
        /// the spawn, that a non-`move` closure argument mentions.
        mut_captures: Vec<String>,
    },
}

/// The fact stream of one function.
#[derive(Debug)]
pub struct FnFacts {
    /// Bare function name.
    pub name: String,
    /// `Type::name` for methods, `name` for free functions.
    pub qualified: String,
    /// 0-based signature line.
    pub sig_line: usize,
    /// 0-based last body line.
    pub body_end: usize,
    /// Events in source order.
    pub events: Vec<Event>,
    /// True when the body locks one of its own parameters — a lock
    /// wrapper like `fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T>`;
    /// the acquired lock is named by the caller's argument.
    pub wrapper: bool,
}

/// Everything sentinel knows about one file.
#[derive(Debug)]
pub struct FileFacts {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Raw source lines, for caret snippets.
    pub raw_lines: Vec<String>,
    /// Plain `//` comment texts by line, for allow annotations.
    pub comments: Vec<(usize, String)>,
    /// Per-function fact streams (non-test functions only).
    pub fns: Vec<FnFacts>,
}

/// Extract the fact streams of one source file.
pub fn extract(path: &str, text: &str) -> FileFacts {
    let sc = scan(text);
    let items = parse_items(&sc);
    let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
    let masked: Vec<Vec<char>> =
        (0..sc.lines.len()).map(|l| sc.masked(l).chars().collect()).collect();

    let mut fns = Vec::new();
    for f in &items.functions {
        if f.in_test {
            continue;
        }
        let mut facts = FnFacts {
            name: f.name.clone(),
            qualified: f.qualified(),
            sig_line: f.sig_line,
            body_end: f.body_end,
            events: Vec::new(),
            wrapper: false,
        };
        // pass 1: `let mut` bindings, for spawn-capture analysis
        let mut mut_bindings: Vec<(String, usize)> = Vec::new();
        let last = f.body_end.min(masked.len().saturating_sub(1));
        for (line, chars) in masked.iter().enumerate().take(last + 1).skip(f.body_start) {
            let text: String = chars.iter().collect();
            let ids = line_idents(&text);
            for w in ids.windows(3) {
                if w[0].2 == "let" && w[1].2 == "mut" {
                    mut_bindings.push((w[2].2.clone(), line));
                }
            }
        }
        // pass 2: the event stream
        for line in f.sig_line..=f.body_end.min(masked.len().saturating_sub(1)) {
            extract_line(&masked, line, f, &mut_bindings, &mut facts);
        }
        fns.push(facts);
    }

    FileFacts { path: path.to_string(), raw_lines, comments: sc.comments.clone(), fns }
}

/// Process one masked line of a function body.
fn extract_line(
    masked: &[Vec<char>],
    line: usize,
    item: &fsdm_lex::FnItem,
    mut_bindings: &[(String, usize)],
    out: &mut FnFacts,
) {
    let chars = &masked[line];
    let text: String = chars.iter().collect();
    let mut prev_ident: Option<String> = None;
    for (s, e, w) in line_idents(&text) {
        // the declaration's own name is not a call to it
        if prev_ident.replace(w.clone()).as_deref() == Some("fn") {
            continue;
        }
        let prev = prev_non_ws(chars, s);
        let next = next_non_ws(chars, e);
        let is_method = prev == Some('.');
        let is_call = next == Some('(');
        let is_macro = next == Some('!');
        let len = e - s;

        // panicking method calls
        if is_method && is_call && (w == "unwrap" || w == "expect") {
            out.events.push(Event { line, col: s, len, kind: EventKind::Panic { what: "unwrap" } });
            continue;
        }
        // panicking macros
        if is_macro && PANIC_MACROS.contains(&w.as_str()) {
            out.events.push(Event { line, col: s, len, kind: EventKind::Panic { what: "macro" } });
            continue;
        }
        // index expressions: `xs[` (immediately adjacent, as in tidy)
        if chars.get(e) == Some(&'[')
            && !NON_INDEX_KEYWORDS.contains(&w.as_str())
            && (s == 0 || chars.get(s - 1) != Some(&'\''))
        {
            out.events.push(Event { line, col: s, len, kind: EventKind::Panic { what: "index" } });
            continue;
        }
        // atomic operations (need an Ordering token among the args)
        if is_method && is_call && ATOMIC_METHODS.contains(&w.as_str()) {
            if let Some(open) = find_char(chars, e, '(') {
                let args = balanced_text(masked, line, open);
                let orderings: Vec<String> = line_idents(&args)
                    .into_iter()
                    .map(|(_, _, id)| id)
                    .filter(|id| ORDERINGS.contains(&id.as_str()))
                    .collect();
                if !orderings.is_empty() {
                    let name = receiver(chars, s)
                        .or_else(|| item.impl_type.clone())
                        .unwrap_or_else(|| w.clone());
                    out.events.push(Event {
                        line,
                        col: s,
                        len,
                        kind: EventKind::Atomic { name, method: w.clone(), orderings },
                    });
                    continue;
                }
            }
        }
        // direct lock acquisitions and wrapper detection
        if is_method && is_call && (w == "lock" || w == "read" || w == "write") {
            if let Some(recv) = receiver(chars, s) {
                if lock_rank(&recv).is_some() {
                    let (let_bound, binding) = let_binding(chars, chain_start(chars, s));
                    out.events.push(Event {
                        line,
                        col: s,
                        len,
                        kind: EventKind::Lock { lock: recv, let_bound, binding },
                    });
                    continue;
                }
                if w == "lock" && item.params.contains(&recv) {
                    out.wrapper = true;
                    continue;
                }
            }
        }
        // spawn sites
        if is_call && w == "spawn" && (is_method || prev == Some(':')) {
            let mut_captures = spawn_captures(masked, line, e, mut_bindings);
            out.events.push(Event { line, col: s, len, kind: EventKind::Spawn { mut_captures } });
            continue;
        }
        // metric macros: modeled as registry method calls
        if is_macro && METRIC_MACROS.contains(&w.as_str()) {
            out.events.push(Event {
                line,
                col: s,
                len,
                kind: EventKind::Call {
                    callee: format!("MetricsRegistry::{w}"),
                    arg_lock: None,
                    arg_ident: None,
                    let_bound: false,
                },
            });
            continue;
        }
        // plain calls: free functions, paths, and `self.method(..)`
        if is_call && !is_macro && !CALL_KEYWORDS.contains(&w.as_str()) {
            let callee = if is_method {
                match (receiver(chars, s), &item.impl_type) {
                    (Some(recv), Some(ty)) if recv == "self" => format!("{ty}::{w}"),
                    _ => continue,
                }
            } else {
                w.clone()
            };
            let (arg_lock, arg_ident) = match find_char(chars, e, '(') {
                Some(open) => first_arg_idents(masked, line, open),
                None => (None, None),
            };
            let (let_bound, _) = let_binding(chars, s);
            out.events.push(Event {
                line,
                col: s,
                len,
                kind: EventKind::Call { callee, arg_lock, arg_ident, let_bound },
            });
        }
    }
}

fn prev_non_ws(chars: &[char], upto: usize) -> Option<char> {
    chars.get(..upto).and_then(|cs| cs.iter().rev().find(|c| !c.is_whitespace()).copied())
}

fn next_non_ws(chars: &[char], from: usize) -> Option<char> {
    chars.get(from..).and_then(|cs| cs.iter().find(|c| !c.is_whitespace()).copied())
}

fn find_char(chars: &[char], from: usize, target: char) -> Option<usize> {
    chars.get(from..)?.iter().position(|&c| c == target).map(|p| from + p)
}

/// Rank of a catalog-declared lock, if any.
pub fn lock_rank(name: &str) -> Option<u32> {
    catalog::LOCKS.iter().find(|(n, _)| *n == name).map(|(_, r)| *r)
}

/// The receiver identifier of a `.method(..)` call: the identifier that
/// precedes the final `.` before `method_start`. Bracketed suffixes are
/// skipped (`claims[i].fetch_add` and `buckets[idx].load` both resolve
/// to the collection's name); an all-digit "identifier" is a tuple
/// field (`self.0.fetch_add`) and resolves to `None` so the caller can
/// substitute the impl type.
fn receiver(chars: &[char], method_start: usize) -> Option<String> {
    let mut i = method_start;
    // step over whitespace then the `.`
    while i > 0 && chars.get(i - 1).is_some_and(|c| c.is_whitespace()) {
        i -= 1;
    }
    if i == 0 || chars.get(i - 1) != Some(&'.') {
        return None;
    }
    i -= 1;
    while i > 0 && chars.get(i - 1).is_some_and(|c| c.is_whitespace()) {
        i -= 1;
    }
    // skip one bracketed suffix group: `xs[i]` or a call `f(x)`
    for (close, open) in [(']', '['), (')', '(')] {
        if chars.get(i.wrapping_sub(1)) == Some(&close) {
            let mut depth = 0usize;
            while i > 0 {
                i -= 1;
                let Some(&c) = chars.get(i) else { break };
                if c == close {
                    depth += 1;
                } else if c == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        }
    }
    let end = i;
    while i > 0 && chars.get(i - 1).is_some_and(|&c| c.is_alphanumeric() || c == '_') {
        i -= 1;
    }
    if i == end {
        return None;
    }
    let name: String = chars.get(i..end)?.iter().collect();
    if name.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name)
}

/// Start column of the receiver chain ending at `method_start`
/// (`self.inner.lock` → the `s` of `self`).
fn chain_start(chars: &[char], method_start: usize) -> usize {
    let mut i = method_start;
    while i > 0
        && chars
            .get(i - 1)
            .is_some_and(|&c| c.is_alphanumeric() || c == '_' || c == '.' || c == ':')
    {
        i -= 1;
    }
    i
}

/// Whether the expression starting at `expr_start` is the entire
/// initializer of a `let` statement on this line — i.e. the guard it
/// produces is named and lives to the end of the enclosing block. Also
/// returns the binding identifier. `let spans = take(&mut *lock(..))`
/// does NOT qualify: the lock call is nested, so its guard is a
/// temporary.
fn let_binding(chars: &[char], expr_start: usize) -> (bool, Option<String>) {
    let head: String = chars.get(..expr_start).map(|cs| cs.iter().collect()).unwrap_or_default();
    let Some(eq) = head.rfind('=') else { return (false, None) };
    if !head[eq + 1..].trim().is_empty() {
        return (false, None);
    }
    let ids = line_idents(&head[..eq]);
    match ids.first().map(|(_, _, w)| w.as_str()) {
        Some("let") => {
            let binding = ids.iter().rev().map(|(_, _, w)| w.clone()).find(|w| w != "mut");
            (true, binding.filter(|b| b != "let"))
        }
        _ => (false, None),
    }
}

/// Text of a balanced `(..)` group starting at `open` on `line`,
/// spanning up to 400 following lines.
fn balanced_text(masked: &[Vec<char>], line: usize, open: usize) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    let mut col = open;
    for chars in masked.iter().skip(line).take(400) {
        let mut i = col;
        while i < chars.len() {
            let Some(&c) = chars.get(i) else { break };
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        out.push(c);
                        return out;
                    }
                }
                _ => {}
            }
            out.push(c);
            i += 1;
        }
        out.push('\n');
        col = 0;
    }
    out
}

/// Trailing identifier of a call's first argument: `(and whether it
/// names a catalog lock)`. `lock(&self.ring)` → `ring`.
fn first_arg_idents(
    masked: &[Vec<char>],
    line: usize,
    open: usize,
) -> (Option<String>, Option<String>) {
    let text = balanced_text(masked, line, open);
    let inner = text.strip_prefix('(').unwrap_or(&text);
    let mut depth = 0usize;
    let mut first = String::new();
    for c in inner.chars() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => break,
            _ => {}
        }
        first.push(c);
    }
    let trailing = line_idents(&first).into_iter().map(|(_, _, w)| w).next_back();
    let lock = trailing.clone().filter(|t| lock_rank(t).is_some());
    (lock, trailing)
}

/// `let mut` bindings of the enclosing function, declared before the
/// spawn, that the spawn's non-`move` closure argument mentions.
fn spawn_captures(
    masked: &[Vec<char>],
    spawn_line: usize,
    after_ident: usize,
    mut_bindings: &[(String, usize)],
) -> Vec<String> {
    let Some(open) = find_char(&masked[spawn_line], after_ident, '(') else { return Vec::new() };
    let text = balanced_text(masked, spawn_line, open);
    let inner = text.strip_prefix('(').unwrap_or(&text);
    if inner.trim_start().starts_with("move") {
        return Vec::new();
    }
    // closure params sit between the first two `|`; exclude them
    let mut params: Vec<String> = Vec::new();
    let mut body = inner;
    if let Some(p0) = inner.find('|') {
        if let Some(p1) = inner[p0 + 1..].find('|') {
            params =
                line_idents(&inner[p0 + 1..p0 + 1 + p1]).into_iter().map(|(_, _, w)| w).collect();
            body = &inner[p0 + 2 + p1..];
        }
    }
    // a `let` inside the closure shadows the outer binding: the worker
    // in `run_morsels` re-declares `scratch` without capturing anything
    let body_ids = line_idents(body);
    let mut shadowed: Vec<&str> = Vec::new();
    for (i, (_, _, w)) in body_ids.iter().enumerate() {
        if w == "let" {
            if let Some((_, _, bound)) = body_ids[i + 1..].iter().find(|(_, _, x)| x != "mut") {
                shadowed.push(bound);
            }
        }
    }
    let eligible: Vec<&String> = mut_bindings
        .iter()
        .filter(|(name, line)| {
            *line < spawn_line && !params.contains(name) && !shadowed.contains(&name.as_str())
        })
        .map(|(name, _)| name)
        .collect();
    let mut seen: Vec<String> = Vec::new();
    for (_, _, w) in &body_ids {
        if eligible.contains(&w) && !seen.contains(w) {
            seen.push(w.clone());
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events_of(src: &str) -> Vec<Event> {
        let facts = extract("crates/x/src/lib.rs", src);
        facts.fns.into_iter().flat_map(|f| f.events).collect()
    }

    #[test]
    fn direct_lock_acquisition_is_let_bound_aware() {
        let src = "use std::sync::Mutex;\nstruct S { inner: Mutex<u8> }\nimpl S {\n    fn a(&self) {\n        let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n        drop(g);\n    }\n    fn b(&self) -> u8 {\n        *self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n    }\n}\n";
        let evs = events_of(src);
        let locks: Vec<(&str, bool)> = evs
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Lock { lock, let_bound, .. } => Some((lock.as_str(), *let_bound)),
                _ => None,
            })
            .collect();
        assert_eq!(locks, vec![("inner", true), ("inner", false)]);
    }

    #[test]
    fn wrapper_functions_are_recognized_and_call_args_resolved() {
        let src = "use std::sync::{Mutex, MutexGuard};\nstruct S { ring: Mutex<u8> }\nfn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\nimpl S {\n    fn touch(&self) {\n        let mut ring = lock(&self.ring);\n        *ring += 1;\n    }\n}\n";
        let facts = extract("crates/x/src/lib.rs", src);
        let wrapper = facts.fns.iter().find(|f| f.name == "lock").expect("wrapper fn");
        assert!(wrapper.wrapper);
        let touch = facts.fns.iter().find(|f| f.name == "touch").expect("touch fn");
        let call = touch
            .events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Call { callee, arg_lock, let_bound, .. } if callee == "lock" => {
                    Some((arg_lock.clone(), *let_bound))
                }
                _ => None,
            })
            .expect("call to wrapper");
        assert_eq!(call, (Some("ring".to_string()), true));
    }

    #[test]
    fn atomics_require_an_ordering_token() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering::Relaxed};\nstruct C(AtomicU64);\nimpl C {\n    fn bump(&self, v: &mut Vec<u8>) {\n        self.0.fetch_add(1, Relaxed);\n        v.swap(0, 1);\n    }\n}\n";
        let evs = events_of(src);
        let atomics: Vec<(&str, &str)> = evs
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Atomic { name, orderings, .. } => {
                    Some((name.as_str(), orderings[0].as_str()))
                }
                _ => None,
            })
            .collect();
        // tuple-field receiver resolves to the impl type; Vec::swap
        // (no Ordering token) is not an atomic op
        assert_eq!(atomics, vec![("C", "Relaxed")]);
    }

    #[test]
    fn spawn_captures_mut_bindings_from_the_enclosing_scope() {
        let src = "fn go() {\n    let mut total = 0u64;\n    std::thread::scope(|s| {\n        s.spawn(|| {\n            total += 1;\n        });\n    });\n    let _ = total;\n}\n";
        let evs = events_of(src);
        let caps: Vec<Vec<String>> = evs
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Spawn { mut_captures } => Some(mut_captures.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(caps, vec![vec!["total".to_string()]]);
    }

    #[test]
    fn move_closures_and_closure_locals_do_not_count_as_captures() {
        let src = "fn go() {\n    let mut total = 0u64;\n    std::thread::scope(|s| {\n        s.spawn(move || {\n            total += 1;\n        });\n        s.spawn(|| {\n            let mut local = Vec::new();\n            local.push(1);\n        });\n    });\n}\n";
        let evs = events_of(src);
        for e in &evs {
            if let EventKind::Spawn { mut_captures } = &e.kind {
                assert!(mut_captures.is_empty(), "{mut_captures:?}");
            }
        }
        assert_eq!(evs.iter().filter(|e| matches!(e.kind, EventKind::Spawn { .. })).count(), 2);
    }

    #[test]
    fn test_code_is_excluded() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        std::thread::spawn(|| {});\n    }\n}\n";
        assert!(events_of(src).is_empty());
    }

    #[test]
    fn panic_sites_cover_unwrap_macros_and_indexing() {
        let src = "fn f(v: &[u8], o: Option<u8>) -> u8 {\n    let a = o.unwrap();\n    assert!(a > 0);\n    v[0] + a\n}\n";
        let whats: Vec<&str> = events_of(src)
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Panic { what } => Some(what),
                _ => None,
            })
            .collect();
        assert_eq!(whats, vec!["unwrap", "macro", "index"]);
    }

    #[test]
    fn metric_macros_become_registry_calls() {
        let src =
            "fn f() {\n    fsdm_obs::counter!(fsdm_obs::catalog::STORE_EXEC_QUERIES).add(1);\n}\n";
        let callees: Vec<String> = events_of(src)
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Call { callee, .. } => Some(callee.clone()),
                _ => None,
            })
            .collect();
        assert!(callees.contains(&"MetricsRegistry::counter".to_string()), "{callees:?}");
    }
}

//! The SN rules: replay each function's event stream against the
//! declared lock hierarchy and atomic disciplines, over a workspace
//! call graph with transitive may-acquire sets.

use std::collections::HashMap;

use fsdm_analyze::{Code, Diagnostic};
use fsdm_obs::catalog::{self, AtomicDiscipline};
use fsdm_sqljson::Span;

use crate::facts::{lock_rank, Event, EventKind, FileFacts, FnFacts};

/// The file that owns thread spawning; `spawn` anywhere else is SN007
/// and sentinel allow annotations are forbidden here entirely.
pub const EXECUTOR_FILE: &str = "crates/store/src/parallel.rs";

/// The executor's entry point: holding a lock across a call that
/// reaches it is SN003.
const EXECUTOR_ENTRY: &str = "run_morsels";

/// The source file declaring the failpoint name catalog; `fire` call
/// sites elsewhere must pass one of its constants (SN008).
pub const FAULT_CATALOG_FILE: &str = "crates/fault/src/catalog.rs";

/// One verified finding, pre-allow-filtering.
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Repo-relative path.
    pub file: String,
    /// 0-based line.
    pub line: usize,
    /// The rendered diagnostic (span = columns within the line).
    pub diag: Diagnostic,
}

/// A function's position in the workspace fact set.
type FnRef = (usize, usize);

/// Resolution and reachability context shared by all rule walks.
struct Graph<'a> {
    files: &'a [FileFacts],
    /// bare name → every function carrying it
    by_name: HashMap<&'a str, Vec<FnRef>>,
    /// `Type::name` → every method carrying it
    by_qualified: HashMap<&'a str, Vec<FnRef>>,
}

impl<'a> Graph<'a> {
    fn build(files: &'a [FileFacts]) -> Graph<'a> {
        let mut by_name: HashMap<&str, Vec<FnRef>> = HashMap::new();
        let mut by_qualified: HashMap<&str, Vec<FnRef>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                by_name.entry(&f.name).or_default().push((fi, gi));
                if f.qualified != f.name {
                    by_qualified.entry(&f.qualified).or_default().push((fi, gi));
                }
            }
        }
        Graph { files, by_name, by_qualified }
    }

    fn get(&self, r: FnRef) -> &'a FnFacts {
        &self.files[r.0].fns[r.1]
    }

    /// Resolve a callee string from a given file: same-file definitions
    /// win, then a workspace-unique name; ambiguity resolves to nothing.
    fn resolve(&self, callee: &str, from_file: usize) -> Option<FnRef> {
        let table = if callee.contains("::") { &self.by_qualified } else { &self.by_name };
        let candidates = table.get(callee)?;
        let local: Vec<FnRef> = candidates.iter().copied().filter(|r| r.0 == from_file).collect();
        match (local.len(), candidates.len()) {
            (1, _) => Some(local[0]),
            (0, 1) => Some(candidates[0]),
            _ => None,
        }
    }

    /// Locks a function may acquire, transitively through resolved
    /// calls (wrapper-parameter locks attribute to the call sites).
    fn transitive_locks(&self, r: FnRef, memo: &mut HashMap<FnRef, Vec<String>>) -> Vec<String> {
        if let Some(cached) = memo.get(&r) {
            return cached.clone();
        }
        // mark in-progress to cut cycles
        memo.insert(r, Vec::new());
        let mut locks: Vec<String> = Vec::new();
        for ev in &self.get(r).events {
            match &ev.kind {
                EventKind::Lock { lock, .. } => push_unique(&mut locks, lock),
                EventKind::Call { callee, arg_lock, .. } => {
                    if let Some(target) = self.resolve(callee, r.0) {
                        if self.get(target).wrapper {
                            if let Some(l) = arg_lock {
                                push_unique(&mut locks, l);
                            }
                        }
                        for l in self.transitive_locks(target, memo) {
                            push_unique(&mut locks, &l);
                        }
                    }
                }
                _ => {}
            }
        }
        memo.insert(r, locks.clone());
        locks
    }

    /// Whether a function's calls may reach the morsel executor.
    fn reaches_executor(&self, r: FnRef, memo: &mut HashMap<FnRef, bool>) -> bool {
        if let Some(&cached) = memo.get(&r) {
            return cached;
        }
        memo.insert(r, false);
        let here = self.files[r.0].path == EXECUTOR_FILE && self.get(r).name == EXECUTOR_ENTRY;
        let reached = here
            || self.get(r).events.iter().any(|ev| match &ev.kind {
                EventKind::Call { callee, .. } => {
                    self.resolve(callee, r.0).is_some_and(|t| self.reaches_executor(t, memo))
                }
                _ => false,
            });
        memo.insert(r, reached);
        reached
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// A lock currently held during a rule walk.
struct Held {
    lock: String,
    rank: u32,
    /// Last 0-based line the guard is live on.
    until: usize,
    binding: Option<String>,
}

/// Run every SN rule over the workspace fact set.
pub fn run(files: &[FileFacts]) -> Vec<RawFinding> {
    let graph = Graph::build(files);
    let mut lock_memo: HashMap<FnRef, Vec<String>> = HashMap::new();
    let mut exec_memo: HashMap<FnRef, bool> = HashMap::new();
    let mut out: Vec<RawFinding> = Vec::new();

    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            walk_fn(&graph, (fi, gi), f, &mut lock_memo, &mut exec_memo, &mut out);
        }
    }
    check_failpoints(files, &mut out);
    out
}

/// SN008: failpoint discipline. The fault catalog source must agree
/// with the compiled `fsdm_fault::catalog::ALL` slice, and every `fire`
/// call site outside `crates/fault` must pass one of the declared
/// `FP_*` constants — a string literal or ad-hoc identifier could drift
/// from the catalog and name a point that can never be armed.
fn check_failpoints(files: &[FileFacts], out: &mut Vec<RawFinding>) {
    // (0-based line, const name, string value) from the catalog source
    let mut declared: Vec<(usize, String, String)> = Vec::new();
    if let Some(file) = files.iter().find(|f| f.path == FAULT_CATALOG_FILE) {
        for (i, line) in file.raw_lines.iter().enumerate() {
            let Some(rest) = line.trim_start().strip_prefix("pub const ") else { continue };
            let Some((name, rest)) = rest.split_once(':') else { continue };
            let Some((_, rest)) = rest.split_once('"') else { continue };
            let Some((value, _)) = rest.split_once('"') else { continue };
            declared.push((i, name.trim().to_string(), value.to_string()));
        }
        for (i, name, value) in &declared {
            if !fsdm_fault::catalog::ALL.contains(&value.as_str()) {
                out.push(RawFinding {
                    file: file.path.clone(),
                    line: *i,
                    diag: Diagnostic::new(
                        Code::UndeclaredFailpoint,
                        Span::new(0, line_text(file, *i).len().max(1)),
                        line_text(file, *i),
                        format!(
                            "failpoint constant `{name}` (\"{value}\") is not mirrored in \
                             `catalog::ALL`, so it can never be armed"
                        ),
                    )
                    .with_help("add the constant to `ALL` in crates/fault/src/catalog.rs"),
                });
            }
        }
        if declared.len() != fsdm_fault::catalog::ALL.len() {
            out.push(RawFinding {
                file: file.path.clone(),
                line: 0,
                diag: Diagnostic::new(
                    Code::UndeclaredFailpoint,
                    Span::new(0, 1),
                    line_text(file, 0),
                    format!(
                        "the fault catalog declares {} constant(s) but `ALL` lists {}; the \
                         file and the slice must mirror each other",
                        declared.len(),
                        fsdm_fault::catalog::ALL.len()
                    ),
                )
                .with_help("keep `ALL` in declaration order with one entry per constant"),
            });
        }
    }
    for file in files {
        if file.path.starts_with("crates/fault/") {
            continue;
        }
        for f in &file.fns {
            for ev in &f.events {
                let EventKind::Call { callee, arg_ident, .. } = &ev.kind else { continue };
                if callee != "fire" {
                    continue;
                }
                let ok = arg_ident
                    .as_deref()
                    .is_some_and(|id| declared.iter().any(|(_, name, _)| name == id));
                if !ok {
                    out.push(finding(
                        file,
                        ev,
                        Diagnostic::new(
                            Code::UndeclaredFailpoint,
                            span_of(ev),
                            line_text(file, ev.line),
                            format!(
                                "`{}` fires a failpoint whose name is not a constant from \
                                 `fsdm_fault::catalog` (got {})",
                                f.qualified,
                                arg_ident.as_deref().map_or_else(
                                    || "a literal or expression".to_string(),
                                    |id| format!("`{id}`")
                                )
                            ),
                        )
                        .with_help(
                            "pass one of the `FP_*` constants so arming and firing can never \
                             disagree on the name",
                        ),
                    ));
                }
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn walk_fn(
    graph: &Graph<'_>,
    r: FnRef,
    f: &FnFacts,
    lock_memo: &mut HashMap<FnRef, Vec<String>>,
    exec_memo: &mut HashMap<FnRef, bool>,
    out: &mut Vec<RawFinding>,
) {
    let file = &graph.files[r.0];
    let mut held: Vec<Held> = Vec::new();
    for ev in &f.events {
        held.retain(|h| h.until >= ev.line);
        match &ev.kind {
            EventKind::Lock { lock, let_bound, binding } => {
                check_acquire(file, f, ev, lock, &held, out);
                let Some(rank) = lock_rank(lock) else { continue };
                let until = if *let_bound { f.body_end } else { ev.line };
                held.push(Held { lock: lock.clone(), rank, until, binding: binding.clone() });
            }
            EventKind::Call { callee, arg_lock, arg_ident, let_bound } => {
                // explicit release: `drop(guard)`
                if callee == "drop" {
                    if let Some(ident) = arg_ident {
                        held.retain(|h| h.binding.as_deref() != Some(ident));
                    }
                    continue;
                }
                let Some(target) = graph.resolve(callee, r.0) else { continue };
                if graph.get(target).wrapper {
                    if let Some(lock) = arg_lock {
                        check_acquire(file, f, ev, lock, &held, out);
                        if let Some(rank) = lock_rank(lock) {
                            let until = if *let_bound { f.body_end } else { ev.line };
                            held.push(Held { lock: lock.clone(), rank, until, binding: None });
                        }
                    }
                    continue;
                }
                if held.is_empty() {
                    continue;
                }
                let held_names = held_list(&held);
                if graph.reaches_executor(target, exec_memo) {
                    out.push(finding(
                        file,
                        ev,
                        Diagnostic::new(
                            Code::LockAcrossExecutor,
                            span_of(ev),
                            line_text(file, ev.line),
                            format!(
                                "`{}` calls `{callee}` (which reaches the morsel executor) \
                                 while holding {held_names}",
                                f.qualified
                            ),
                        )
                        .with_help(
                            "release the guard before dispatching parallel work; a held lock \
                             serializes every worker",
                        ),
                    ));
                }
                for lock in graph.transitive_locks(target, lock_memo) {
                    check_indirect(file, f, ev, callee, &lock, &held, out);
                }
            }
            EventKind::Panic { what } => {
                if held.is_empty() {
                    continue;
                }
                let site = match *what {
                    "unwrap" => "an `unwrap`/`expect`",
                    "macro" => "a panicking macro",
                    _ => "an index expression",
                };
                out.push(finding(
                    file,
                    ev,
                    Diagnostic::new(
                        Code::LockAcrossPanic,
                        span_of(ev),
                        line_text(file, ev.line),
                        format!(
                            "`{}` reaches {site} while holding {}; a panic here poisons the \
                             mutex for every later user",
                            f.qualified,
                            held_list(&held)
                        ),
                    )
                    .with_help(
                        "recover the guard with `unwrap_or_else(PoisonError::into_inner)`, or \
                         restructure so no lock is held across the fallible site",
                    ),
                ));
            }
            EventKind::Atomic { name, method, orderings } => {
                check_atomic(file, f, ev, name, method, orderings, out);
            }
            EventKind::Spawn { mut_captures } => {
                if file.path != EXECUTOR_FILE {
                    out.push(finding(
                        file,
                        ev,
                        Diagnostic::new(
                            Code::SpawnOutsideExecutor,
                            span_of(ev),
                            line_text(file, ev.line),
                            format!(
                                "`{}` spawns a thread outside the morsel executor",
                                f.qualified
                            ),
                        )
                        .with_help(
                            "route parallel work through `run_morsels` so the configured \
                             degree and the race oracle govern it",
                        ),
                    ));
                }
                for cap in mut_captures {
                    out.push(finding(
                        file,
                        ev,
                        Diagnostic::new(
                            Code::MutCaptureAliasing,
                            span_of(ev),
                            line_text(file, ev.line),
                            format!(
                                "`{}` spawns a non-`move` closure that captures the `let mut` \
                                 binding `{cap}` from the enclosing scope",
                                f.qualified
                            ),
                        )
                        .with_help(
                            "move ownership into the worker, or keep per-worker state inside \
                             the closure and merge results after the scope joins",
                        ),
                    ));
                }
            }
        }
    }
}

/// SN001/SN002 for a direct (or wrapper) acquisition.
fn check_acquire(
    file: &FileFacts,
    f: &FnFacts,
    ev: &Event,
    lock: &str,
    held: &[Held],
    out: &mut Vec<RawFinding>,
) {
    if held.iter().any(|h| h.lock == lock) {
        out.push(finding(
            file,
            ev,
            Diagnostic::new(
                Code::DoubleLock,
                span_of(ev),
                line_text(file, ev.line),
                format!("`{}` acquires `{lock}` while already holding it", f.qualified),
            )
            .with_help("std::sync::Mutex is not reentrant: this deadlocks every time"),
        ));
        return;
    }
    let Some(rank) = lock_rank(lock) else { return };
    if let Some(top) = held.iter().max_by_key(|h| h.rank) {
        if rank <= top.rank {
            out.push(finding(
                file,
                ev,
                Diagnostic::new(
                    Code::LockOrderInversion,
                    span_of(ev),
                    line_text(file, ev.line),
                    format!(
                        "`{}` acquires `{lock}` (rank {rank}) while holding `{}` (rank {}); \
                         the declared hierarchy only permits ascending acquisition",
                        f.qualified, top.lock, top.rank
                    ),
                )
                .with_help(
                    "acquire in ascending catalog rank, or release the higher-ranked guard \
                     first (hierarchy: obs catalog `LOCKS`)",
                ),
            ));
        }
    }
}

/// SN001/SN002 for locks a callee may take while we hold something.
fn check_indirect(
    file: &FileFacts,
    f: &FnFacts,
    ev: &Event,
    callee: &str,
    lock: &str,
    held: &[Held],
    out: &mut Vec<RawFinding>,
) {
    if held.iter().any(|h| h.lock == lock) {
        out.push(finding(
            file,
            ev,
            Diagnostic::new(
                Code::DoubleLock,
                span_of(ev),
                line_text(file, ev.line),
                format!(
                    "`{}` calls `{callee}`, which may re-acquire `{lock}` already held here",
                    f.qualified
                ),
            )
            .with_help("std::sync::Mutex is not reentrant: this deadlocks every time"),
        ));
        return;
    }
    let Some(rank) = lock_rank(lock) else { return };
    if let Some(top) = held.iter().max_by_key(|h| h.rank) {
        if rank <= top.rank {
            out.push(finding(
                file,
                ev,
                Diagnostic::new(
                    Code::LockOrderInversion,
                    span_of(ev),
                    line_text(file, ev.line),
                    format!(
                        "`{}` calls `{callee}`, which may acquire `{lock}` (rank {rank}) \
                         while `{}` (rank {}) is held here",
                        f.qualified, top.lock, top.rank
                    ),
                )
                .with_help(
                    "acquire in ascending catalog rank, or release the higher-ranked guard \
                     before the call (hierarchy: obs catalog `LOCKS`)",
                ),
            ));
        }
    }
}

/// SN005: the ordering discipline declared in the obs catalog.
fn check_atomic(
    file: &FileFacts,
    f: &FnFacts,
    ev: &Event,
    name: &str,
    method: &str,
    orderings: &[String],
    out: &mut Vec<RawFinding>,
) {
    let Some((_, discipline)) = catalog::ATOMICS.iter().find(|(n, _)| *n == name) else {
        out.push(finding(
            file,
            ev,
            Diagnostic::new(
                Code::AtomicOrdering,
                span_of(ev),
                line_text(file, ev.line),
                format!(
                    "`{}` operates on atomic `{name}`, which is not declared in the obs \
                     catalog `ATOMICS` registry",
                    f.qualified
                ),
            )
            .with_help("declare the atomic's discipline in crates/obs/src/catalog.rs"),
        ));
        return;
    };
    let ok = match discipline {
        AtomicDiscipline::Monotonic => orderings.iter().all(|o| o == "Relaxed"),
        AtomicDiscipline::Handshake => {
            let allowed: &[&str] = match method {
                "load" => &["Acquire", "SeqCst"],
                "store" => &["Release", "SeqCst"],
                _ => &["AcqRel", "Acquire", "SeqCst"],
            };
            orderings.iter().all(|o| allowed.contains(&o.as_str()))
        }
    };
    if ok {
        return;
    }
    let (want, why) = match discipline {
        AtomicDiscipline::Monotonic => (
            "Relaxed",
            "it is a plain statistic; stronger orderings buy nothing and tax the hot path",
        ),
        AtomicDiscipline::Handshake => (
            "Acquire loads / Release stores / AcqRel read-modify-writes",
            "its value gates other memory, so Relaxed lets the handshake be reordered away",
        ),
    };
    out.push(finding(
        file,
        ev,
        Diagnostic::new(
            Code::AtomicOrdering,
            span_of(ev),
            line_text(file, ev.line),
            format!(
                "`{}`: `{name}.{method}({})` violates the declared {:?} discipline — {why}",
                f.qualified,
                orderings.join(", "),
                discipline
            ),
        )
        .with_help(&format!("this atomic is declared {discipline:?}: use {want}")),
    ));
}

fn held_list(held: &[Held]) -> String {
    let names: Vec<String> = held.iter().map(|h| format!("`{}`", h.lock)).collect();
    names.join(" and ")
}

fn span_of(ev: &Event) -> Span {
    Span::new(ev.col, ev.col + ev.len)
}

fn line_text(file: &FileFacts, line: usize) -> &str {
    file.raw_lines.get(line).map_or("", |s| s.as_str())
}

fn finding(file: &FileFacts, ev: &Event, diag: Diagnostic) -> RawFinding {
    RawFinding { file: file.path.clone(), line: ev.line, diag }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts;

    #[test]
    fn sn008_requires_catalog_constants_at_fire_sites() {
        // the real catalog source keeps the file/`ALL` cross-check green
        let catalog =
            facts::extract(FAULT_CATALOG_FILE, include_str!("../../fault/src/catalog.rs"));
        let good = facts::extract(
            "crates/store/src/database.rs",
            "fn scan() {\n    fsdm_fault::fire(FP_EXEC_MORSEL).ok();\n}\n",
        );
        let bad = facts::extract(
            "crates/store/src/other.rs",
            "fn scan() {\n    fsdm_fault::fire(\"exec.morsel\").ok();\n}\n",
        );
        let inside = facts::extract(
            "crates/fault/src/lib.rs",
            "fn f() {\n    fire(\"anything\").ok();\n}\n",
        );
        let findings = run(&[catalog, good, bad, inside]);
        let sn008: Vec<&RawFinding> =
            findings.iter().filter(|f| f.diag.code == Code::UndeclaredFailpoint).collect();
        assert_eq!(sn008.len(), 1, "{findings:?}");
        assert_eq!(sn008[0].file, "crates/store/src/other.rs");
        assert!(sn008[0].diag.message.contains("fsdm_fault::catalog"), "{:?}", sn008[0].diag);
    }

    #[test]
    fn sn008_flags_a_catalog_drifted_from_all() {
        let drifted = facts::extract(
            FAULT_CATALOG_FILE,
            "pub const FP_BOGUS: &str = \"bogus.point\";\npub const ALL: &[&str] = &[FP_BOGUS];\n",
        );
        let findings = run(&[drifted]);
        let sn008: Vec<&RawFinding> =
            findings.iter().filter(|f| f.diag.code == Code::UndeclaredFailpoint).collect();
        // the bogus constant is not in the compiled `ALL`, and the
        // declared count disagrees with it too
        assert_eq!(sn008.len(), 2, "{findings:?}");
        assert!(sn008.iter().all(|f| f.file == FAULT_CATALOG_FILE));
    }
}

//! fsdm-sentinel: syntax-aware concurrency analysis for the workspace.
//!
//! Sentinel is the concurrency companion to `fsdm-analyze` (data
//! diagnostics, FA codes) and `fsdm-planck` (plan diagnostics, PK
//! codes): it extracts per-function concurrency facts from every
//! workspace source file ([`facts`]), builds the intra-workspace call
//! graph, and replays each function's event stream against the lock
//! hierarchy and atomic disciplines declared in `fsdm_obs::catalog`
//! ([`checks`]). Findings carry the stable SN001–SN008 codes from
//! `fsdm_analyze::Code` and render through the same text/JSON shapes.
//!
//! A finding can be suppressed with a budgeted escape comment on the
//! offending line or the line above:
//!
//! ```text
//! // fsdm-sentinel: allow(lock-across-panic) -- the guard is poison-recovered
//! ```
//!
//! The workspace-wide budget is [`ALLOW_BUDGET`]; an unused, malformed,
//! or over-budget allow is itself an error, and allows are forbidden
//! entirely in the morsel executor (`crates/store/src/parallel.rs`).

pub mod checks;
pub mod facts;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use checks::{RawFinding, EXECUTOR_FILE};

/// Workspace-wide cap on `fsdm-sentinel: allow(..)` escapes.
pub const ALLOW_BUDGET: usize = 5;

/// One parsed allow annotation.
#[derive(Debug)]
struct Allow {
    file: String,
    /// 0-based line of the comment.
    line: usize,
    slug: String,
    used: bool,
}

/// The outcome of one sentinel run.
#[derive(Debug)]
pub struct SentinelReport {
    /// Findings that survived allow filtering, in (file, line) order.
    pub findings: Vec<RawFinding>,
    /// Problems with the allow annotations themselves (over budget,
    /// malformed, unused, or placed in the executor).
    pub meta_errors: Vec<String>,
    /// How many allow escapes suppressed a finding.
    pub allows_used: usize,
    /// How many files were analyzed.
    pub files_scanned: usize,
}

impl SentinelReport {
    /// Total error count — every SN finding is `Severity::Error`, and
    /// every meta error counts too. CI gates on this being zero.
    pub fn errors(&self) -> usize {
        self.findings.len() + self.meta_errors.len()
    }

    /// Compiler-style text report with caret snippets.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let d = &f.diag;
            out.push_str(&format!(
                "{}:{}:{}: {} {} [{}]: {}\n",
                f.file,
                f.line + 1,
                d.span.start + 1,
                d.code.id(),
                d.severity.label(),
                d.code.slug(),
                d.message
            ));
            if !d.path.is_empty() {
                let width = d.span.end.saturating_sub(d.span.start).max(1);
                out.push_str(&format!("    | {}\n", d.path));
                out.push_str(&format!("    | {}{}\n", " ".repeat(d.span.start), "^".repeat(width)));
            }
            if let Some(h) = &d.help {
                out.push_str(&format!("    = help: {h}\n"));
            }
        }
        for m in &self.meta_errors {
            out.push_str(&format!("sentinel: error: {m}\n"));
        }
        out.push_str(&format!(
            "sentinel: {} file(s), {} error(s), {} allow(s) used (budget {})\n",
            self.files_scanned,
            self.errors(),
            self.allows_used,
            ALLOW_BUDGET
        ));
        out
    }

    /// Machine-readable report; the CI gate greps for `"errors": 0`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"fsdm-sentinel\",\n");
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"allows_used\": {},\n", self.allows_used));
        out.push_str(&format!("  \"allow_budget\": {ALLOW_BUDGET},\n"));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // splice file/line into the shared diagnostic JSON shape
            let diag = f.diag.render_json();
            let rest = diag.strip_prefix('{').unwrap_or(&diag);
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, {rest}",
                json_str(&f.file),
                f.line + 1
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"meta_errors\": [");
        for (i, m) in self.meta_errors.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(m));
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::from("\"");
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Analyze a set of `(repo-relative path, source text)` pairs. This is
/// the pure core `analyze_workspace` and the unit tests share.
pub fn analyze_sources(sources: &[(String, String)]) -> SentinelReport {
    let files: Vec<facts::FileFacts> = sources.iter().map(|(p, t)| facts::extract(p, t)).collect();
    let mut findings = checks::run(&files);
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.diag.span.start).cmp(&(&b.file, b.line, b.diag.span.start))
    });

    let mut meta_errors: Vec<String> = Vec::new();
    let mut allows = collect_allows(&files, &mut meta_errors);

    // apply allows: a matching annotation on the finding's line or the
    // line above suppresses it — except in the executor, where escapes
    // are forbidden outright
    let mut kept: Vec<RawFinding> = Vec::new();
    for f in findings {
        let slug = f.diag.code.slug();
        let allow = allows.iter_mut().find(|a| {
            a.file == f.file && a.slug == slug && (a.line == f.line || a.line + 1 == f.line)
        });
        match allow {
            Some(a) if f.file != EXECUTOR_FILE => {
                a.used = true;
            }
            _ => kept.push(f),
        }
    }

    let used = allows.iter().filter(|a| a.used).count();
    if used > ALLOW_BUDGET {
        meta_errors.push(format!(
            "{used} allow escapes in use exceed the workspace budget of {ALLOW_BUDGET}"
        ));
    }
    for a in &allows {
        if a.file == EXECUTOR_FILE {
            meta_errors.push(format!(
                "{}:{}: allow escapes are forbidden in the morsel executor",
                a.file,
                a.line + 1
            ));
        } else if !a.used {
            meta_errors.push(format!(
                "{}:{}: unused allow({}) — the finding it suppressed is gone; remove it",
                a.file,
                a.line + 1,
                a.slug
            ));
        }
    }

    SentinelReport { findings: kept, meta_errors, allows_used: used, files_scanned: sources.len() }
}

/// Parse every `fsdm-sentinel: allow(..)` comment; malformed ones are
/// meta errors so a typo cannot silently disable the escape.
fn collect_allows(files: &[facts::FileFacts], meta_errors: &mut Vec<String>) -> Vec<Allow> {
    let known_slugs = [
        "double-lock",
        "lock-order-inversion",
        "lock-across-executor",
        "lock-across-panic",
        "atomic-ordering",
        "mut-capture-aliasing",
        "spawn-outside-executor",
        "undeclared-failpoint",
    ];
    let mut out = Vec::new();
    for file in files {
        for (line, text) in &file.comments {
            // doc comments (`///` → "/ …", `//!` → "! …") are prose
            if text.starts_with('/') || text.starts_with('!') {
                continue;
            }
            let t = text.trim();
            let Some(rest) = t.strip_prefix("fsdm-sentinel:") else { continue };
            let rest = rest.trim_start();
            let parsed = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')).and_then(
                |(slug, tail)| {
                    let reason = tail.trim_start().strip_prefix("--")?.trim();
                    (!reason.is_empty()).then(|| slug.trim().to_string())
                },
            );
            match parsed {
                Some(slug) if known_slugs.contains(&slug.as_str()) => {
                    out.push(Allow { file: file.path.clone(), line: *line, slug, used: false });
                }
                Some(slug) => meta_errors.push(format!(
                    "{}:{}: allow names unknown rule `{slug}`",
                    file.path,
                    line + 1
                )),
                None => meta_errors.push(format!(
                    "{}:{}: malformed sentinel comment; expected \
                     `fsdm-sentinel: allow(<rule>) -- <reason>`",
                    file.path,
                    line + 1
                )),
            }
        }
    }
    out
}

/// Analyze every Rust source under the workspace's `crates/*/src` trees.
/// Integration tests (`tests/`) are excluded: they run under the test
/// profile where panics and ad-hoc threads are the point.
pub fn analyze_workspace(root: &Path) -> std::io::Result<SentinelReport> {
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), root, &mut sources)?;
    }
    let flat: Vec<(String, String)> = sources.into_iter().collect();
    Ok(analyze_sources(&flat))
}

fn collect_rs(dir: &Path, root: &Path, out: &mut BTreeMap<String, String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)?.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.insert(rel, std::fs::read_to_string(&path)?);
        }
    }
    Ok(())
}

//! `fsdm-workloads`: deterministic generators for every document
//! collection in the paper's evaluation (§6.1, Table 10) plus the NOBENCH
//! and OLAP (Table 13) query workloads.
//!
//! All generators are seeded (`StdRng`), so repeated runs produce the
//! identical corpus. The twelve collections reproduce the *shape*
//! characteristics the paper reports: average document size (Table 10),
//! distinct-path counts and DMDV fan-out (Table 12), and the OSON segment
//! balance (Table 11) — e.g. `LoanNotes` is field-name-heavy (dictionary
//! ≈ 60 % of the encoding), `SensorData` is a huge array of numeric
//! samples (tree ≈ 80 %), `TwitterMsgArchive` amortizes one dictionary
//! over thousands of repeated structures.

pub mod collections;
pub mod nobench;
pub mod olap;

pub use collections::{generate, Collection};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for a named workload.
pub fn rng_for(name: &str, seed: u64) -> StdRng {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ seed)
}

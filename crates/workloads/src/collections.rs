//! The twelve document collections of Table 10.

use fsdm_json::{JsonValue, Object};
use rand::rngs::StdRng;
use rand::Rng;

/// The collections evaluated in §6.1 (Tables 10–12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collection {
    /// Small maintenance work orders.
    WorkOrder,
    /// Small sales orders.
    SalesOrder,
    /// Medium telemetry/event envelopes (wide, ~80 paths).
    EventMessage,
    /// The running purchase-order example (master + items detail).
    PurchaseOrder,
    /// Book orders with nested shipments and line items.
    BookOrder,
    /// Field-name-heavy loan documentation (dictionary-dominated).
    LoanNotes,
    /// A single tweet with full user/entity metadata (~360 paths).
    TwitterMsg,
    /// Acquisition documents with large line-item arrays (fan-out ≈ 28).
    AcquisitionDoc,
    /// NOBENCH documents: 11 common fields + a 10-field sparse cluster
    /// out of 1000 possible sparse attributes.
    NoBench,
    /// YCSB documents: key + ten 100-byte string fields.
    Ycsb,
    /// A Twitter message archive: thousands of tweets in one document.
    TwitterMsgArchive,
    /// Sensor recording: channels × very long numeric sample arrays.
    SensorData,
}

impl Collection {
    /// All twelve, in Table 10 order.
    pub const ALL: [Collection; 12] = [
        Collection::WorkOrder,
        Collection::SalesOrder,
        Collection::EventMessage,
        Collection::PurchaseOrder,
        Collection::BookOrder,
        Collection::LoanNotes,
        Collection::TwitterMsg,
        Collection::AcquisitionDoc,
        Collection::NoBench,
        Collection::Ycsb,
        Collection::TwitterMsgArchive,
        Collection::SensorData,
    ];

    /// Collection name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Collection::WorkOrder => "workOrder",
            Collection::SalesOrder => "salesOrder",
            Collection::EventMessage => "eventMessage",
            Collection::PurchaseOrder => "purchaseOrder",
            Collection::BookOrder => "bookOrder",
            Collection::LoanNotes => "LoanNotes",
            Collection::TwitterMsg => "TwitterMsg",
            Collection::AcquisitionDoc => "AcquisionDoc",
            Collection::NoBench => "NOBENCHDoc",
            Collection::Ycsb => "YCSBDoc",
            Collection::TwitterMsgArchive => "TwitterMsgArchive",
            Collection::SensorData => "SensorData",
        }
    }

    /// Sensible corpus size for size statistics (archives are huge, so
    /// few; small docs, many).
    pub fn default_count(&self) -> usize {
        match self {
            Collection::TwitterMsgArchive => 4,
            Collection::SensorData => 2,
            _ => 500,
        }
    }
}

/// Generate the `i`-th document of a collection.
pub fn generate(c: Collection, rng: &mut StdRng, i: usize) -> JsonValue {
    match c {
        Collection::WorkOrder => work_order(rng, i),
        Collection::SalesOrder => sales_order(rng, i),
        Collection::EventMessage => event_message(rng, i),
        Collection::PurchaseOrder => purchase_order(rng, i),
        Collection::BookOrder => book_order(rng, i),
        Collection::LoanNotes => loan_notes(rng, i),
        Collection::TwitterMsg => twitter_msg(rng, i),
        Collection::AcquisitionDoc => acquisition_doc(rng, i),
        Collection::NoBench => crate::nobench::doc(rng, i),
        Collection::Ycsb => ycsb(rng, i),
        Collection::TwitterMsgArchive => twitter_archive(rng, i),
        Collection::SensorData => sensor_data(rng, i),
    }
}

pub(crate) fn word(rng: &mut StdRng, len: usize) -> String {
    const LETTERS: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    (0..len).map(|_| LETTERS[rng.gen_range(0..26)] as char).collect()
}

fn sentence(rng: &mut StdRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        let wl = rng.gen_range(3..9);
        s.push_str(&word(rng, wl));
    }
    s
}

fn date(rng: &mut StdRng) -> String {
    format!(
        "{:04}-{:02}-{:02}",
        rng.gen_range(2010..2016),
        rng.gen_range(1..13),
        rng.gen_range(1..29)
    )
}

fn money(rng: &mut StdRng, max: f64) -> JsonValue {
    let cents = rng.gen_range(1..(max * 100.0) as i64);
    JsonValue::Number(
        fsdm_json::JsonNumber::from_literal(&format!("{}.{:02}", cents / 100, cents % 100))
            .unwrap(),
    )
}

fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut o = Object::new();
    for (k, v) in pairs {
        o.push(k, v);
    }
    JsonValue::Object(o)
}

/// workOrder — avg ≈ 930 bytes, ~29 paths, ~5 task lines.
pub fn work_order(rng: &mut StdRng, i: usize) -> JsonValue {
    let ntasks = rng.gen_range(3..7);
    let tasks: Vec<JsonValue> = (0..ntasks)
        .map(|t| {
            obj(vec![
                ("taskId", (t as i64).into()),
                ("action", word(rng, 8).into()),
                ("crew", word(rng, 5).into()),
                ("hours", rng.gen_range(1..12).into()),
                ("done", (rng.gen_range(0..2) == 1).into()),
            ])
        })
        .collect();
    obj(vec![(
        "workOrder",
        obj(vec![
            ("id", (i as i64).into()),
            ("site", format!("SITE-{}", rng.gen_range(1..99)).into()),
            ("opened", date(rng).into()),
            ("due", date(rng).into()),
            ("priority", rng.gen_range(1..5).into()),
            ("summary", sentence(rng, 8).into()),
            (
                "assignee",
                obj(vec![
                    ("name", word(rng, 7).into()),
                    ("badge", rng.gen_range(1000..9999).into()),
                ]),
            ),
            ("tasks", JsonValue::Array(tasks)),
            ("closed", JsonValue::Null),
        ]),
    )])
}

/// salesOrder — avg ≈ 670 bytes, ~20 paths, ~3 lines.
pub fn sales_order(rng: &mut StdRng, i: usize) -> JsonValue {
    let nlines = rng.gen_range(2..5);
    let lines: Vec<JsonValue> = (0..nlines)
        .map(|_| {
            obj(vec![
                ("sku", format!("SKU{}", rng.gen_range(100..999)).into()),
                ("description", sentence(rng, 3).into()),
                ("qty", rng.gen_range(1..9).into()),
                ("price", money(rng, 400.0)),
            ])
        })
        .collect();
    obj(vec![(
        "salesOrder",
        obj(vec![
            ("orderNo", (i as i64).into()),
            (
                "customer",
                obj(vec![
                    ("name", sentence(rng, 2).into()),
                    ("email", format!("{}@example.com", word(rng, 8)).into()),
                    ("loyaltyTier", ["gold", "silver", "none"][rng.gen_range(0..3)].into()),
                ]),
            ),
            ("placed", date(rng).into()),
            ("channel", ["web", "store", "phone"][rng.gen_range(0..3)].into()),
            (
                "shippingAddress",
                obj(vec![
                    ("street", sentence(rng, 3).into()),
                    ("city", word(rng, 8).into()),
                    ("country", ["US", "DE", "JP"][rng.gen_range(0..3)].into()),
                ]),
            ),
            ("lines", JsonValue::Array(lines)),
            ("total", money(rng, 2000.0)),
            ("shipped", (rng.gen_range(0..2) == 1).into()),
        ]),
    )])
}

/// eventMessage — avg ≈ 1.9 KB, ~79 paths: a wide telemetry envelope.
pub fn event_message(rng: &mut StdRng, i: usize) -> JsonValue {
    let mut header = Object::new();
    for (k, v) in [
        ("messageId", JsonValue::from(i as i64)),
        ("source", word(rng, 10).into()),
        ("destination", word(rng, 10).into()),
        ("correlation", word(rng, 16).into()),
        ("timestamp", date(rng).into()),
        ("schemaVersion", "2.4".into()),
        ("priority", rng.gen_range(0..9).into()),
        ("encrypted", false.into()),
    ] {
        header.push(k, v);
    }
    let mut attrs = Object::new();
    for a in 0..12 {
        attrs.push(
            format!("attr_{a:02}"),
            if a % 3 == 0 {
                JsonValue::from(rng.gen_range(0..100_000))
            } else {
                let wl = rng.gen_range(4..14);
                word(rng, wl).into()
            },
        );
    }
    let readings: Vec<JsonValue> = (0..rng.gen_range(6..12))
        .map(|r| {
            obj(vec![
                ("metric", format!("m{r}").into()),
                ("value", rng.gen_range(0..10_000).into()),
                ("unit", ["ms", "pct", "count"][rng.gen_range(0..3)].into()),
            ])
        })
        .collect();
    obj(vec![(
        "event",
        obj(vec![
            ("header", JsonValue::Object(header)),
            ("category", word(rng, 6).into()),
            ("severity", ["info", "warn", "error"][rng.gen_range(0..3)].into()),
            ("attributes", JsonValue::Object(attrs)),
            ("readings", JsonValue::Array(readings)),
            (
                "payload",
                obj(vec![
                    ("body", sentence(rng, 20).into()),
                    ("contentType", "text/plain".into()),
                    ("bytes", rng.gen_range(100..9999).into()),
                ]),
            ),
        ]),
    )])
}

/// purchaseOrder — the running example: master scalars + items detail
/// (avg ≈ 1.1 KB, 29 paths, fan-out ≈ 5). Field set matches Table 13's
/// queries (reference, requestor, costcenter, instructions; items with
/// itemno/partno/description/quantity/unitprice).
pub fn purchase_order(rng: &mut StdRng, i: usize) -> JsonValue {
    let nitems = rng.gen_range(3..8);
    let items: Vec<JsonValue> = (0..nitems)
        .map(|n| {
            obj(vec![
                ("itemno", (n as i64 + 1).into()),
                ("partno", format!("{}", 97_361_000_000i64 + rng.gen_range(0..999_999)).into()),
                ("description", sentence(rng, 3).into()),
                ("quantity", rng.gen_range(1..20).into()),
                ("unitprice", money(rng, 900.0)),
            ])
        })
        .collect();
    let mut po = vec![
        ("id", JsonValue::from(i as i64)),
        ("reference", format!("{}-{}", word(rng, 5).to_uppercase(), i).into()),
        ("requestor", word(rng, 8).into()),
        ("costcenter", format!("C{}", rng.gen_range(1..40)).into()),
        ("podate", date(rng).into()),
        ("instructions", sentence(rng, 6).into()),
        (
            "shippingAddress",
            obj(vec![
                ("street", sentence(rng, 3).into()),
                ("city", word(rng, 8).into()),
                ("state", ["CA", "NY", "TX", "WA"][rng.gen_range(0..4)].into()),
                ("zip", format!("{}", rng.gen_range(10_000..99_999)).into()),
            ]),
        ),
        (
            "contact",
            obj(vec![
                (
                    "phone",
                    format!("{}-{:04}", rng.gen_range(200..999), rng.gen_range(0..9999)).into(),
                ),
                ("email", format!("{}@example.com", word(rng, 7)).into()),
            ]),
        ),
        ("items", JsonValue::Array(items)),
    ];
    if i.is_multiple_of(4) {
        po.push((
            "specialHandling",
            obj(vec![
                ("fragile", (rng.gen_range(0..2) == 1).into()),
                ("insuredValue", money(rng, 5000.0)),
            ]),
        ));
    }
    obj(vec![("purchaseOrder", obj(po))])
}

/// bookOrder — avg ≈ 2.1 KB, ~86 paths, fan-out ≈ 11.7.
pub fn book_order(rng: &mut StdRng, i: usize) -> JsonValue {
    let nbooks = rng.gen_range(8..15);
    let books: Vec<JsonValue> = (0..nbooks)
        .map(|_| {
            obj(vec![
                ("isbn", format!("978{}", rng.gen_range(1_000_000_000i64..9_999_999_999)).into()),
                ("title", sentence(rng, 4).into()),
                (
                    "author",
                    obj(vec![("first", word(rng, 6).into()), ("last", word(rng, 8).into())]),
                ),
                ("price", money(rng, 80.0)),
                ("format", ["hardcover", "paper", "ebook"][rng.gen_range(0..3)].into()),
            ])
        })
        .collect();
    obj(vec![(
        "bookOrder",
        obj(vec![
            ("orderId", (i as i64).into()),
            (
                "member",
                obj(vec![
                    ("memberId", rng.gen_range(10_000..99_999).into()),
                    ("tier", ["gold", "silver"][rng.gen_range(0..2)].into()),
                    (
                        "address",
                        obj(vec![
                            ("street", sentence(rng, 3).into()),
                            ("city", word(rng, 8).into()),
                            ("zip", format!("{}", rng.gen_range(10_000..99_999)).into()),
                        ]),
                    ),
                ]),
            ),
            ("ordered", date(rng).into()),
            ("giftWrap", (rng.gen_range(0..4) == 0).into()),
            ("books", JsonValue::Array(books)),
            (
                "couponCodes",
                JsonValue::Array(
                    (0..rng.gen_range(0..3)).map(|_| word(rng, 6).to_uppercase().into()).collect(),
                ),
            ),
        ]),
    )])
}

/// LoanNotes — avg ≈ 5 KB, ~153 paths: many distinct long field names
/// with short values, so the field-id-name dictionary dominates the OSON
/// encoding (Table 11 reports 62.7 %).
pub fn loan_notes(rng: &mut StdRng, i: usize) -> JsonValue {
    let sections = [
        "applicantDisclosure",
        "underwritingAssessment",
        "collateralVerification",
        "regulatoryCompliance",
        "servicingAnnotations",
    ];
    // field names are part of the collection's (implicit) schema: fixed
    // across documents, so the DataGuide converges to ~153 paths while the
    // long names keep the OSON dictionary segment dominant (Table 11)
    const QUALIFIERS: [&str; 28] = [
        "verifiedStatement",
        "supportingEvidence",
        "reviewerInitials",
        "escalationLevel",
        "documentReference",
        "expirationNotice",
        "complianceMarker",
        "auditTrailToken",
        "counterpartyNote",
        "residualExposure",
        "probabilityGrade",
        "mitigationPlan",
        "originationStamp",
        "jurisdictionCode",
        "materialityFlag",
        "supervisorSignoff",
        "exceptionGranted",
        "renewalSchedule",
        "collateralHaircut",
        "valuationSource",
        "delinquencyWatch",
        "restructureTerms",
        "insurancePolicy",
        "guarantorProfile",
        "disbursementHold",
        "interestAccrual",
        "portfolioSegment",
        "retentionPeriod",
    ];
    let mut root = Object::new();
    root.push("loanId", JsonValue::from(i as i64));
    for (s, section) in sections.iter().enumerate() {
        let mut sec = Object::new();
        for (f, q) in QUALIFIERS.iter().enumerate() {
            let field = format!("{section}_{q}");
            let v: JsonValue = match f % 4 {
                0 => rng.gen_range(0..1000).into(),
                1 => word(rng, 3).into(),
                2 => (rng.gen_range(0..2) == 1).into(),
                _ => JsonValue::Null,
            };
            sec.push(field, v);
        }
        root.push(format!("section_{s}_{section}"), JsonValue::Object(sec));
    }
    let notes: Vec<JsonValue> = (0..3)
        .map(|_| {
            obj(vec![
                ("notedBy", word(rng, 7).into()),
                ("notedOn", date(rng).into()),
                ("note", sentence(rng, 10).into()),
            ])
        })
        .collect();
    root.push("reviewNotes", JsonValue::Array(notes));
    obj(vec![("loanNotes", JsonValue::Object(root))])
}

/// One synthetic tweet with user/entities metadata (deep + wide). Field
/// names follow the real Twitter 1.1 API, whose long names are exactly
/// what the OSON dictionary deduplicates across an archive.
fn tweet(rng: &mut StdRng, id: i64) -> JsonValue {
    let hashtags: Vec<JsonValue> = (0..rng.gen_range(0..4))
        .map(|_| {
            obj(vec![
                ("text", word(rng, 8).into()),
                (
                    "indices",
                    JsonValue::Array(vec![
                        rng.gen_range(0..50).into(),
                        rng.gen_range(50..100).into(),
                    ]),
                ),
            ])
        })
        .collect();
    let urls: Vec<JsonValue> = (0..rng.gen_range(0..3))
        .map(|_| {
            obj(vec![
                ("url", format!("https://t.co/{}", word(rng, 8)).into()),
                ("expanded_url", format!("https://example.com/{}", word(rng, 12)).into()),
                ("display_url", format!("example.com/{}", word(rng, 8)).into()),
            ])
        })
        .collect();
    obj(vec![
        ("id", id.into()),
        ("id_str", id.to_string().into()),
        ("created_at", date(rng).into()),
        ("text", sentence(rng, 12).into()),
        ("truncated", false.into()),
        ("lang", ["en", "ja", "es", "de"][rng.gen_range(0..4)].into()),
        ("retweet_count", rng.gen_range(0..5000).into()),
        ("favorite_count", rng.gen_range(0..9000).into()),
        ("favorited", false.into()),
        ("retweeted", false.into()),
        ("possibly_sensitive", false.into()),
        ("in_reply_to_status_id", JsonValue::Null),
        ("in_reply_to_status_id_str", JsonValue::Null),
        ("in_reply_to_user_id", JsonValue::Null),
        ("in_reply_to_user_id_str", JsonValue::Null),
        ("in_reply_to_screen_name", JsonValue::Null),
        ("coordinates", JsonValue::Null),
        ("contributors", JsonValue::Null),
        ("source", "<a href=\\\"https://example.com\\\">web</a>".into()),
        (
            "user",
            obj(vec![
                ("id", rng.gen_range(1_000..9_999_999).into()),
                ("id_str", rng.gen_range(1_000..9_999_999).to_string().into()),
                ("screen_name", word(rng, 10).into()),
                ("name", sentence(rng, 2).into()),
                ("description", sentence(rng, 8).into()),
                ("followers_count", rng.gen_range(0..100_000).into()),
                ("friends_count", rng.gen_range(0..5_000).into()),
                ("favourites_count", rng.gen_range(0..9_000).into()),
                ("statuses_count", rng.gen_range(0..50_000).into()),
                ("listed_count", rng.gen_range(0..300).into()),
                ("verified", (rng.gen_range(0..50) == 0).into()),
                ("protected", false.into()),
                ("geo_enabled", (rng.gen_range(0..3) == 0).into()),
                ("contributors_enabled", false.into()),
                ("is_translation_enabled", false.into()),
                ("default_profile", true.into()),
                ("default_profile_image", false.into()),
                ("location", word(rng, 9).into()),
                ("time_zone", "UTC".into()),
                ("utc_offset", (-28800i64).into()),
                ("profile_background_color", "FFFFFF".into()),
                ("profile_background_tile", false.into()),
                (
                    "profile_image_url_https",
                    format!("https://pbs.example/{}", word(rng, 10)).into(),
                ),
                ("profile_banner_url", format!("https://pbs.example/{}", word(rng, 10)).into()),
                ("profile_link_color", "1DA1F2".into()),
                ("profile_sidebar_border_color", "C0DEED".into()),
                ("profile_sidebar_fill_color", "DDEEF6".into()),
                ("profile_text_color", "333333".into()),
                ("profile_use_background_image", true.into()),
            ]),
        ),
        (
            "entities",
            obj(vec![
                ("hashtags", JsonValue::Array(hashtags)),
                ("urls", JsonValue::Array(urls)),
                ("symbols", JsonValue::Array(vec![])),
                (
                    "user_mentions",
                    JsonValue::Array(
                        (0..rng.gen_range(0..3))
                            .map(|_| {
                                obj(vec![
                                    ("screen_name", word(rng, 9).into()),
                                    ("id", rng.gen_range(1000..999_999).into()),
                                    ("id_str", rng.gen_range(1000..999_999).to_string().into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "place",
            obj(vec![
                ("country", ["US", "JP", "DE"][rng.gen_range(0..3)].into()),
                ("country_code", ["US", "JP", "DE"][rng.gen_range(0..3)].into()),
                ("full_name", sentence(rng, 2).into()),
                ("place_type", "city".into()),
                (
                    "bounding_box",
                    obj(vec![
                        ("type", "Polygon".into()),
                        (
                            "coordinates",
                            JsonValue::Array(vec![JsonValue::Array(vec![
                                JsonValue::Array(vec![
                                    rng.gen_range(-180i64..180).into(),
                                    rng.gen_range(-90i64..90).into(),
                                ]),
                                JsonValue::Array(vec![
                                    rng.gen_range(-180i64..180).into(),
                                    rng.gen_range(-90i64..90).into(),
                                ]),
                            ])]),
                        ),
                    ]),
                ),
            ]),
        ),
    ])
}

/// TwitterMsg — one rich tweet (avg ≈ 3 KB, ~360 paths).
pub fn twitter_msg(rng: &mut StdRng, i: usize) -> JsonValue {
    // a handful of sibling variants widen the path space across the
    // collection (the 362 distinct paths of Table 12 come from unioning
    // optional substructures)
    let mut t = tweet(rng, i as i64);
    if let Some(o) = t.as_object_mut() {
        if i.is_multiple_of(3) {
            o.push("retweeted_status", tweet(rng, i as i64 + 1_000_000));
        }
        if i.is_multiple_of(5) {
            o.push(
                format!("experiment_{}", i % 40),
                obj(vec![("bucket", word(rng, 4).into()), ("active", true.into())]),
            );
        }
    }
    t
}

/// AcquisitionDoc — avg ≈ 5.9 KB, fan-out ≈ 28: few master fields, one
/// large detail array.
pub fn acquisition_doc(rng: &mut StdRng, i: usize) -> JsonValue {
    let nlines = rng.gen_range(24..32);
    let lines: Vec<JsonValue> = (0..nlines)
        .map(|n| {
            obj(vec![
                ("lineNo", (n as i64).into()),
                ("asset", sentence(rng, 3).into()),
                ("category", ["plant", "fleet", "it", "land"][rng.gen_range(0..4)].into()),
                ("bookValue", money(rng, 100_000.0)),
                ("assessedValue", money(rng, 120_000.0)),
                ("condition", ["new", "good", "fair", "poor"][rng.gen_range(0..4)].into()),
            ])
        })
        .collect();
    obj(vec![(
        "acquisition",
        obj(vec![
            ("dealId", (i as i64).into()),
            ("target", sentence(rng, 2).into()),
            ("announced", date(rng).into()),
            ("currency", "USD".into()),
            (
                "advisor",
                obj(vec![
                    ("firm", word(rng, 10).into()),
                    ("lead", sentence(rng, 2).into()),
                    ("fee", money(rng, 1_000_000.0)),
                ]),
            ),
            ("assets", JsonValue::Array(lines)),
            (
                "approvals",
                JsonValue::Array(
                    (0..3)
                        .map(|_| {
                            obj(vec![
                                ("body", word(rng, 8).into()),
                                ("granted", (rng.gen_range(0..2) == 1).into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    )])
}

/// YCSB — key + ten 100-byte fields: value-segment-dominated.
pub fn ycsb(rng: &mut StdRng, i: usize) -> JsonValue {
    let mut o = Object::new();
    o.push("key", format!("user{i:012}"));
    for f in 0..10 {
        o.push(format!("field{f}"), word(rng, 100));
    }
    JsonValue::Object(o)
}

/// TwitterMsgArchive — one document holding thousands of tweets: the
/// dictionary is shared across every repeated structure, so its share of
/// the encoding collapses to ≈ 0 (Table 11) and OSON lands at roughly
/// half the text size (Table 10).
pub fn twitter_archive(rng: &mut StdRng, i: usize) -> JsonValue {
    let n = 1600;
    let statuses: Vec<JsonValue> = (0..n).map(|t| tweet(rng, (i * n + t) as i64)).collect();
    obj(vec![(
        "archive",
        obj(vec![
            ("exportedAt", date(rng).into()),
            ("account", word(rng, 10).into()),
            ("statuses", JsonValue::Array(statuses)),
        ]),
    )])
}

/// SensorData — one recording holding ~32 000 multi-channel readings
/// (Table 12 reports a DMDV fan-out of 32 100). Each reading is a wide
/// object of short numeric fields, so nearly all encoding cost is
/// tree-navigation offsets over tiny numeric leaves (Table 11 reports
/// ≈ 81 % tree segment) and the repeated field names collapse into a
/// negligible dictionary.
pub fn sensor_data(rng: &mut StdRng, i: usize) -> JsonValue {
    let readings_count = 32_000;
    let statuses = ["nominal-operation", "sensor-saturated", "low-battery-warn", "recalibrating"];
    let readings: Vec<JsonValue> = (0..readings_count)
        .map(|t| {
            let mut o = Object::with_capacity(56);
            o.push("t", JsonValue::from(t as i64));
            for c in 0..48 {
                // values like -123.456: exact decimals, ~7-8 text chars
                let v = rng.gen_range(-200_000i64..200_000);
                o.push(
                    format!("ch{c:02}"),
                    JsonValue::Number(
                        fsdm_json::JsonNumber::from_literal(&format!(
                            "{}.{:03}",
                            v / 1000,
                            v.unsigned_abs() % 1000
                        ))
                        .unwrap(),
                    ),
                );
            }
            o.push("status", statuses[rng.gen_range(0..statuses.len())]);
            o.push("probe", format!("probe-{:04}", rng.gen_range(0..64)));
            o.push("flags", JsonValue::from(rng.gen_range(0i64..4)));
            JsonValue::Object(o)
        })
        .collect();
    obj(vec![(
        "recording",
        obj(vec![
            ("deviceId", (i as i64).into()),
            ("startedAt", date(rng).into()),
            ("sampleRateHz", 1000.into()),
            ("firmware", "v2.1.7".into()),
            ("calibration", obj(vec![("offset", 0.125.into()), ("gain", 1.002.into())])),
            ("readings", JsonValue::Array(readings)),
        ]),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn generators_are_deterministic() {
        for c in Collection::ALL {
            if matches!(c, Collection::TwitterMsgArchive | Collection::SensorData) {
                continue; // large; covered separately
            }
            let mut r1 = rng_for(c.name(), 42);
            let mut r2 = rng_for(c.name(), 42);
            let d1 = generate(c, &mut r1, 7);
            let d2 = generate(c, &mut r2, 7);
            assert_eq!(d1, d2, "{}", c.name());
        }
    }

    #[test]
    fn small_doc_sizes_are_in_band() {
        // coarse bands around Table 10's averages (±55 %)
        let expect: [(Collection, usize); 10] = [
            (Collection::WorkOrder, 933),
            (Collection::SalesOrder, 670),
            (Collection::EventMessage, 1924),
            (Collection::PurchaseOrder, 1117),
            (Collection::BookOrder, 2107),
            (Collection::LoanNotes, 5146),
            (Collection::TwitterMsg, 2974),
            (Collection::AcquisitionDoc, 5904),
            (Collection::NoBench, 533),
            (Collection::Ycsb, 1145),
        ];
        for (c, target) in expect {
            let mut rng = rng_for(c.name(), 1);
            let n = 50;
            let total: usize =
                (0..n).map(|i| fsdm_json::to_string(&generate(c, &mut rng, i)).len()).sum();
            let avg = total / n;
            let lo = target * 45 / 100;
            let hi = target * 155 / 100;
            assert!(
                (lo..=hi).contains(&avg),
                "{}: avg {} outside [{lo}, {hi}] (target {target})",
                c.name(),
                avg
            );
        }
    }

    #[test]
    fn documents_are_valid_json() {
        for c in Collection::ALL {
            if matches!(c, Collection::TwitterMsgArchive | Collection::SensorData) {
                continue;
            }
            let mut rng = rng_for(c.name(), 3);
            let d = generate(c, &mut rng, 0);
            let text = fsdm_json::to_string(&d);
            assert_eq!(fsdm_json::parse(&text).unwrap(), d, "{}", c.name());
        }
    }

    #[test]
    fn archive_is_megabytes_with_repeated_structure() {
        let mut rng = rng_for("TwitterMsgArchive", 1);
        let d = twitter_archive(&mut rng, 0);
        let text = fsdm_json::to_string(&d);
        assert!(text.len() > 1_500_000, "archive is {} bytes", text.len());
        let statuses = d.get("archive").unwrap().get("statuses").unwrap();
        assert!(statuses.as_array().unwrap().len() >= 1000);
    }

    #[test]
    fn sensor_data_is_numeric_heavy() {
        let mut rng = rng_for("SensorData", 1);
        let d = sensor_data(&mut rng, 0);
        let text = fsdm_json::to_string(&d);
        assert!(text.len() > 2_000_000, "recording is {} bytes", text.len());
    }

    #[test]
    fn purchase_order_shape_matches_queries() {
        let mut rng = rng_for("purchaseOrder", 1);
        let d = purchase_order(&mut rng, 5);
        let po = d.get("purchaseOrder").unwrap();
        for f in ["reference", "requestor", "costcenter", "instructions", "items"] {
            assert!(po.get(f).is_some(), "missing {f}");
        }
        let item = po.get("items").unwrap().at(0).unwrap();
        for f in ["itemno", "partno", "description", "quantity", "unitprice"] {
            assert!(item.get(f).is_some(), "missing item.{f}");
        }
    }
}

//! The NOBENCH workload (Chasseur, Li, Patel — WebDB 2013), used by the
//! paper for Figures 5–9: a genuinely semi-structured collection with a
//! few common fields and ~1000 sparse fields, plus the 11-query workload.

use fsdm_json::{JsonValue, Object};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of distinct sparse attributes in the collection.
pub const SPARSE_FIELDS: usize = 1000;
/// Sparse attributes present in each document (one 10-field cluster).
pub const SPARSE_PER_DOC: usize = 10;

/// Generate the `i`-th NOBENCH document (~530 bytes):
///
/// * `str1`, `str2` — strings;
/// * `num` — integer (correlated with `i` so range predicates have
///   tunable selectivity);
/// * `bool` — boolean;
/// * `dyn1`, `dyn2` — *dynamically typed*: string in some documents,
///   number in others (the heterogeneity Dremel-style fixed schemas
///   cannot express, §7);
/// * `nested_obj` — object with `str` and `num`;
/// * `nested_arr` — array of strings;
/// * `thousandth` — `i % 1000` (the Q10 group-by key);
/// * one cluster of 10 consecutive `sparse_XXX` fields.
pub fn doc(rng: &mut StdRng, i: usize) -> JsonValue {
    let mut o = Object::new();
    o.push("str1", crate::collections::word(rng, 12));
    o.push("str2", crate::collections::word(rng, 12));
    o.push("num", JsonValue::from(i as i64));
    o.push("bool", JsonValue::Bool(i.is_multiple_of(2)));
    if i.is_multiple_of(2) {
        o.push("dyn1", JsonValue::from(i as i64));
        o.push("dyn2", crate::collections::word(rng, 8));
    } else {
        o.push("dyn1", format!("{:08}", i));
        o.push("dyn2", JsonValue::from(i as i64));
    }
    let mut nested = Object::new();
    nested.push("str", crate::collections::word(rng, 10));
    nested.push("num", JsonValue::from(rng.gen_range(0..1_000_000)));
    o.push("nested_obj", JsonValue::Object(nested));
    let arr: Vec<JsonValue> =
        (0..rng.gen_range(2..6)).map(|_| crate::collections::word(rng, 8).into()).collect();
    o.push("nested_arr", JsonValue::Array(arr));
    o.push("thousandth", JsonValue::from((i % 1000) as i64));
    // one cluster of ten consecutive sparse fields
    let cluster = (i % (SPARSE_FIELDS / SPARSE_PER_DOC)) * SPARSE_PER_DOC;
    for s in cluster..cluster + SPARSE_PER_DOC {
        o.push(format!("sparse_{s:03}"), crate::collections::word(rng, 8));
    }
    JsonValue::Object(o)
}

/// The 11 NOBENCH queries as SQL over a collection table `(did, jdoc)`.
/// `n` is the corpus size (selectivity parameters scale with it).
pub fn query_sql(q: usize, n: usize) -> String {
    let lo = n / 2;
    let hi = lo + n / 10; // ~10% selectivity range scans
    let hi1 = lo + n / 1000 + 2; // ~0.1% for the join probe
    match q {
        1 => "select json_value(jdoc, '$.str1'), json_value(jdoc, '$.num' returning number) \
              from nobench"
            .to_string(),
        2 => "select json_value(jdoc, '$.nested_obj.str'), \
              json_value(jdoc, '$.nested_obj.num' returning number) from nobench"
            .to_string(),
        3 => "select json_value(jdoc, '$.sparse_110'), json_value(jdoc, '$.sparse_119') \
              from nobench where json_exists(jdoc, '$.sparse_110')"
            .to_string(),
        4 => "select json_value(jdoc, '$.sparse_110'), json_value(jdoc, '$.sparse_220') \
              from nobench where json_exists(jdoc, '$.sparse_110') or \
              json_exists(jdoc, '$.sparse_220')"
            .to_string(),
        5 => "select did, jdoc from nobench where json_value(jdoc, '$.str1') = ?".to_string(),
        6 => format!(
            "select json_value(jdoc, '$.num' returning number) from nobench \
             where json_value(jdoc, '$.num' returning number) between {lo} and {hi}"
        ),
        7 => format!(
            "select json_value(jdoc, '$.dyn1') from nobench \
             where json_value(jdoc, '$.dyn1' returning number) between {lo} and {hi}"
        ),
        8 => {
            "select did from nobench where json_exists(jdoc, '$.nested_arr?(@ == \"notpresent\")') \
              or json_exists(jdoc, '$.nested_arr?(@ starts with \"a\")')"
                .to_string()
        }
        9 => {
            "select did from nobench where json_value(jdoc, '$.sparse_550') is not null".to_string()
        }
        10 => format!(
            "select json_value(jdoc, '$.thousandth' returning number), count(*) from nobench \
             where json_value(jdoc, '$.num' returning number) between {lo} and {hi} \
             group by json_value(jdoc, '$.thousandth' returning number)"
        ),
        11 => format!(
            // self equi-join; executed programmatically by the harness in
            // plan form, this SQL documents the intent
            "select count(*) from nobench a, nobench b \
             where json_value(a.jdoc, '$.nested_obj.str') = json_value(b.jdoc, '$.str1') \
             and json_value(a.jdoc, '$.num' returning number) between {lo} and {hi1}"
        ),
        other => panic!("NOBENCH has queries 1..=11, not {other}"),
    }
}

/// Query ids that benefit from the three VC-IMC virtual columns
/// (`$.str1`, `$.num`, `$.dyn1`) — Figure 6's subset.
pub const VC_QUERIES: [usize; 4] = [6, 7, 10, 11];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn doc_shape() {
        let mut rng = rng_for("nobench", 9);
        let d = doc(&mut rng, 123);
        for f in [
            "str1",
            "str2",
            "num",
            "bool",
            "dyn1",
            "dyn2",
            "nested_obj",
            "nested_arr",
            "thousandth",
        ] {
            assert!(d.get(f).is_some(), "missing {f}");
        }
        assert_eq!(d.get("num").unwrap().as_i64(), Some(123));
        assert_eq!(d.get("thousandth").unwrap().as_i64(), Some(123));
        // doc 123 carries cluster 23 → sparse_230..sparse_239
        assert!(d.get("sparse_230").is_some());
        assert!(d.get("sparse_239").is_some());
        assert!(d.get("sparse_240").is_none());
    }

    #[test]
    fn dyn_fields_alternate_types() {
        let mut rng = rng_for("nobench", 9);
        let even = doc(&mut rng, 2);
        let odd = doc(&mut rng, 3);
        assert!(even.get("dyn1").unwrap().as_number().is_some());
        assert!(odd.get("dyn1").unwrap().as_str().is_some());
    }

    #[test]
    fn sparse_universe_is_1000_wide() {
        let mut rng = rng_for("nobench", 9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let d = doc(&mut rng, i);
            if let Some(o) = d.as_object() {
                for (k, _) in o.iter() {
                    if let Some(sfx) = k.strip_prefix("sparse_") {
                        seen.insert(sfx.parse::<usize>().unwrap());
                    }
                }
            }
        }
        assert!(seen.len() >= 900, "saw {} sparse ids", seen.len());
        assert!(seen.iter().all(|&s| s < SPARSE_FIELDS));
    }

    #[test]
    fn all_queries_render() {
        for q in 1..=11 {
            let sql = query_sql(q, 10_000);
            assert!(sql.to_lowercase().contains("from nobench"), "Q{q}: {sql}");
        }
    }
}

//! The §6.3 OLAP experiment workload: the purchaseOrder collection in the
//! four storage methods and the nine Table 13 queries over the `po_mv`
//! and `po_item_dmdv` view abstractions.

use fsdm_json::JsonValue;
use rand::rngs::StdRng;
use rand::Rng;

use crate::collections::purchase_order;

/// Generate the §6.3 corpus (the paper uses 100 000 documents).
pub fn corpus(rng: &mut StdRng, n: usize) -> Vec<JsonValue> {
    (0..n).map(|i| purchase_order(rng, i)).collect()
}

/// A Table 13 query: id, SQL over the view abstraction, bind values
/// drawn deterministically from the corpus.
#[derive(Debug, Clone)]
pub struct OlapQuery {
    /// 1..=9 as in Table 13.
    pub id: usize,
    /// SQL text over `po_mv` / `po_item_dmdv`.
    pub sql: String,
    /// Positional binds.
    pub binds: Vec<String>,
}

/// The nine OLAP queries (Table 13). Binds reference values that exist in
/// the generated corpus so selectivities are realistic.
pub fn queries(rng: &mut StdRng, corpus: &[JsonValue]) -> Vec<OlapQuery> {
    let pick = |rng: &mut StdRng| -> &JsonValue { &corpus[rng.gen_range(0..corpus.len())] };
    let po = |d: &JsonValue| d.get("purchaseOrder").unwrap().clone();
    let some_ref = po(pick(rng)).get("reference").unwrap().as_str().unwrap().to_string();
    let some_requestor = po(pick(rng)).get("requestor").unwrap().as_str().unwrap().to_string();
    let partno_of = |d: &JsonValue| {
        po(d)
            .get("items")
            .unwrap()
            .at(0)
            .unwrap()
            .get("partno")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    let p1 = partno_of(pick(rng));
    let p2 = partno_of(pick(rng));
    let p3 = partno_of(pick(rng));
    let p4 = partno_of(pick(rng));
    vec![
        OlapQuery {
            id: 1,
            sql: "select count(*) from po_mv p where p.reference = ?".into(),
            binds: vec![some_ref],
        },
        OlapQuery {
            id: 2,
            sql: "select costcenter, count(*) from po_mv group by costcenter order by 1".into(),
            binds: vec![],
        },
        OlapQuery {
            id: 3,
            sql: format!(
                "select costcenter, count(*) from po_item_dmdv where partno = '{p1}' \
                 group by costcenter"
            ),
            binds: vec![],
        },
        OlapQuery {
            id: 4,
            sql: "select reference, instructions, itemno, partno, description, quantity, \
                  unitprice from po_item_dmdv d where d.requestor = ? and d.quantity > ? \
                  and d.unitprice > ?"
                .into(),
            binds: vec![some_requestor, "5".into(), "100".into()],
        },
        OlapQuery {
            id: 5,
            sql: format!(
                "select l.reference, l.itemno, l.partno, l.description from po_item_dmdv l \
                 where l.partno in ('{p2}', '{p3}', '{p4}')"
            ),
            binds: vec![],
        },
        OlapQuery {
            id: 6,
            sql: format!(
                "select partno, reference, quantity, quantity - LAG(quantity, 1, quantity) \
                 over (order by substr(reference, instr(reference, '-') + 1)) as difference \
                 from po_item_dmdv where partno = '{p1}' \
                 order by substr(reference, instr(reference, '-') + 1) desc"
            ),
            binds: vec![],
        },
        OlapQuery {
            id: 7,
            sql: "select sum(quantity * unitprice) from po_item_dmdv group by costcenter \
                  order by 1"
                .into(),
            binds: vec![],
        },
        OlapQuery {
            id: 8,
            sql: "select reference, instructions, itemno, partno, description, quantity, \
                  unitprice from po_item_dmdv where quantity > ? and unitprice > ?"
                .into(),
            binds: vec!["15".into(), "700".into()],
        },
        OlapQuery {
            id: 9,
            sql: "select reference, instructions, itemno, partno, description, quantity, \
                  unitprice from po_item_dmdv"
                .into(),
            binds: vec![],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn corpus_and_queries_are_consistent() {
        let mut rng = rng_for("olap", 1);
        let docs = corpus(&mut rng, 100);
        assert_eq!(docs.len(), 100);
        let qs = queries(&mut rng, &docs);
        assert_eq!(qs.len(), 9);
        assert_eq!(qs[0].binds.len(), 1);
        // the Q1 bind is a reference that exists in the corpus
        let target = &qs[0].binds[0];
        assert!(docs.iter().any(|d| d
            .get("purchaseOrder")
            .unwrap()
            .get("reference")
            .unwrap()
            .as_str()
            == Some(target)));
    }

    #[test]
    fn queries_cover_both_views() {
        let mut rng = rng_for("olap", 2);
        let docs = corpus(&mut rng, 10);
        let qs = queries(&mut rng, &docs);
        assert!(qs.iter().filter(|q| q.sql.contains("po_mv")).count() >= 2);
        assert!(qs.iter().filter(|q| q.sql.contains("po_item_dmdv")).count() >= 7);
    }
}

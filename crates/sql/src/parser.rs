//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use crate::{Result, SqlError};

/// Parse one SQL statement.
pub fn parse_sql(sql: &str) -> Result<Statement> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, i: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    if p.i != p.toks.len() {
        return Err(SqlError::new(format!("trailing tokens at {:?}", p.peek())));
    }
    Ok(stmt)
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_kw(kw)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::new(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(x)) if *x == s) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SqlError::new(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(SqlError::new(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string_lit(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(SqlError::new(format!("expected string literal, found {other:?}"))),
        }
    }

    fn uint_lit(&mut self) -> Result<usize> {
        match self.next() {
            Some(Token::Number(s)) => {
                s.parse().map_err(|_| SqlError::new(format!("expected integer, found {s}")))
            }
            other => Err(SqlError::new(format!("expected integer, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("select") {
            return Ok(Statement::Select(self.select_body()?));
        }
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("view") {
                let name = self.ident()?;
                self.expect_kw("as")?;
                self.expect_kw("select")?;
                let select = self.select_body()?;
                return Ok(Statement::CreateView { name, select });
            }
            return Err(SqlError::new("expected TABLE or VIEW after CREATE"));
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let name = self.ident()?;
            self.expect_kw("values")?;
            let mut rows = Vec::new();
            loop {
                self.expect_sym("(")?;
                let mut vals = Vec::new();
                loop {
                    vals.push(self.expr()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                rows.push(vals);
                if !self.eat_sym(",") {
                    break;
                }
            }
            return Ok(Statement::Insert { name, rows });
        }
        Err(SqlError::new(format!("unsupported statement start: {:?}", self.peek())))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = if self.eat_kw("json") {
                let mut storage = "text".to_string();
                let mut dataguide = false;
                if self.eat_kw("store") {
                    self.expect_kw("as")?;
                    storage = self.ident()?.to_lowercase();
                }
                // `CHECK (col IS JSON)` accepted but the JSON type implies
                // validation; `WITH DATAGUIDE` enables guide maintenance
                let mut is_json = true;
                if self.eat_kw("check") {
                    self.expect_sym("(")?;
                    let _c = self.ident()?;
                    self.expect_kw("is")?;
                    self.expect_kw("json")?;
                    self.expect_sym(")")?;
                    is_json = true;
                }
                if self.eat_kw("without") {
                    self.expect_kw("validation")?;
                    is_json = false;
                }
                if self.eat_kw("with") {
                    self.expect_kw("dataguide")?;
                    dataguide = true;
                }
                CreateColType::Json { storage, is_json, dataguide }
            } else {
                CreateColType::Scalar(self.type_name()?)
            };
            columns.push(CreateColumn { name: col, ty });
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn type_name(&mut self) -> Result<SqlTypeName> {
        let t = self.ident()?.to_lowercase();
        match t.as_str() {
            "number" => Ok(SqlTypeName::Number),
            "boolean" => Ok(SqlTypeName::Boolean),
            "varchar2" | "varchar" => {
                self.expect_sym("(")?;
                let n = self.uint_lit()?;
                self.expect_sym(")")?;
                Ok(SqlTypeName::Varchar2(n))
            }
            other => Err(SqlError::new(format!("unknown type {other}"))),
        }
    }

    fn select_body(&mut self) -> Result<Select> {
        let mut items = Vec::new();
        loop {
            if self.eat_sym("*") {
                items.push(SelectItem::Wildcard);
            } else {
                // alias.* ?
                let save = self.i;
                if let Ok(id) = self.ident() {
                    if self.eat_sym(".") && self.eat_sym("*") {
                        items.push(SelectItem::QualifiedWildcard(id));
                        if self.eat_sym(",") {
                            continue;
                        }
                        break;
                    }
                }
                self.i = save;
                let e = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    match self.peek() {
                        Some(Token::Ident(s)) if !is_clause_kw(s) => {
                            let a = s.clone();
                            self.i += 1;
                            Some(a)
                        }
                        Some(Token::QuotedIdent(s)) => {
                            let a = s.clone();
                            self.i += 1;
                            Some(a)
                        }
                        _ => None,
                    }
                };
                items.push(SelectItem::Expr(e, alias));
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        let mut sample_pct = None;
        loop {
            if self.eat_kw("json_table") {
                from.push(self.json_table_source()?);
            } else {
                let name = self.ident()?;
                if self.eat_kw("sample") {
                    self.expect_sym("(")?;
                    let pct = match self.next() {
                        Some(Token::Number(s)) => {
                            s.parse::<f64>().map_err(|_| SqlError::new("bad sample percentage"))?
                        }
                        other => {
                            return Err(SqlError::new(format!("bad sample clause: {other:?}")))
                        }
                    };
                    self.expect_sym(")")?;
                    sample_pct = Some(pct);
                }
                let alias = match self.peek() {
                    Some(Token::Ident(s))
                        if !is_clause_kw(s) && !s.eq_ignore_ascii_case("json_table") =>
                    {
                        let a = s.clone();
                        self.i += 1;
                        Some(a)
                    }
                    _ => None,
                };
                from.push(FromSource::Table { name, alias });
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("limit") {
            limit = Some(self.uint_lit()?);
        } else if self.eat_kw("fetch") {
            self.expect_kw("first")?;
            let n = self.uint_lit()?;
            self.expect_kw("rows")?;
            self.expect_kw("only")?;
            limit = Some(n);
        }
        Ok(Select { items, from, where_clause, group_by, order_by, limit, sample_pct })
    }

    fn json_table_source(&mut self) -> Result<FromSource> {
        self.expect_sym("(")?;
        let column = self.expr()?;
        // optional `FORMAT JSON`
        if self.eat_kw("format") {
            self.expect_kw("json")?;
        }
        self.expect_sym(",")?;
        let row_path = self.string_lit()?;
        self.expect_kw("columns")?;
        let columns = self.jt_columns()?;
        self.expect_sym(")")?;
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !is_clause_kw(s) => {
                let a = s.clone();
                self.i += 1;
                Some(a)
            }
            _ => None,
        };
        Ok(FromSource::JsonTable { column, row_path, columns, alias })
    }

    fn jt_columns(&mut self) -> Result<Vec<JtColumn>> {
        self.expect_sym("(")?;
        let mut cols = Vec::new();
        loop {
            if self.eat_kw("nested") {
                self.expect_kw("path")?;
                let path = self.string_lit()?;
                self.expect_kw("columns")?;
                let inner = self.jt_columns()?;
                cols.push(JtColumn::Nested { path, columns: inner });
            } else {
                let name = self.ident()?;
                if self.eat_kw("for") {
                    self.expect_kw("ordinality")?;
                    cols.push(JtColumn::Ordinality { name });
                } else if self.eat_kw("exists") {
                    self.expect_kw("path")?;
                    let path = self.string_lit()?;
                    cols.push(JtColumn::Exists { name, path });
                } else {
                    let ty = self.type_name()?;
                    self.expect_kw("path")?;
                    let path = self.string_lit()?;
                    cols.push(JtColumn::Value { name, ty, path });
                }
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(cols)
    }

    // ---- expressions: OR > AND > NOT > comparison > additive > multiplicative > primary

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = SqlExpr::Binary(Box::new(lhs), "OR".into(), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = SqlExpr::Binary(Box::new(lhs), "AND".into(), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("not") {
            return Ok(SqlExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let not = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(SqlExpr::IsNull(Box::new(lhs), not));
        }
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(SqlExpr::Between(Box::new(lhs), Box::new(lo), Box::new(hi)));
        }
        if self.eat_kw("like") {
            let pat = self.string_lit()?;
            return Ok(SqlExpr::Like(Box::new(lhs), pat));
        }
        let not_in = if matches!(self.peek(), Some(t) if t.is_kw("not"))
            && matches!(self.toks.get(self.i + 1), Some(t) if t.is_kw("in"))
        {
            self.i += 2;
            true
        } else if self.eat_kw("in") {
            false
        } else {
            for op in ["=", "<>", "<=", ">=", "<", ">"] {
                if self.eat_sym(op) {
                    let rhs = self.add_expr()?;
                    return Ok(SqlExpr::Binary(Box::new(lhs), op.to_string(), Box::new(rhs)));
                }
            }
            return Ok(lhs);
        };
        self.expect_sym("(")?;
        let mut list = Vec::new();
        loop {
            list.push(self.expr()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(SqlExpr::InList(Box::new(lhs), list, not_in))
    }

    fn add_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_sym("+") {
                let rhs = self.mul_expr()?;
                lhs = SqlExpr::Binary(Box::new(lhs), "+".into(), Box::new(rhs));
            } else if self.eat_sym("-") {
                let rhs = self.mul_expr()?;
                lhs = SqlExpr::Binary(Box::new(lhs), "-".into(), Box::new(rhs));
            } else if self.eat_sym("||") {
                let rhs = self.mul_expr()?;
                lhs = SqlExpr::Binary(Box::new(lhs), "||".into(), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.primary()?;
        loop {
            if self.eat_sym("*") {
                let rhs = self.primary()?;
                lhs = SqlExpr::Binary(Box::new(lhs), "*".into(), Box::new(rhs));
            } else if self.eat_sym("/") {
                let rhs = self.primary()?;
                lhs = SqlExpr::Binary(Box::new(lhs), "/".into(), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.peek().cloned() {
            Some(Token::Sym("(")) => {
                self.i += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Token::Sym("?")) => {
                self.i += 1;
                Ok(SqlExpr::Bind)
            }
            Some(Token::Sym("-")) => {
                self.i += 1;
                let e = self.primary()?;
                Ok(SqlExpr::Binary(Box::new(SqlExpr::NumLit("0".into())), "-".into(), Box::new(e)))
            }
            Some(Token::Number(n)) => {
                self.i += 1;
                Ok(SqlExpr::NumLit(n))
            }
            Some(Token::Str(s)) => {
                self.i += 1;
                Ok(SqlExpr::StrLit(s))
            }
            Some(Token::QuotedIdent(q)) => {
                self.i += 1;
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    Ok(SqlExpr::Ident(Some(q), col))
                } else {
                    Ok(SqlExpr::Ident(None, q))
                }
            }
            Some(Token::Ident(id)) => {
                self.i += 1;
                let up = id.to_uppercase();
                if up == "NULL" {
                    return Ok(SqlExpr::Null);
                }
                if matches!(self.peek(), Some(Token::Sym("("))) {
                    return self.call(up);
                }
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    return Ok(SqlExpr::Ident(Some(id), col));
                }
                Ok(SqlExpr::Ident(None, id))
            }
            other => Err(SqlError::new(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn call(&mut self, name: String) -> Result<SqlExpr> {
        self.expect_sym("(")?;
        match name.as_str() {
            "COUNT" if self.eat_sym("*") => {
                self.expect_sym(")")?;
                Ok(SqlExpr::CountStar)
            }
            "JSON_VALUE" => {
                let col = self.expr()?;
                self.expect_sym(",")?;
                let path = self.string_lit()?;
                let ret = if self.eat_kw("returning") { Some(self.type_name()?) } else { None };
                self.expect_sym(")")?;
                Ok(SqlExpr::JsonValue(Box::new(col), path, ret))
            }
            "JSON_EXISTS" => {
                let col = self.expr()?;
                self.expect_sym(",")?;
                let path = self.string_lit()?;
                self.expect_sym(")")?;
                Ok(SqlExpr::JsonExists(Box::new(col), path))
            }
            "JSON_DATAGUIDEAGG" => {
                let col = self.expr()?;
                self.expect_sym(")")?;
                Ok(SqlExpr::DataGuideAgg(Box::new(col)))
            }
            "LAG" => {
                let expr = self.expr()?;
                let mut offset = 1usize;
                let mut default = None;
                if self.eat_sym(",") {
                    offset = self.uint_lit()?;
                    if self.eat_sym(",") {
                        default = Some(Box::new(self.expr()?));
                    }
                }
                self.expect_sym(")")?;
                self.expect_kw("over")?;
                self.expect_sym("(")?;
                self.expect_kw("order")?;
                self.expect_kw("by")?;
                let mut order = Vec::new();
                loop {
                    let e = self.expr()?;
                    let desc = if self.eat_kw("desc") {
                        true
                    } else {
                        self.eat_kw("asc");
                        false
                    };
                    order.push(OrderItem { expr: e, desc });
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                Ok(SqlExpr::Lag { expr: Box::new(expr), offset, default, order })
            }
            _ => {
                let mut args = Vec::new();
                if !self.eat_sym(")") {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                }
                Ok(SqlExpr::Call(name, args))
            }
        }
    }
}

fn is_clause_kw(s: &str) -> bool {
    matches!(
        s.to_lowercase().as_str(),
        "where"
            | "group"
            | "order"
            | "from"
            | "limit"
            | "fetch"
            | "on"
            | "join"
            | "as"
            | "and"
            | "or"
            | "not"
            | "in"
            | "like"
            | "between"
            | "is"
            | "desc"
            | "asc"
            | "sample"
            | "union"
            | "having"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table13_q2() {
        let s = parse_sql("select costcenter, count(*) from po_mv group by costcenter order by 1")
            .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_table13_q6_window() {
        let s = parse_sql(
            "select Partno, Reference, Quantity, QUANTITY - LAG(QUANTITY,1,QUANTITY) over \
             (ORDER BY SUBSTR(REFERENCE, INSTR(REFERENCE,'-') + 1)) as DIFFERENCE \
             from po_item_dmdv where Partno = '97' \
             order by SUBSTR(REFERENCE, INSTR(REFERENCE, '-') + 1) desc",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    &sel.items[3],
                    SelectItem::Expr(SqlExpr::Binary(_, op, rhs), Some(a))
                        if op == "-" && a == "DIFFERENCE"
                            && matches!(**rhs, SqlExpr::Lag { .. })
                ));
                assert!(sel.order_by[0].desc);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_json_table_from() {
        let s = parse_sql(
            "SELECT p.did, jt.* FROM po p, JSON_TABLE(p.jdoc, '$.purchaseOrder' COLUMNS ( \
               id number PATH '$.id', \
               NESTED PATH '$.items[*]' COLUMNS ( \
                 name varchar2(8) PATH '$.name', \
                 seq FOR ORDINALITY, \
                 has_parts EXISTS PATH '$.parts'))) jt",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                match &sel.from[1] {
                    FromSource::JsonTable { columns, row_path, alias, .. } => {
                        assert_eq!(row_path, "$.purchaseOrder");
                        assert_eq!(alias.as_deref(), Some("jt"));
                        assert_eq!(columns.len(), 2);
                        assert!(matches!(&columns[1], JtColumn::Nested { columns, .. }
                            if columns.len() == 3));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_table_and_insert() {
        let s = parse_sql("create table po (did number, jdoc json store as oson with dataguide)")
            .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "po");
                assert!(
                    matches!(&columns[1].ty, CreateColType::Json { storage, dataguide: true, .. }
                    if storage == "oson")
                );
            }
            other => panic!("{other:?}"),
        }
        let ins = parse_sql("insert into po values (1, '{\"a\":1}'), (2, '{}')").unwrap();
        match ins {
            Statement::Insert { rows, .. } => assert_eq!(rows.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_predicates() {
        let s = parse_sql(
            "select * from t where a between 1 and 5 and b in ('x','y') and c like 'p%' \
             and d is not null and not (e = 1 or f <> 2)",
        );
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn parses_sample_and_dataguideagg() {
        let s = parse_sql("select json_dataguideagg(jcol) from po sample (50)").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.sample_pct, Some(50.0));
                assert!(matches!(&sel.items[0], SelectItem::Expr(SqlExpr::DataGuideAgg(_), None)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_binds_and_json_ops() {
        let s = parse_sql(
            "select count(*) from po_mv p where p.reference = ? and \
             json_exists(p.jdoc, '$.items') and \
             json_value(p.jdoc, '$.id' returning number) > 5",
        );
        assert!(s.is_ok(), "{s:?}");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "select",
            "select from t",
            "select * t",
            "insert po values (1)",
            "create table t (a unknown_type)",
            "select * from t where",
        ] {
            assert!(parse_sql(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn fetch_first_limit() {
        let s = parse_sql("select * from t fetch first 10 rows only").unwrap();
        match s {
            Statement::Select(sel) => assert_eq!(sel.limit, Some(10)),
            other => panic!("{other:?}"),
        }
        let s2 = parse_sql("select * from t limit 5").unwrap();
        match s2 {
            Statement::Select(sel) => assert_eq!(sel.limit, Some(5)),
            other => panic!("{other:?}"),
        }
    }
}

//! Statement-level plan type checking: the SQL front end of
//! `fsdm-planck`.
//!
//! The inference and translation-validation passes live in
//! `fsdm_store::typecheck`; this module plans the SQL text and runs
//! [`check_plan`] over the result, so callers get the PK001–PK006
//! findings for a statement the same way [`Session::analyze`] gives the
//! FA path findings. Every call feeds the `planck.*` metrics.

use std::time::Instant;

use fsdm_sqljson::Datum;
use fsdm_store::typecheck::{check_plan, Inference};

use crate::planner::Session;
use crate::Result;

impl Session {
    /// Type-check one SELECT: plan it, infer the output schema
    /// (column names, scalar types, nullability), and validate the
    /// optimizer's rewrite of the plan — schema equivalence, preserved
    /// determinism and parallel-safety class, idempotence. Statements
    /// that do not plan to the query algebra are an error here, like
    /// [`Session::plan`].
    pub fn typecheck(&self, sql: &str) -> Result<Inference> {
        self.typecheck_with(sql, &[])
    }

    /// [`Session::typecheck`] with positional `?` bind values.
    pub fn typecheck_with(&self, sql: &str, binds: &[Datum]) -> Result<Inference> {
        let plan = self.plan(sql, binds)?;
        Ok(self.typecheck_plan(&plan))
    }

    /// [`Session::typecheck`] over an already-built plan (the workload
    /// harness constructs some plans directly, e.g. NoBench Q11).
    pub fn typecheck_plan(&self, plan: &fsdm_store::Query) -> Inference {
        let start = Instant::now();
        let inf = check_plan(&self.db, plan);
        fsdm_obs::counter!(fsdm_obs::catalog::PLANCK_CHECKS).inc();
        let errors = inf.errors() as u64;
        if errors > 0 {
            fsdm_obs::counter!(fsdm_obs::catalog::PLANCK_ERRORS).add(errors);
        }
        let warnings = inf
            .diagnostics
            .iter()
            .filter(|d| d.severity == fsdm_analyze::Severity::Warning)
            .count() as u64;
        if warnings > 0 {
            fsdm_obs::counter!(fsdm_obs::catalog::PLANCK_WARNINGS).add(warnings);
        }
        fsdm_obs::histogram!(fsdm_obs::catalog::PLANCK_INFER_NS)
            .record(start.elapsed().as_nanos() as u64);
        inf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_analyze::Code;

    fn session() -> Session {
        let mut s = Session::new();
        s.execute("CREATE TABLE po (did NUMBER, jdoc JSON)").unwrap();
        s.execute(r#"INSERT INTO po VALUES (1, '{"reference": "R1", "price": 10}')"#).unwrap();
        s
    }

    #[test]
    fn typecheck_infers_statement_schema() {
        let s = session();
        let inf = s.typecheck("SELECT did FROM po WHERE did > 0").unwrap();
        assert!(inf.diagnostics.is_empty(), "{:?}", inf.diagnostics);
        assert_eq!(inf.schema.render(), "did:float?");
    }

    #[test]
    fn typecheck_flags_null_comparison() {
        let s = session();
        let inf = s.typecheck("SELECT did FROM po WHERE did = NULL").unwrap();
        assert_eq!(inf.diagnostics.len(), 1);
        assert_eq!(inf.diagnostics[0].code, Code::NullComparison);
        assert_eq!(inf.errors(), 0, "null comparison is a warning, not an error");
    }

    #[test]
    fn typecheck_counts_into_the_planck_metrics() {
        let s = session();
        let snap = |name: &str| fsdm_obs::snapshot().counters.get(name).copied().unwrap_or(0);
        let before = snap(fsdm_obs::catalog::PLANCK_CHECKS);
        s.typecheck("SELECT did FROM po").unwrap();
        assert_eq!(snap(fsdm_obs::catalog::PLANCK_CHECKS), before + 1);
    }

    #[test]
    fn non_planning_statements_error() {
        let s = session();
        assert!(s.typecheck("CREATE TABLE x (a NUMBER)").is_err());
    }
}

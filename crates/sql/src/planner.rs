//! Planner: SQL AST → `fsdm-store` query plans, plus DDL/DML execution.

use fsdm_dataguide::agg::GuideFormat;
use fsdm_dataguide::DataGuideAgg;
use fsdm_json::JsonNumber;
use fsdm_obs::trace::{Trace, TraceSession};
use fsdm_sqljson::json_table::{ColumnDef, JsonTableDef, NestedDef};
use fsdm_sqljson::{parse_path, Datum, SqlType};
use fsdm_store::table::InsertValue;
use fsdm_store::{
    AggFun, CmpOp, ColType, ColumnSpec, ConstraintMode, Database, Expr, JsonStorage, Query,
    QueryProfile, QueryResult, ScalarFun, SortKey, Table, TableSchema, WindowFun,
};

use crate::ast::*;
use crate::parser::parse_sql;
use crate::{Result, SqlError};

/// A SQL session bound to a database.
pub struct Session {
    /// The underlying engine.
    pub db: Database,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Session over a fresh database.
    pub fn new() -> Self {
        Session { db: Database::new() }
    }

    /// Session over an existing database.
    pub fn with_db(db: Database) -> Self {
        Session { db }
    }

    /// Pin the executor's parallel degree for every statement this
    /// session runs (see [`Database::set_parallelism`]); `1` forces
    /// strictly serial execution. Results are byte-identical at any
    /// degree — only wall-clock time changes.
    pub fn set_parallelism(&mut self, degree: usize) {
        self.db.set_parallelism(degree);
    }

    /// Set (or clear) the statement timeout in milliseconds: every
    /// subsequent statement gets a deadline of `now + ms` at execution
    /// start and dies with a typed deadline error when it runs past it
    /// (see [`Database::set_statement_timeout`]).
    pub fn set_statement_timeout(&mut self, ms: Option<u64>) {
        self.db.set_statement_timeout(ms);
    }

    /// Set (or clear) the per-statement memory budget in bytes (see
    /// [`Database::set_mem_limit`]).
    pub fn set_mem_limit(&mut self, bytes: Option<u64>) {
        self.db.set_mem_limit(bytes);
    }

    /// A cross-thread handle that cancels this session's currently
    /// running statement. Statement entry points reset the underlying
    /// token, so a cancel only ever affects the statement that was (or
    /// is about to be) running when it was requested.
    pub fn cancel_handle(&self) -> fsdm_store::CancelHandle {
        self.db.cancel_handle()
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute_with(sql, &[])
    }

    /// Parse and execute with positional `?` bind values.
    pub fn execute_with(&mut self, sql: &str, binds: &[Datum]) -> Result<QueryResult> {
        // `&mut self` guarantees no statement is running: a leftover
        // cancellation (user or governance) must not leak into this one
        self.db.cancel_token().reset();
        match parse_sql(sql)? {
            Statement::Select(sel) => self.run_select(sql, &sel, binds),
            Statement::CreateTable { name, columns } => {
                self.create_table(&name, &columns)?;
                Ok(empty_result("created"))
            }
            Statement::Insert { name, rows } => {
                let n = self.run_insert(&name, &rows, binds)?;
                Ok(QueryResult {
                    columns: vec!["inserted".to_string()],
                    rows: vec![vec![Datum::from(n as i64)]],
                })
            }
            Statement::CreateView { name, select } => {
                let plan = self.plan_select(&select, binds)?;
                self.db.create_view(name, plan);
                Ok(empty_result("created"))
            }
        }
    }

    /// Parse and execute one statement while profiling the executor.
    ///
    /// For a SELECT this returns the result together with the
    /// `EXPLAIN ANALYZE`-style [`QueryProfile`] (per-operator output rows
    /// and inclusive wall time). DDL/DML and the session-driven
    /// `JSON_DATAGUIDEAGG` path do not run through the volcano executor,
    /// so they execute normally and return `None` for the profile.
    pub fn profile(&mut self, sql: &str) -> Result<(QueryResult, Option<QueryProfile>)> {
        self.profile_with(sql, &[])
    }

    /// [`Session::profile`] with positional `?` bind values.
    pub fn profile_with(
        &mut self,
        sql: &str,
        binds: &[Datum],
    ) -> Result<(QueryResult, Option<QueryProfile>)> {
        self.db.cancel_token().reset();
        if let Statement::Select(sel) = parse_sql(sql)? {
            if dataguide_agg_target(&sel).is_none() {
                let plan = self.plan_select(&sel, binds)?;
                let (result, mut profile) = self.db.execute_profiled(&plan)?;
                // attach the prepare-time findings (FA path lint + PK plan
                // typecheck); analysis is advisory, so its errors never
                // fail an executable statement
                profile.diagnostics =
                    crate::analyze::analyze_select(&self.db, &sel).unwrap_or_default();
                profile.diagnostics.extend(self.typecheck_plan(&plan).diagnostics);
                return Ok((result, Some(profile)));
            }
        }
        Ok((self.execute_with(sql, binds)?, None))
    }

    /// Parse and execute one statement under an armed trace session (see
    /// [`fsdm_obs::trace`]), returning the rows together with the span
    /// tree of the execution: operators, workers, morsels, path
    /// evaluations, OSON decodes, index probes. Tracing is process-global
    /// and serialized, so concurrent `trace_sql` calls queue up.
    pub fn trace_sql(&mut self, sql: &str) -> Result<(QueryResult, Trace)> {
        let (result, _, trace) = self.trace_with(sql, &[])?;
        Ok((result, trace))
    }

    /// [`Session::trace_sql`] with positional `?` bind values, also
    /// returning the [`QueryProfile`] when the statement ran through the
    /// volcano executor (see [`Session::profile_with`] for when it does
    /// not).
    pub fn trace_with(
        &mut self,
        sql: &str,
        binds: &[Datum],
    ) -> Result<(QueryResult, Option<QueryProfile>, Trace)> {
        self.db.cancel_token().reset();
        if let Statement::Select(sel) = parse_sql(sql)? {
            if dataguide_agg_target(&sel).is_none() {
                let plan = self.plan_select(&sel, binds)?;
                let (result, mut profile, trace) =
                    self.db.execute_traced_sourced(&plan, Some(sql))?;
                profile.diagnostics =
                    crate::analyze::analyze_select(&self.db, &sel).unwrap_or_default();
                profile.diagnostics.extend(self.typecheck_plan(&plan).diagnostics);
                return Ok((result, Some(profile), trace));
            }
        }
        // statements outside the volcano executor (DDL/DML, the
        // dataguide-agg path) still trace whatever spans they touch
        let session = TraceSession::begin();
        let out = self.execute_with(sql, binds);
        let trace = session.finish();
        Ok((out?, None, trace))
    }

    /// Plan (without executing) a SELECT — used to register views and by
    /// the benchmark harness to pre-plan hot queries.
    pub fn plan(&self, sql: &str, binds: &[Datum]) -> Result<Query> {
        match parse_sql(sql)? {
            Statement::Select(sel) => self.plan_select(&sel, binds),
            _ => Err(SqlError::new("plan() expects a SELECT")),
        }
    }

    fn run_select(&self, sql: &str, sel: &Select, binds: &[Datum]) -> Result<QueryResult> {
        // JSON_DATAGUIDEAGG is the one aggregate the plan algebra does not
        // model; the session drives it directly (§3.4)
        if let Some(agg_col) = dataguide_agg_target(sel) {
            return self.run_dataguide_agg(sel, &agg_col, binds);
        }
        let plan = self.plan_select(sel, binds)?;
        // the SQL text rides along so slow-query-log entries name the
        // statement rather than the plan root
        Ok(self.db.execute_sourced(&plan, Some(sql))?)
    }

    fn create_table(&mut self, name: &str, columns: &[CreateColumn]) -> Result<()> {
        let mut specs = Vec::new();
        for c in columns {
            match &c.ty {
                CreateColType::Scalar(t) => {
                    specs.push(ColumnSpec::new(c.name.clone(), scalar_coltype(*t)));
                }
                CreateColType::Json { storage, is_json, dataguide } => {
                    let st = match storage.as_str() {
                        "text" => JsonStorage::Text,
                        "bson" => JsonStorage::Bson,
                        "oson" => JsonStorage::Oson,
                        other => {
                            return Err(SqlError::new(format!("unknown JSON storage {other}")))
                        }
                    };
                    let mode = match (is_json, dataguide) {
                        (_, true) => ConstraintMode::IsJsonWithDataGuide,
                        (true, false) => ConstraintMode::IsJson,
                        (false, false) => ConstraintMode::None,
                    };
                    specs.push(ColumnSpec::json(c.name.clone(), st, mode));
                }
            }
        }
        if self.db.table(name).is_some() {
            return Err(SqlError::new(format!("table {name} already exists")));
        }
        self.db.add_table(Table::new(TableSchema::new(name, specs)));
        Ok(())
    }

    fn run_insert(&mut self, name: &str, rows: &[Vec<SqlExpr>], binds: &[Datum]) -> Result<usize> {
        let table = self.db.table(name).ok_or_else(|| SqlError::new(format!("no table {name}")))?;
        let types: Vec<ColType> = table.schema.columns.iter().map(|c| c.ty).collect();
        let mut bind_pos = 0usize;
        let mut converted: Vec<Vec<InsertValue>> = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != types.len() {
                return Err(SqlError::new(format!(
                    "insert arity mismatch: {} values for {} columns",
                    row.len(),
                    types.len()
                )));
            }
            let mut vals = Vec::with_capacity(row.len());
            for (e, ty) in row.iter().zip(&types) {
                let d = match e {
                    SqlExpr::Bind => {
                        let d = binds
                            .get(bind_pos)
                            .cloned()
                            .ok_or_else(|| SqlError::new("missing bind value"))?;
                        bind_pos += 1;
                        d
                    }
                    other => literal_datum(other)?,
                };
                let v = match ty {
                    ColType::Json(_) => InsertValue::Json(d.to_text()),
                    _ => InsertValue::Datum(d),
                };
                vals.push(v);
            }
            converted.push(vals);
        }
        let table = self.db.table_mut(name).expect("checked above");
        let n = converted.len();
        for vals in converted {
            table.insert(vals).map_err(SqlError::from)?;
        }
        Ok(n)
    }

    fn run_dataguide_agg(
        &self,
        sel: &Select,
        col: &SqlExpr,
        binds: &[Datum],
    ) -> Result<QueryResult> {
        // base plan: scan (+ sample/filter), projecting the JSON column as
        // text and any group keys
        let scope = self.base_scope(sel, binds)?;
        let col_expr = scope.translate(col)?;
        let mut plan = scope.plan.clone();
        if let Some(w) = &sel.where_clause {
            plan = plan.filter(scope.translate(w)?);
        }
        if let Some(pct) = sel.sample_pct {
            plan = Query::Sample { input: Box::new(plan), pct };
        }
        let mut exprs: Vec<(String, Expr)> = vec![("doc".to_string(), col_expr)];
        for (i, g) in sel.group_by.iter().enumerate() {
            exprs.push((format!("k{i}"), scope.translate(g)?));
        }
        let plan = Query::Project { input: Box::new(plan), exprs };
        let res = self.db.execute(&plan)?;
        // group and aggregate
        let mut groups: Vec<(Vec<Datum>, DataGuideAgg)> = Vec::new();
        for row in &res.rows {
            let key: Vec<Datum> = row[1..].to_vec();
            let slot = match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, agg)) => agg,
                None => {
                    groups.push((key, DataGuideAgg::new(GuideFormat::Flat)));
                    &mut groups.last_mut().unwrap().1
                }
            };
            if let Datum::Str(text) = &row[0] {
                if let Ok(doc) = fsdm_json::parse(text) {
                    slot.iterate(&doc);
                }
            }
        }
        if groups.is_empty() {
            groups.push((Vec::new(), DataGuideAgg::new(GuideFormat::Flat)));
        }
        let mut columns = vec!["json_dataguideagg".to_string()];
        for i in 0..sel.group_by.len() {
            columns.push(format!("k{i}"));
        }
        let rows = groups
            .into_iter()
            .map(|(key, agg)| {
                let mut row = vec![Datum::Str(fsdm_json::to_string(&agg.terminate()))];
                row.extend(key);
                row
            })
            .collect();
        Ok(QueryResult { columns, rows })
    }

    /// Resolve the FROM clause into a base plan plus a naming scope.
    fn base_scope(&self, sel: &Select, binds: &[Datum]) -> Result<Scope> {
        if sel.from.is_empty() {
            return Err(SqlError::new("FROM clause required"));
        }
        // first source must be a table or view
        let (first_plan, first_alias, first_cols) = match &sel.from[0] {
            FromSource::Table { name, alias } => {
                let plan = if self.db.table(name).is_some() {
                    Query::scan(name.clone())
                } else if self.db.view(name).is_some() {
                    Query::view(name.clone())
                } else {
                    return Err(SqlError::new(format!("no table or view {name}")));
                };
                let cols = self.db.plan_columns(&plan)?;
                (plan, alias.clone().unwrap_or_else(|| name.clone()), cols)
            }
            FromSource::JsonTable { .. } => {
                return Err(SqlError::new("JSON_TABLE must follow a base table"))
            }
        };
        let mut scope = Scope {
            plan: first_plan,
            segments: vec![(first_alias, first_cols)],
            binds: binds.to_vec(),
            bind_cursor: std::cell::Cell::new(0),
            lag_columns: Vec::new(),
            pending_join: None,
        };
        for src in &sel.from[1..] {
            match src {
                FromSource::JsonTable { column, row_path, columns, alias } => {
                    let json_col = match scope.resolve_ident(column)? {
                        Expr::Col(i) => i,
                        _ => return Err(SqlError::new("JSON_TABLE column must be a column")),
                    };
                    let def = build_jt_def(row_path, columns)?;
                    let names = def.column_names();
                    scope.plan =
                        Query::JsonTable { input: Box::new(scope.plan.clone()), json_col, def };
                    scope.segments.push((alias.clone().unwrap_or_else(|| "jt".to_string()), names));
                }
                FromSource::Table { name, alias } => {
                    // comma join: require an equi-join condition in WHERE
                    let plan = if self.db.table(name).is_some() {
                        Query::scan(name.clone())
                    } else if self.db.view(name).is_some() {
                        Query::view(name.clone())
                    } else {
                        return Err(SqlError::new(format!("no table or view {name}")));
                    };
                    let cols = self.db.plan_columns(&plan)?;
                    scope.pending_join = Some(PendingJoin {
                        plan,
                        alias: alias.clone().unwrap_or_else(|| name.clone()),
                        cols,
                    });
                }
            }
        }
        Ok(scope)
    }

    fn plan_select(&self, sel: &Select, binds: &[Datum]) -> Result<Query> {
        let mut scope = self.base_scope(sel, binds)?;
        let mut residual: Option<Expr> = None;
        // resolve a pending comma join using the WHERE clause
        if let Some(join) = scope.pending_join.take() {
            let w = sel
                .where_clause
                .as_ref()
                .ok_or_else(|| SqlError::new("comma join requires a join predicate"))?;
            let mut conjuncts = Vec::new();
            split_conjuncts(w, &mut conjuncts);
            let left_width: usize = scope.segments.iter().map(|(_, c)| c.len()).sum();
            let mut join_keys: Option<(usize, usize)> = None;
            let mut rest: Vec<&SqlExpr> = Vec::new();
            for c in conjuncts {
                if join_keys.is_none() {
                    if let SqlExpr::Binary(l, op, r) = c {
                        if op == "=" {
                            let lk = scope.try_resolve(l);
                            let rk = join_resolve(&join, r);
                            if let (Some(Expr::Col(li)), Some(ri)) = (&lk, rk) {
                                join_keys = Some((*li, ri));
                                continue;
                            }
                            let lk2 = join_resolve(&join, l);
                            let rk2 = scope.try_resolve(r);
                            if let (Some(li), Some(Expr::Col(ri))) = (lk2, &rk2) {
                                join_keys = Some((*ri, li));
                                continue;
                            }
                        }
                    }
                }
                rest.push(c);
            }
            let (lkey, rkey) = join_keys
                .ok_or_else(|| SqlError::new("no equi-join condition found for comma join"))?;
            let _ = left_width;
            scope.plan = Query::HashJoin {
                left: Box::new(scope.plan.clone()),
                right: Box::new(join.plan),
                left_key: lkey,
                right_key: rkey,
            };
            scope.segments.push((join.alias, join.cols));
            // re-resolve remaining conjuncts over the joined scope
            let mut pred: Option<Expr> = None;
            for c in rest {
                let e = scope.translate(c)?;
                pred = Some(match pred {
                    None => e,
                    Some(p) => Expr::And(Box::new(p), Box::new(e)),
                });
            }
            residual = pred;
        } else if let Some(w) = &sel.where_clause {
            residual = Some(scope.translate(w)?);
        }
        let mut plan = scope.plan.clone();
        if let Some(pct) = sel.sample_pct {
            plan = Query::Sample { input: Box::new(plan), pct };
        }
        if let Some(pred) = residual {
            plan = plan.filter(pred);
        }

        let has_group = !sel.group_by.is_empty() || select_has_aggregate(sel);
        if has_group {
            return self.plan_aggregate(sel, &mut scope, plan);
        }

        // window functions: append a column per LAG in the select list
        let mut lag_cols: Vec<(SqlExpr, usize)> = Vec::new(); // (LAG expr, col idx)
        let mut width: usize = scope.segments.iter().map(|(_, c)| c.len()).sum();
        for item in &sel.items {
            if let SelectItem::Expr(e, _) = item {
                for (full, (value, offset, default, order)) in find_lags(e) {
                    let name = format!("__lag{}", lag_cols.len());
                    let lag_expr = scope.translate(value)?;
                    let default = match default {
                        Some(d) => Some(scope.translate(d)?),
                        None => None,
                    };
                    let order = order
                        .iter()
                        .map(|o| Ok(SortKey { expr: scope.translate(&o.expr)?, desc: o.desc }))
                        .collect::<Result<Vec<_>>>()?;
                    plan = Query::Window {
                        input: Box::new(plan),
                        name,
                        fun: WindowFun::Lag { expr: lag_expr, offset, default },
                        order,
                    };
                    lag_cols.push((full.clone(), width));
                    width += 1;
                }
            }
        }
        scope.lag_columns = lag_cols;

        // ORDER BY non-ordinal keys are resolved against the pre-projection
        // scope, so sort first
        let ordinal_only =
            !sel.order_by.is_empty() && sel.order_by.iter().all(|o| ordinal_of(&o.expr).is_some());
        if !sel.order_by.is_empty() && !ordinal_only {
            let keys = sel
                .order_by
                .iter()
                .map(|o| Ok(SortKey { expr: scope.translate(&o.expr)?, desc: o.desc }))
                .collect::<Result<Vec<_>>>()?;
            plan = Query::Sort { input: Box::new(plan), keys };
        }
        // projection
        let exprs = self.select_exprs(sel, &scope)?;
        plan = Query::Project { input: Box::new(plan), exprs };
        if ordinal_only {
            let keys = sel
                .order_by
                .iter()
                .map(|o| {
                    let i = ordinal_of(&o.expr).unwrap();
                    SortKey { expr: Expr::Col(i - 1), desc: o.desc }
                })
                .collect();
            plan = Query::Sort { input: Box::new(plan), keys };
        }
        if let Some(n) = sel.limit {
            plan = plan.limit(n);
        }
        Ok(plan)
    }

    fn plan_aggregate(&self, sel: &Select, scope: &mut Scope, input: Query) -> Result<Query> {
        use fsdm_store::query::AggSpec;
        // group keys
        let mut keys = Vec::new();
        for (i, g) in sel.group_by.iter().enumerate() {
            keys.push((format!("k{i}"), scope.translate(g)?));
        }
        // aggregates discovered in the select list and ORDER BY
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut agg_sources: Vec<SqlExpr> = Vec::new();
        for item in &sel.items {
            if let SelectItem::Expr(e, _) = item {
                collect_aggs(e, &mut agg_sources);
            }
        }
        for o in &sel.order_by {
            collect_aggs(&o.expr, &mut agg_sources);
        }
        for (i, a) in agg_sources.iter().enumerate() {
            let name = format!("a{i}");
            let spec = match a {
                SqlExpr::CountStar => AggSpec::count_star(&name),
                SqlExpr::Call(f, args) => {
                    let fun = agg_fun(f).expect("collected aggregates only");
                    AggSpec::of(&name, fun, scope.translate(&args[0])?)
                }
                _ => unreachable!(),
            };
            aggs.push(spec);
        }
        let plan = Query::GroupBy {
            input: Box::new(input),
            keys: keys.iter().map(|(n, e)| (n.clone(), e.clone())).collect(),
            aggs,
        };
        // post-aggregation scope: group keys then aggregates
        let group_exprs: Vec<&SqlExpr> = sel.group_by.iter().collect();
        let resolve_post =
            |e: &SqlExpr| -> Result<Expr> { resolve_over_aggregate(e, &group_exprs, &agg_sources) };
        // projection in select-list order
        let mut exprs = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Expr(e, alias) => {
                    let name = match alias {
                        Some(a) => a.clone(),
                        None => dedupe_name(display_name(e, i), &exprs),
                    };
                    exprs.push((name, resolve_post(e)?));
                }
                _ => return Err(SqlError::new("* not supported with GROUP BY")),
            }
        }
        let mut plan = Query::Project { input: Box::new(plan), exprs };
        if !sel.order_by.is_empty() {
            let keys = sel
                .order_by
                .iter()
                .map(|o| {
                    if let Some(i) = ordinal_of(&o.expr) {
                        Ok(SortKey { expr: Expr::Col(i - 1), desc: o.desc })
                    } else {
                        // match against select items first
                        for (j, item) in sel.items.iter().enumerate() {
                            if let SelectItem::Expr(e, _) = item {
                                if e == &o.expr {
                                    return Ok(SortKey { expr: Expr::Col(j), desc: o.desc });
                                }
                            }
                        }
                        Err(SqlError::new(
                            "ORDER BY in aggregate query must reference the select list",
                        ))
                    }
                })
                .collect::<Result<Vec<_>>>()?;
            plan = Query::Sort { input: Box::new(plan), keys };
        }
        if let Some(n) = sel.limit {
            plan = plan.limit(n);
        }
        Ok(plan)
    }

    fn select_exprs(&self, sel: &Select, scope: &Scope) -> Result<Vec<(String, Expr)>> {
        let mut out = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    let mut idx = 0usize;
                    for (_, cols) in &scope.segments {
                        for c in cols {
                            out.push((c.clone(), Expr::Col(idx)));
                            idx += 1;
                        }
                    }
                }
                SelectItem::QualifiedWildcard(alias) => {
                    let mut idx = 0usize;
                    let mut found = false;
                    for (seg_alias, cols) in &scope.segments {
                        if seg_alias.eq_ignore_ascii_case(alias) {
                            for c in cols {
                                out.push((c.clone(), Expr::Col(idx)));
                                idx += 1;
                            }
                            found = true;
                        } else {
                            idx += cols.len();
                        }
                    }
                    if !found {
                        return Err(SqlError::new(format!("unknown alias {alias}")));
                    }
                }
                SelectItem::Expr(e, alias) => {
                    let name = match alias {
                        Some(a) => a.clone(),
                        None => dedupe_name(display_name(e, i), &out),
                    };
                    out.push((name, scope.translate(e)?));
                }
            }
        }
        Ok(out)
    }
}

/// A pending right side of a comma join.
struct PendingJoin {
    plan: Query,
    alias: String,
    cols: Vec<String>,
}

/// Name-resolution scope: the current plan plus per-source column
/// segments.
struct Scope {
    plan: Query,
    segments: Vec<(String, Vec<String>)>,
    binds: Vec<Datum>,
    bind_cursor: std::cell::Cell<usize>,
    /// LAG columns appended by Window nodes: (source expr, absolute index).
    lag_columns: Vec<(SqlExpr, usize)>,
    pending_join: Option<PendingJoin>,
}

impl Scope {
    fn next_bind(&self) -> Result<Datum> {
        let i = self.bind_cursor.get();
        let d = self.binds.get(i).cloned().ok_or_else(|| SqlError::new("missing bind value"))?;
        self.bind_cursor.set(i + 1);
        Ok(d)
    }

    fn col_index(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        let mut base = 0usize;
        for (alias, cols) in &self.segments {
            if qualifier.map(|q| q.eq_ignore_ascii_case(alias)).unwrap_or(true) {
                if let Some(i) = cols.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                    return Some(base + i);
                }
            }
            base += cols.len();
        }
        None
    }

    fn resolve_ident(&self, e: &SqlExpr) -> Result<Expr> {
        match e {
            SqlExpr::Ident(q, n) => self
                .col_index(q.as_deref(), n)
                .map(Expr::Col)
                .ok_or_else(|| SqlError::new(format!("unknown column {n}"))),
            _ => Err(SqlError::new("expected a column reference")),
        }
    }

    fn try_resolve(&self, e: &SqlExpr) -> Option<Expr> {
        self.translate(e).ok()
    }

    fn translate(&self, e: &SqlExpr) -> Result<Expr> {
        Ok(match e {
            SqlExpr::Ident(q, n) => self
                .col_index(q.as_deref(), n)
                .map(Expr::Col)
                .ok_or_else(|| SqlError::new(format!("unknown column {n}")))?,
            SqlExpr::NumLit(s) => Expr::Lit(Datum::Num(
                JsonNumber::from_literal(s).map_err(|e| SqlError::new(e.message))?,
            )),
            SqlExpr::StrLit(s) => Expr::Lit(Datum::Str(s.clone())),
            SqlExpr::Null => Expr::Lit(Datum::Null),
            SqlExpr::Bind => Expr::Lit(self.next_bind()?),
            SqlExpr::Binary(l, op, r) => {
                let (a, b) = (self.translate(l)?, self.translate(r)?);
                match op.as_str() {
                    "AND" => Expr::And(Box::new(a), Box::new(b)),
                    "OR" => Expr::Or(Box::new(a), Box::new(b)),
                    "=" => Expr::cmp(a, CmpOp::Eq, b),
                    "<>" => Expr::cmp(a, CmpOp::Ne, b),
                    "<" => Expr::cmp(a, CmpOp::Lt, b),
                    "<=" => Expr::cmp(a, CmpOp::Le, b),
                    ">" => Expr::cmp(a, CmpOp::Gt, b),
                    ">=" => Expr::cmp(a, CmpOp::Ge, b),
                    "+" => arith(a, fsdm_store::expr::ArithOp::Add, b),
                    "-" => arith(a, fsdm_store::expr::ArithOp::Sub, b),
                    "*" => arith(a, fsdm_store::expr::ArithOp::Mul, b),
                    "/" => arith(a, fsdm_store::expr::ArithOp::Div, b),
                    "||" => Expr::Fun(ScalarFun::Concat, vec![a, b]),
                    other => return Err(SqlError::new(format!("unknown operator {other}"))),
                }
            }
            SqlExpr::Not(x) => Expr::Not(Box::new(self.translate(x)?)),
            SqlExpr::IsNull(x, negated) => {
                let inner = Expr::IsNull(Box::new(self.translate(x)?));
                if *negated {
                    Expr::Not(Box::new(inner))
                } else {
                    inner
                }
            }
            SqlExpr::InList(x, list, negated) => {
                let vals = list
                    .iter()
                    .map(|v| match v {
                        SqlExpr::Bind => self.next_bind(),
                        other => literal_datum(other),
                    })
                    .collect::<Result<Vec<_>>>()?;
                let inner = Expr::InList(Box::new(self.translate(x)?), vals);
                if *negated {
                    Expr::Not(Box::new(inner))
                } else {
                    inner
                }
            }
            SqlExpr::Like(x, pat) => Expr::Like(Box::new(self.translate(x)?), pat.clone()),
            SqlExpr::Between(x, lo, hi) => {
                let xe = self.translate(x)?;
                Expr::And(
                    Box::new(Expr::cmp(xe.clone(), CmpOp::Ge, self.translate(lo)?)),
                    Box::new(Expr::cmp(xe, CmpOp::Le, self.translate(hi)?)),
                )
            }
            SqlExpr::Call(name, args) => {
                let fun = match name.as_str() {
                    "SUBSTR" => ScalarFun::Substr,
                    "INSTR" => ScalarFun::Instr,
                    "UPPER" => ScalarFun::Upper,
                    "LOWER" => ScalarFun::Lower,
                    "LENGTH" => ScalarFun::Length,
                    "CONCAT" => ScalarFun::Concat,
                    "ABS" => ScalarFun::Abs,
                    "NVL" => ScalarFun::Nvl,
                    other => {
                        return Err(SqlError::new(format!(
                            "unknown function {other} (aggregates belong in GROUP BY queries)"
                        )))
                    }
                };
                let xs = args.iter().map(|a| self.translate(a)).collect::<Result<Vec<_>>>()?;
                Expr::Fun(fun, xs)
            }
            SqlExpr::CountStar => return Err(SqlError::new("COUNT(*) outside an aggregate query")),
            SqlExpr::JsonValue(col, path, ret) => {
                let c = match self.resolve_ident(col)? {
                    Expr::Col(i) => i,
                    _ => unreachable!(),
                };
                let p = parse_path(path).map_err(|e| SqlError::new(e.message))?;
                let ty = match ret {
                    Some(SqlTypeName::Number) => SqlType::Number,
                    Some(SqlTypeName::Varchar2(n)) => SqlType::Varchar2(*n),
                    Some(SqlTypeName::Boolean) => SqlType::Boolean,
                    None => SqlType::Varchar2(4000),
                };
                Expr::json_value(c, p, ty)
            }
            SqlExpr::JsonExists(col, path) => {
                let c = match self.resolve_ident(col)? {
                    Expr::Col(i) => i,
                    _ => unreachable!(),
                };
                let p = parse_path(path).map_err(|e| SqlError::new(e.message))?;
                Expr::json_exists(c, p)
            }
            SqlExpr::Lag { .. } => {
                // resolved to the window column appended by the planner
                let (_, idx) = self
                    .lag_columns
                    .iter()
                    .find(|(src, _)| src == e)
                    .ok_or_else(|| SqlError::new("LAG outside SELECT list"))?;
                Expr::Col(*idx)
            }
            SqlExpr::DataGuideAgg(_) => {
                return Err(SqlError::new(
                    "JSON_DATAGUIDEAGG must be the only select item (optionally with GROUP BY)",
                ))
            }
        })
    }
}

fn arith(a: Expr, op: fsdm_store::expr::ArithOp, b: Expr) -> Expr {
    Expr::Arith(Box::new(a), op, Box::new(b))
}

fn literal_datum(e: &SqlExpr) -> Result<Datum> {
    Ok(match e {
        SqlExpr::NumLit(s) => {
            Datum::Num(JsonNumber::from_literal(s).map_err(|e| SqlError::new(e.message))?)
        }
        SqlExpr::StrLit(s) => Datum::Str(s.clone()),
        SqlExpr::Null => Datum::Null,
        SqlExpr::Binary(l, op, r) if op == "-" => {
            // negative literals parse as 0 - n
            let (a, b) = (literal_datum(l)?, literal_datum(r)?);
            match (a.as_num(), b.as_num()) {
                (Some(x), Some(y)) => Datum::from(x.to_f64() - y.to_f64()),
                _ => return Err(SqlError::new("expected a literal")),
            }
        }
        other => return Err(SqlError::new(format!("expected a literal, found {other:?}"))),
    })
}

fn scalar_coltype(t: SqlTypeName) -> ColType {
    match t {
        SqlTypeName::Number => ColType::Number,
        SqlTypeName::Varchar2(n) => ColType::Varchar2(n),
        SqlTypeName::Boolean => ColType::Boolean,
    }
}

fn build_jt_def(row_path: &str, cols: &[JtColumn]) -> Result<JsonTableDef> {
    let (columns, nested) = build_jt_cols(cols)?;
    Ok(JsonTableDef {
        row_path: parse_path(row_path).map_err(|e| SqlError::new(e.message))?,
        columns,
        nested,
    })
}

fn build_jt_cols(cols: &[JtColumn]) -> Result<(Vec<ColumnDef>, Vec<NestedDef>)> {
    let mut columns = Vec::new();
    let mut nested = Vec::new();
    for c in cols {
        match c {
            JtColumn::Value { name, ty, path } => {
                let sql_ty = match ty {
                    SqlTypeName::Number => SqlType::Number,
                    SqlTypeName::Varchar2(n) => SqlType::Varchar2(*n),
                    SqlTypeName::Boolean => SqlType::Boolean,
                };
                columns.push(ColumnDef::value(
                    name.clone(),
                    sql_ty,
                    parse_path(path).map_err(|e| SqlError::new(e.message))?,
                ));
            }
            JtColumn::Ordinality { name } => columns.push(ColumnDef::ordinality(name.clone())),
            JtColumn::Exists { name, path } => columns.push(ColumnDef::exists(
                name.clone(),
                parse_path(path).map_err(|e| SqlError::new(e.message))?,
            )),
            JtColumn::Nested { path, columns: inner } => {
                let (ic, inested) = build_jt_cols(inner)?;
                nested.push(NestedDef {
                    path: parse_path(path).map_err(|e| SqlError::new(e.message))?,
                    columns: ic,
                    nested: inested,
                });
            }
        }
    }
    Ok((columns, nested))
}

fn split_conjuncts<'a>(e: &'a SqlExpr, out: &mut Vec<&'a SqlExpr>) {
    if let SqlExpr::Binary(l, op, r) = e {
        if op == "AND" {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
            return;
        }
    }
    out.push(e);
}

fn join_resolve(join: &PendingJoin, e: &SqlExpr) -> Option<usize> {
    match e {
        SqlExpr::Ident(q, n) => {
            if let Some(q) = q {
                if !q.eq_ignore_ascii_case(&join.alias) {
                    return None;
                }
            }
            join.cols.iter().position(|c| c.eq_ignore_ascii_case(n))
        }
        _ => None,
    }
}

fn select_has_aggregate(sel: &Select) -> bool {
    sel.items.iter().any(|i| match i {
        SelectItem::Expr(e, _) => has_aggregate(e),
        _ => false,
    })
}

fn has_aggregate(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::CountStar => true,
        SqlExpr::Call(f, _) => agg_fun(f).is_some(),
        SqlExpr::Binary(l, _, r) => has_aggregate(l) || has_aggregate(r),
        SqlExpr::Not(x) | SqlExpr::IsNull(x, _) => has_aggregate(x),
        _ => false,
    }
}

fn agg_fun(name: &str) -> Option<AggFun> {
    Some(match name {
        "COUNT" => AggFun::Count,
        "SUM" => AggFun::Sum,
        "AVG" => AggFun::Avg,
        "MIN" => AggFun::Min,
        "MAX" => AggFun::Max,
        _ => return None,
    })
}

fn collect_aggs(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match e {
        SqlExpr::CountStar if !out.contains(e) => out.push(e.clone()),
        SqlExpr::Call(f, _) if agg_fun(f).is_some() && !out.contains(e) => out.push(e.clone()),
        SqlExpr::Binary(l, _, r) => {
            collect_aggs(l, out);
            collect_aggs(r, out);
        }
        SqlExpr::Not(x) | SqlExpr::IsNull(x, _) => collect_aggs(x, out),
        _ => {}
    }
}

/// Resolve an expression over the GroupBy output (keys then aggregates).
fn resolve_over_aggregate(
    e: &SqlExpr,
    group_exprs: &[&SqlExpr],
    agg_sources: &[SqlExpr],
) -> Result<Expr> {
    // exact aggregate match
    if let Some(i) = agg_sources.iter().position(|a| a == e) {
        return Ok(Expr::Col(group_exprs.len() + i));
    }
    // exact group-key match
    if let Some(i) = group_exprs.iter().position(|g| *g == e) {
        return Ok(Expr::Col(i));
    }
    match e {
        SqlExpr::Binary(l, op, r) => {
            let a = resolve_over_aggregate(l, group_exprs, agg_sources)?;
            let b = resolve_over_aggregate(r, group_exprs, agg_sources)?;
            Ok(match op.as_str() {
                "+" => arith(a, fsdm_store::expr::ArithOp::Add, b),
                "-" => arith(a, fsdm_store::expr::ArithOp::Sub, b),
                "*" => arith(a, fsdm_store::expr::ArithOp::Mul, b),
                "/" => arith(a, fsdm_store::expr::ArithOp::Div, b),
                other => return Err(SqlError::new(format!("operator {other} over aggregates"))),
            })
        }
        other => Err(SqlError::new(format!("{other:?} is neither a group key nor an aggregate"))),
    }
}

/// LAG occurrences: (value expr, offset, default, order items).
type LagParts<'a> = (&'a SqlExpr, usize, Option<&'a SqlExpr>, &'a [OrderItem]);

/// Find LAG calls, returning the whole call node plus its parts.
fn find_lags(e: &SqlExpr) -> Vec<(&SqlExpr, LagParts<'_>)> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a SqlExpr, out: &mut Vec<(&'a SqlExpr, LagParts<'a>)>) {
        match e {
            SqlExpr::Lag { expr, offset, default, order } => {
                out.push((e, (expr, *offset, default.as_deref(), order)));
            }
            SqlExpr::Binary(l, _, r) => {
                walk(l, out);
                walk(r, out);
            }
            SqlExpr::Not(x) | SqlExpr::IsNull(x, _) => walk(x, out),
            _ => {}
        }
    }
    walk(e, &mut out);
    out
}

fn ordinal_of(e: &SqlExpr) -> Option<usize> {
    match e {
        SqlExpr::NumLit(s) => s.parse::<usize>().ok().filter(|&n| n >= 1),
        _ => None,
    }
}

/// Default (unaliased) output names can repeat — `SELECT
/// JSON_VALUE(jdoc, '$.a'), JSON_VALUE(jdoc, '$.b')` would name both
/// columns `json_value`. Number later occurrences (`json_value_2`, …)
/// so every output column name is unique, the way engines number
/// unaliased expression columns. Explicit aliases are never rewritten:
/// a user-written duplicate is a PK004 finding, not a rename.
fn dedupe_name(name: String, taken: &[(String, Expr)]) -> String {
    if !taken.iter().any(|(n, _)| n == &name) {
        return name;
    }
    let mut k = 2usize;
    loop {
        let candidate = format!("{name}_{k}");
        if !taken.iter().any(|(n, _)| n == &candidate) {
            return candidate;
        }
        k += 1;
    }
}

fn display_name(e: &SqlExpr, position: usize) -> String {
    match e {
        SqlExpr::Ident(_, n) => n.clone(),
        SqlExpr::CountStar => "count(*)".to_string(),
        SqlExpr::Call(f, _) => f.to_lowercase(),
        SqlExpr::JsonValue(..) => "json_value".to_string(),
        SqlExpr::JsonExists(..) => "json_exists".to_string(),
        _ => format!("col{}", position + 1),
    }
}

fn dataguide_agg_target(sel: &Select) -> Option<SqlExpr> {
    match sel.items.as_slice() {
        [SelectItem::Expr(SqlExpr::DataGuideAgg(col), _)] => Some((**col).clone()),
        _ => None,
    }
}

fn empty_result(tag: &str) -> QueryResult {
    QueryResult { columns: vec![tag.to_string()], rows: vec![] }
}

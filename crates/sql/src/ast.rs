//! SQL abstract syntax.

/// A scalar expression in SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Possibly-qualified identifier (`col` or `alias.col`).
    Ident(Option<String>, String),
    /// Numeric literal.
    NumLit(String),
    /// String literal.
    StrLit(String),
    /// NULL literal.
    Null,
    /// `?` bind placeholder (resolved positionally at execution).
    Bind,
    /// Binary operation (`+ - * / = <> < <= > >= AND OR ||`).
    Binary(Box<SqlExpr>, String, Box<SqlExpr>),
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull(Box<SqlExpr>, bool),
    /// `expr [NOT] IN (v, …)`.
    InList(Box<SqlExpr>, Vec<SqlExpr>, bool),
    /// `expr LIKE 'pat'`.
    Like(Box<SqlExpr>, String),
    /// `expr BETWEEN lo AND hi`.
    Between(Box<SqlExpr>, Box<SqlExpr>, Box<SqlExpr>),
    /// Function call (scalar or aggregate; resolved by the planner).
    Call(String, Vec<SqlExpr>),
    /// `COUNT(*)`.
    CountStar,
    /// `JSON_VALUE(col, 'path' [RETURNING type])`.
    JsonValue(Box<SqlExpr>, String, Option<SqlTypeName>),
    /// `JSON_EXISTS(col, 'path')`.
    JsonExists(Box<SqlExpr>, String),
    /// `LAG(expr [, offset [, default]]) OVER (ORDER BY keys)`.
    Lag {
        /// Value expression.
        expr: Box<SqlExpr>,
        /// Row offset (default 1).
        offset: usize,
        /// Default expression.
        default: Option<Box<SqlExpr>>,
        /// OVER (ORDER BY …).
        order: Vec<OrderItem>,
    },
    /// `JSON_DATAGUIDEAGG(col)` — the §3.4 aggregate.
    DataGuideAgg(Box<SqlExpr>),
}

/// Parsed SQL type name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlTypeName {
    /// `NUMBER`.
    Number,
    /// `VARCHAR2(n)`.
    Varchar2(usize),
    /// `BOOLEAN`.
    Boolean,
}

/// One ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Key expression (or ordinal when it is a plain integer literal).
    pub expr: SqlExpr,
    /// Descending flag.
    pub desc: bool,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr(SqlExpr, Option<String>),
}

/// A JSON_TABLE column in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub enum JtColumn {
    /// `name type PATH 'p'`.
    Value {
        /// Column name.
        name: String,
        /// Declared type.
        ty: SqlTypeName,
        /// Column path.
        path: String,
    },
    /// `name FOR ORDINALITY`.
    Ordinality {
        /// Column name.
        name: String,
    },
    /// `name EXISTS PATH 'p'`.
    Exists {
        /// Column name.
        name: String,
        /// Path.
        path: String,
    },
    /// `NESTED PATH 'p' COLUMNS (…)`.
    Nested {
        /// Row path of the nested block.
        path: String,
        /// Columns of the block.
        columns: Vec<JtColumn>,
    },
}

/// A FROM-clause source.
#[derive(Debug, Clone, PartialEq)]
pub enum FromSource {
    /// Table or view reference with optional alias.
    Table {
        /// Object name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// `JSON_TABLE(col, 'rowpath' COLUMNS (…)) alias` — lateral over the
    /// preceding table.
    JsonTable {
        /// JSON column the function reads (possibly qualified).
        column: SqlExpr,
        /// Row path.
        row_path: String,
        /// Column definitions.
        columns: Vec<JtColumn>,
        /// Alias.
        alias: Option<String>,
    },
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM sources (a second table implies a comma join; a JSON_TABLE is
    /// a lateral).
    pub from: Vec<FromSource>,
    /// WHERE predicate.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY keys.
    pub group_by: Vec<SqlExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// Row limit (`FETCH FIRST n ROWS ONLY` / `LIMIT n`).
    pub limit: Option<usize>,
    /// `SAMPLE (pct)` on the (single) base table — Table 9's Q1.
    pub sample_pct: Option<f64>,
}

/// A column in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateColumn {
    /// Column name.
    pub name: String,
    /// Type: scalar, or JSON with a storage clause.
    pub ty: CreateColType,
}

/// CREATE TABLE column types.
#[derive(Debug, Clone, PartialEq)]
pub enum CreateColType {
    /// Scalar column.
    Scalar(SqlTypeName),
    /// JSON column: storage (`TEXT` default, `BSON`, `OSON`) and whether
    /// the IS JSON check / DataGuide are enabled.
    Json {
        /// Physical storage.
        storage: String,
        /// `CHECK (col IS JSON)` present.
        is_json: bool,
        /// `WITH DATAGUIDE` present.
        dataguide: bool,
    },
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT query.
    Select(Select),
    /// `CREATE TABLE name (cols…)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<CreateColumn>,
    },
    /// `INSERT INTO name VALUES (…)` (multiple tuples allowed).
    Insert {
        /// Table name.
        name: String,
        /// Value tuples.
        rows: Vec<Vec<SqlExpr>>,
    },
    /// `CREATE VIEW name AS SELECT …`.
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        select: Select,
    },
}

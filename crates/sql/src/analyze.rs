//! Statement-level semantic analysis: the prepare-time hook of
//! `fsdm-analyze`.
//!
//! The path-level checks live in the `fsdm-analyze` crate; this module
//! contributes what only the SQL layer knows — *which* table and JSON
//! column each embedded path probes. A parsed `SELECT` is walked for
//! every `JSON_VALUE` / `JSON_EXISTS` call (select list, WHERE, GROUP
//! BY, ORDER BY, LAG arguments) and every `JSON_TABLE` in the FROM
//! clause (row path plus each column sub-path composed onto it, through
//! `NESTED PATH` blocks), each path is resolved to its base table, and
//! [`fsdm_analyze::analyze_path`] runs against that table's DataGuide.
//!
//! Findings surface in three places: [`Session::analyze`] (the lint
//! binary's entry point), [`Session::explain`] (diagnostics + the plan
//! before and after optimization), and the [`QueryProfile`] returned by
//! [`Session::profile`].

use std::collections::BTreeSet;

use fsdm_analyze::{analyze_path, normalized_field_path, AnalyzerConfig, Diagnostic};
use fsdm_sqljson::{parse_path, Datum};
use fsdm_store::{ColType, Database, Expr, JsonStorage, Table};

use crate::ast::{FromSource, JtColumn, Select, SelectItem, SqlExpr, Statement};
use crate::parser::parse_sql;
use crate::planner::Session;
use crate::{Result, SqlError};

impl Session {
    /// Prepare-time semantic lint: parse `sql` and run the `fsdm-analyze`
    /// checks on every embedded SQL/JSON path, each against the DataGuide
    /// of the table it probes. Statements without embedded paths, and
    /// paths over guide-less columns, produce no findings. Path text that
    /// fails to parse is an error here too — it could never execute.
    pub fn analyze(&self, sql: &str) -> Result<Vec<Diagnostic>> {
        match parse_sql(sql)? {
            Statement::Select(sel) => analyze_select(&self.db, &sel),
            Statement::CreateView { select, .. } => analyze_select(&self.db, &select),
            _ => Ok(Vec::new()),
        }
    }

    /// `EXPLAIN`: the analyzer's findings plus the logical plan before
    /// and after optimization, so the §6.3 pushdown and the (opt-in)
    /// dead-path pruning rewrite are both visible.
    pub fn explain(&self, sql: &str, binds: &[Datum]) -> Result<String> {
        let diags = self.analyze(sql)?;
        let mut out = String::new();
        if diags.is_empty() {
            out.push_str("diagnostics: none\n");
        } else {
            out.push_str("diagnostics:\n");
            for line in fsdm_analyze::render_text(&diags).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        match self.plan(sql, binds) {
            Ok(plan) => {
                push_tree(&mut out, "plan:", &plan.render());
                let optimized = fsdm_store::optimizer::optimize(&self.db, plan.clone());
                // annotated with the executor's pipeline selection:
                // `mode=columnar` on operators that run vectorized kernels
                push_tree(&mut out, "optimized:", &self.db.explain_modes(&optimized));
                // the planck verdict: inferred output schema plus any
                // PK findings (type errors, unstable keys, rewrite drift)
                let inf = self.typecheck_plan(&plan);
                out.push_str("schema: ");
                out.push_str(&inf.schema.render());
                out.push('\n');
                if inf.diagnostics.is_empty() {
                    out.push_str("typecheck: ok\n");
                } else {
                    out.push_str("typecheck:\n");
                    for line in fsdm_analyze::render_text(&inf.diagnostics).lines() {
                        out.push_str("  ");
                        out.push_str(line);
                        out.push('\n');
                    }
                }
            }
            // DDL/DML and the session-driven JSON_DATAGUIDEAGG never
            // produce a volcano plan; the diagnostics alone are the output
            Err(_) => out.push_str("plan: (statement does not plan to the query algebra)\n"),
        }
        Ok(out)
    }
}

fn push_tree(out: &mut String, header: &str, tree: &str) {
    out.push_str(header);
    out.push('\n');
    for line in tree.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
}

/// Analyze one parsed SELECT against the database's tables.
pub fn analyze_select(db: &Database, sel: &Select) -> Result<Vec<Diagnostic>> {
    fsdm_obs::counter!(fsdm_obs::catalog::ANALYZE_STMTS_ANALYZED).inc();
    // alias → table map from the FROM clause (views have no DataGuide of
    // their own and are skipped; their base paths were linted when the
    // view was created)
    let mut tables: Vec<(String, String)> = Vec::new();
    for src in &sel.from {
        if let FromSource::Table { name, alias } = src {
            if db.table(name).is_some() {
                tables.push((alias.clone().unwrap_or_else(|| name.clone()), name.clone()));
            }
        }
    }
    // collect (json column reference, path text) sites
    let mut sites: Vec<(&SqlExpr, String)> = Vec::new();
    for src in &sel.from {
        if let FromSource::JsonTable { column, row_path, columns, .. } = src {
            let mut paths = vec![row_path.clone()];
            collect_jt_paths(row_path, columns, &mut paths);
            for p in paths {
                sites.push((column, p));
            }
        }
    }
    let mut expr_sites: Vec<(&SqlExpr, &str)> = Vec::new();
    for item in &sel.items {
        if let SelectItem::Expr(e, _) = item {
            walk_expr(e, &mut expr_sites);
        }
    }
    if let Some(w) = &sel.where_clause {
        walk_expr(w, &mut expr_sites);
    }
    for g in &sel.group_by {
        walk_expr(g, &mut expr_sites);
    }
    for o in &sel.order_by {
        walk_expr(&o.expr, &mut expr_sites);
    }
    sites.extend(expr_sites.into_iter().map(|(c, p)| (c, p.to_string())));

    let mut out = Vec::new();
    for (colref, path_text) in sites {
        let Some((table, col)) = resolve_json_col(db, &tables, colref) else { continue };
        let path = parse_path(&path_text)
            .map_err(|e| SqlError::new(format!("bad JSON path '{path_text}': {e}")))?;
        out.extend(analyze_path(&table.dataguide, &path, &config_for(table, col)));
    }
    Ok(out)
}

/// Resolve a (possibly qualified) identifier to a base table's JSON
/// column, scanning FROM sources in order like the planner's scope does.
fn resolve_json_col<'a>(
    db: &'a Database,
    tables: &[(String, String)],
    e: &SqlExpr,
) -> Option<(&'a Table, usize)> {
    let SqlExpr::Ident(q, name) = e else { return None };
    for (alias, tname) in tables {
        if let Some(q) = q {
            if !q.eq_ignore_ascii_case(alias) {
                continue;
            }
        }
        let t = db.table(tname)?;
        if let Some(i) = t.schema.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name)) {
            if matches!(t.schema.columns[i].ty, ColType::Json(_)) {
                return Some((t, i));
            }
        }
    }
    None
}

/// Build the analyzer configuration the table implies: TEXT storage
/// enables the streamability check, and virtual columns over this JSON
/// column suppress FA007 for their (already materialized) paths.
fn config_for(table: &Table, col: usize) -> AnalyzerConfig {
    let text_storage = matches!(table.schema.columns[col].ty, ColType::Json(JsonStorage::Text));
    let mut materialized_vc_paths = BTreeSet::new();
    for vc in &table.virtual_columns {
        if let Expr::JsonValue { col: c, path, .. } = &vc.expr {
            if *c == col {
                if let Some(n) = normalized_field_path(path.as_ref()) {
                    materialized_vc_paths.insert(n);
                }
            }
        }
    }
    AnalyzerConfig { text_storage, materialized_vc_paths, ..Default::default() }
}

/// Every `JSON_VALUE` / `JSON_EXISTS` site inside an expression tree, as
/// (column reference, path text) pairs.
fn walk_expr<'a>(e: &'a SqlExpr, out: &mut Vec<(&'a SqlExpr, &'a str)>) {
    match e {
        SqlExpr::JsonValue(col, path, _) => out.push((col, path)),
        SqlExpr::JsonExists(col, path) => out.push((col, path)),
        SqlExpr::Binary(l, _, r) => {
            walk_expr(l, out);
            walk_expr(r, out);
        }
        SqlExpr::Not(x) | SqlExpr::IsNull(x, _) | SqlExpr::Like(x, _) => walk_expr(x, out),
        SqlExpr::DataGuideAgg(x) => walk_expr(x, out),
        SqlExpr::InList(x, list, _) => {
            walk_expr(x, out);
            for v in list {
                walk_expr(v, out);
            }
        }
        SqlExpr::Between(x, lo, hi) => {
            walk_expr(x, out);
            walk_expr(lo, out);
            walk_expr(hi, out);
        }
        SqlExpr::Call(_, args) => {
            for a in args {
                walk_expr(a, out);
            }
        }
        SqlExpr::Lag { expr, default, order, .. } => {
            walk_expr(expr, out);
            if let Some(d) = default {
                walk_expr(d, out);
            }
            for o in order {
                walk_expr(&o.expr, out);
            }
        }
        SqlExpr::Ident(..)
        | SqlExpr::NumLit(_)
        | SqlExpr::StrLit(_)
        | SqlExpr::Null
        | SqlExpr::Bind
        | SqlExpr::CountStar => {}
    }
}

/// Compose the full document path each JSON_TABLE column reads:
/// `$.items[*]` + `$.partno` → `$.items[*].partno`. A mode keyword on
/// the sub-path is dropped (the row path's mode governs evaluation).
fn compose(row: &str, sub: &str) -> Option<String> {
    let sub = sub.trim();
    let sub = sub
        .strip_prefix("strict")
        .or_else(|| sub.strip_prefix("lax"))
        .map(str::trim_start)
        .unwrap_or(sub);
    let rest = sub.strip_prefix('$')?;
    Some(format!("{}{rest}", row.trim_end()))
}

fn collect_jt_paths(prefix: &str, cols: &[JtColumn], out: &mut Vec<String>) {
    for c in cols {
        match c {
            JtColumn::Value { path, .. } | JtColumn::Exists { path, .. } => {
                if let Some(p) = compose(prefix, path) {
                    out.push(p);
                }
            }
            JtColumn::Ordinality { .. } => {}
            JtColumn::Nested { path, columns } => {
                if let Some(p) = compose(prefix, path) {
                    out.push(p.clone());
                    collect_jt_paths(&p, columns, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_analyze::{Code, Severity};

    /// A session with a guided OSON table and a guided TEXT table, both
    /// populated with the same small purchase-order corpus.
    fn session() -> Session {
        let mut s = Session::new();
        s.execute("create table po (did number, jdoc json store as oson with dataguide)").unwrap();
        s.execute("create table pt (did number, jdoc json store as text with dataguide)").unwrap();
        for t in ["po", "pt"] {
            for i in 0..4 {
                let doc = format!(
                    r#"{{"reference":"R-{i}","total":{i},"items":[{{"partno":"P{i}","quantity":{i}}}]}}"#
                );
                s.execute_with(
                    &format!("insert into {t} values (?, ?)"),
                    &[Datum::from(i as i64), Datum::Str(doc)],
                )
                .unwrap();
            }
        }
        s
    }

    fn codes(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|x| x.code.id()).collect()
    }

    #[test]
    fn unknown_path_in_where_clause_is_flagged() {
        let s = session();
        let d = s.analyze("select did from po where json_exists(jdoc, '$.persno')").unwrap();
        assert!(codes(&d).contains(&Code::UnknownPath.id()), "{d:?}");
        // the same query over a known path is clean of errors
        let d = s.analyze("select did from po where json_exists(jdoc, '$.reference')").unwrap();
        assert!(d.iter().all(|x| x.severity < Severity::Error), "{d:?}");
    }

    #[test]
    fn json_value_sites_resolve_through_aliases() {
        let s = session();
        let d = s.analyze("select json_value(a.jdoc, '$.nosuch') from po a").unwrap();
        assert_eq!(codes(&d), vec![Code::UnknownPath.id()], "{d:?}");
        // a wrong alias resolves nowhere: no guide, no findings
        let d = s.analyze("select json_value(b.jdoc, '$.nosuch') from po a").unwrap();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn json_table_columns_compose_onto_the_row_path() {
        let s = session();
        let sql = "select jt.partno from po, json_table(jdoc, '$.items[*]' columns \
                   (partno varchar2(8) path '$.partno', bogus number path '$.bogus')) jt";
        let d = s.analyze(sql).unwrap();
        // `$.items[*].bogus` is unknown; `$.items[*].partno` is fine
        assert!(codes(&d).contains(&Code::UnknownPath.id()), "{d:?}");
        assert!(d.iter().any(|x| x.path.contains("$.items[*].bogus")), "{d:?}");
        assert!(
            !d.iter().any(|x| x.code == Code::UnknownPath && x.path.contains("partno")),
            "{d:?}"
        );
    }

    #[test]
    fn text_storage_drives_the_streamability_check() {
        let s = session();
        let sql = "select did from pt where json_exists(jdoc, '$.items[*]?(@.quantity > 1)')";
        let d = s.analyze(sql).unwrap();
        assert!(codes(&d).contains(&Code::UnstreamablePath.id()), "{d:?}");
        // same query against the OSON table: no FA006
        let sql = "select did from po where json_exists(jdoc, '$.items[*]?(@.quantity > 1)')";
        let d = s.analyze(sql).unwrap();
        assert!(!codes(&d).contains(&Code::UnstreamablePath.id()), "{d:?}");
    }

    #[test]
    fn ddl_and_guideless_tables_are_silent() {
        let mut s = Session::new();
        assert!(s.analyze("create table t (a number)").unwrap().is_empty());
        s.execute("create table t (a number, j json store as oson)").unwrap();
        s.execute_with("insert into t values (1, ?)", &[Datum::Str("{\"x\":1}".into())]).unwrap();
        // no DataGuide on the column: nothing provable, nothing reported
        let d = s.analyze("select a from t where json_exists(j, '$.zz')").unwrap();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn explain_shows_diagnostics_and_both_plans() {
        let mut s = session();
        s.db.set_dead_path_pruning(true);
        let sql = "select did from po where json_exists(jdoc, '$.persno')";
        let text = s.explain(sql, &[]).unwrap();
        let banner = format!("{} error [{}]", Code::UnknownPath.id(), Code::UnknownPath.slug());
        assert!(text.contains(&banner), "{text}");
        assert!(text.contains("plan:"), "{text}");
        assert!(text.contains("Filter pred=JSON_EXISTS"), "{text}");
        assert!(text.contains("optimized:"), "{text}");
        assert!(text.contains("filter=false"), "pruned scan shown: {text}");
        // pruning on/off must not change results
        let pruned = s.execute(sql).unwrap();
        s.db.set_dead_path_pruning(false);
        assert_eq!(pruned, s.execute(sql).unwrap());
        assert!(pruned.rows.is_empty());
    }

    #[test]
    fn profile_attaches_diagnostics() {
        let mut s = session();
        let (_, profile) =
            s.profile("select did from po where json_exists(jdoc, '$.persno')").unwrap();
        let p = profile.expect("SELECT profiles");
        assert!(codes(&p.diagnostics).contains(&Code::UnknownPath.id()), "{:?}", p.diagnostics);
        assert!(p.render().contains(Code::UnknownPath.id()), "{}", p.render());
        // a clean statement carries no findings
        let (_, profile) = s.profile("select did from po").unwrap();
        assert!(profile.unwrap().diagnostics.is_empty());
    }

    #[test]
    fn vc_materialization_suppresses_fa007() {
        let mut s = session();
        let d = s.analyze("select json_value(jdoc, '$.reference') from po").unwrap();
        assert!(codes(&d).contains(&Code::VcCandidate.id()), "{d:?}");
        // materialize the path as a virtual column, same query goes quiet
        let t = s.db.table_mut("po").unwrap();
        let path = parse_path("$.reference").unwrap();
        t.virtual_columns.push(fsdm_store::table::VirtualColumn {
            name: "ref_vc".into(),
            expr: Expr::json_value(1, path, fsdm_sqljson::SqlType::Varchar2(16)),
        });
        let d = s.analyze("select json_value(jdoc, '$.reference') from po").unwrap();
        assert!(!codes(&d).contains(&Code::VcCandidate.id()), "{d:?}");
    }
}

//! `fsdm-sql`: a SQL front end for the FSDM engine.
//!
//! The paper's thesis is that SQL stays the declarative inter-document
//! query language while SQL/JSON paths handle intra-document navigation
//! (§1). This crate implements the SQL subset exercised by the paper's
//! workloads — Table 13's OLAP queries and the NOBENCH query set — over
//! the `fsdm-store` engine:
//!
//! * `SELECT` with expressions, `WHERE`, `GROUP BY`, `ORDER BY` (including
//!   ordinals), `FETCH FIRST n ROWS ONLY` / `LIMIT`;
//! * scalar functions `SUBSTR`, `INSTR`, `UPPER`, `LOWER`, `LENGTH`,
//!   `NVL`, `ABS`; aggregates `COUNT/SUM/AVG/MIN/MAX`; `LAG(…) OVER
//!   (ORDER BY …)`;
//! * the SQL/JSON operators `JSON_VALUE(col, 'path' [RETURNING type])`
//!   and `JSON_EXISTS(col, 'path')`;
//! * `FROM table, JSON_TABLE(col, 'path' COLUMNS …) jt` laterals with
//!   `NESTED PATH`;
//! * two-table joins (`FROM a, b WHERE a.x = b.y`), views, `CREATE
//!   TABLE`, `INSERT INTO … VALUES`, and `SELECT JSON_DATAGUIDEAGG(col)`.

pub mod analyze;
pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod typecheck;

pub use ast::Statement;
pub use lexer::{tokenize, Token};
pub use parser::parse_sql;
pub use planner::Session;

pub use fsdm_analyze::{Diagnostic, Severity};
pub use fsdm_store::{OpProfile, QueryProfile};

use std::fmt;

/// SQL front-end error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Description of the failure.
    pub message: String,
}

impl SqlError {
    /// Build an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        SqlError { message: message.into() }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL error: {}", self.message)
    }
}

impl std::error::Error for SqlError {}

impl From<fsdm_store::StoreError> for SqlError {
    fn from(e: fsdm_store::StoreError) -> Self {
        SqlError::new(e.message)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SqlError>;

//! SQL tokenizer.

use crate::{Result, SqlError};

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (uppercased for matching; original preserved).
    Ident(String),
    /// Quoted identifier (`"Name"`), case preserved.
    QuotedIdent(String),
    /// Numeric literal text.
    Number(String),
    /// String literal (single-quoted).
    Str(String),
    /// Punctuation / operator.
    Sym(&'static str),
}

impl Token {
    /// Keyword test (case-insensitive on plain identifiers).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let b = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => return Err(SqlError::new("unterminated string literal")),
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // consume one UTF-8 scalar
                            let rest = &sql[i..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'"' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                if i == b.len() {
                    return Err(SqlError::new("unterminated quoted identifier"));
                }
                out.push(Token::QuotedIdent(sql[start..i].to_string()));
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && matches!(b.get(i - 1), Some(b'e') | Some(b'E'))))
                {
                    i += 1;
                }
                out.push(Token::Number(sql[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c == b'$' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || b[i] == b'$'
                        || b[i] == b'#')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            _ => {
                // peek two bytes only when both are ASCII (multibyte input
                // must not be sliced mid-character)
                let two: &str = if i + 1 < b.len() && b[i].is_ascii() && b[i + 1].is_ascii() {
                    std::str::from_utf8(&b[i..i + 2]).unwrap_or("")
                } else {
                    ""
                };
                let sym: &'static str = match two {
                    "<=" => "<=",
                    ">=" => ">=",
                    "<>" => "<>",
                    "!=" => "<>",
                    "||" => "||",
                    _ => match c {
                        b'(' => "(",
                        b')' => ")",
                        b',' => ",",
                        b'.' => ".",
                        b'*' => "*",
                        b'+' => "+",
                        b'-' => "-",
                        b'/' => "/",
                        b'=' => "=",
                        b'<' => "<",
                        b'>' => ">",
                        b';' => ";",
                        b'?' => "?",
                        _ => {
                            return Err(SqlError::new(format!(
                                "unexpected character {:?}",
                                c as char
                            )))
                        }
                    },
                };
                i += sym.len();
                out.push(Token::Sym(sym));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_query() {
        let toks = tokenize(
            "SELECT costcenter, count(*) FROM po_mv WHERE x >= 1.5 -- trailing\nGROUP BY costcenter",
        )
        .unwrap();
        assert!(toks.iter().any(|t| t.is_kw("select")));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Number("1.5".to_string())));
        assert!(!toks.iter().any(|t| t.is_kw("trailing")));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".to_string())]);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("\"JCOL$id\"").unwrap();
        assert_eq!(toks, vec![Token::QuotedIdent("JCOL$id".to_string())]);
    }

    #[test]
    fn comments_stripped() {
        let toks = tokenize("a /* b */ c").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT 'open").is_err());
        assert!(tokenize("a ~ b").is_err());
    }
}

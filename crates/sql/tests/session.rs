//! End-to-end SQL session tests: the paper's query shapes running through
//! parse → plan → execute.

use fsdm_sql::Session;
use fsdm_sqljson::Datum;

fn seeded_session() -> Session {
    let mut s = Session::new();
    s.execute("create table po (did number, jdoc json store as oson with dataguide)").unwrap();
    let docs = [
        (
            1,
            r#"{"reference":"ABC-1","costcenter":"A1","requestor":"alice",
               "items":[{"itemno":1,"partno":"P100","description":"phone","quantity":2,"unitprice":100},
                        {"itemno":2,"partno":"P200","description":"ipad","quantity":3,"unitprice":350.86}]}"#,
        ),
        (
            2,
            r#"{"reference":"ABC-2","costcenter":"B2","requestor":"bob",
               "items":[{"itemno":1,"partno":"P100","description":"phone","quantity":1,"unitprice":100}]}"#,
        ),
        (
            3,
            r#"{"reference":"XYZ-3","costcenter":"A1","requestor":"alice",
               "items":[{"itemno":1,"partno":"P300","description":"tv","quantity":5,"unitprice":500}]}"#,
        ),
    ];
    for (id, doc) in docs {
        let sql = format!("insert into po values ({id}, '{}')", doc.replace('\n', " "));
        s.execute(&sql).unwrap();
    }
    s
}

fn dmdv(s: &mut Session) {
    s.execute(
        "create view po_item_dmdv as select p.did, jt.* from po p, \
         json_table(p.jdoc, '$' columns ( \
            reference varchar2(16) path '$.reference', \
            costcenter varchar2(8) path '$.costcenter', \
            requestor varchar2(16) path '$.requestor', \
            nested path '$.items[*]' columns ( \
               itemno number path '$.itemno', \
               partno varchar2(8) path '$.partno', \
               description varchar2(16) path '$.description', \
               quantity number path '$.quantity', \
               unitprice number path '$.unitprice'))) jt",
    )
    .unwrap();
}

#[test]
fn create_insert_select_roundtrip() {
    let mut s = seeded_session();
    let r = s.execute("select did from po where did >= 2 order by did desc").unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Datum::from(3i64));
}

#[test]
fn json_value_predicates() {
    let mut s = seeded_session();
    let r = s
        .execute("select did from po where json_value(jdoc, '$.costcenter') = 'A1' order by did")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r2 = s
        .execute(
            "select count(*) from po where json_exists(jdoc, '$.items[*]?(@.unitprice > 400)')",
        )
        .unwrap();
    assert_eq!(r2.rows[0][0], Datum::from(1i64));
}

#[test]
fn q1_count_with_bind() {
    let mut s = seeded_session();
    let r = s
        .execute_with(
            "select count(*) from po p where json_value(p.jdoc, '$.reference') = ?",
            &[Datum::from("ABC-1")],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::from(1i64));
}

#[test]
fn q2_group_by_costcenter_order_by_ordinal() {
    let mut s = seeded_session();
    let r = s
        .execute(
            "select json_value(jdoc, '$.costcenter') cc, count(*) from po \
             group by json_value(jdoc, '$.costcenter') order by 1",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Datum::from("A1"));
    assert_eq!(r.rows[0][1], Datum::from(2i64));
}

#[test]
fn dmdv_view_and_q3() {
    let mut s = seeded_session();
    dmdv(&mut s);
    let r = s.execute("select * from po_item_dmdv").unwrap();
    assert_eq!(r.rows.len(), 4, "2 + 1 + 1 items");
    // Q3: group over the view with a filter
    let q3 = s
        .execute(
            "select costcenter, count(*) from po_item_dmdv where partno = 'P100' \
             group by costcenter order by 1",
        )
        .unwrap();
    assert_eq!(q3.rows.len(), 2);
    assert_eq!(q3.rows[0][1], Datum::from(1i64));
}

#[test]
fn q7_sum_of_products() {
    let mut s = seeded_session();
    dmdv(&mut s);
    let r = s
        .execute(
            "select sum(quantity * unitprice) from po_item_dmdv group by costcenter order by 1",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // A1: 2*100 + 3*350.86 + 5*500 = 3752.58 ; B2: 100
    let mut sums: Vec<f64> = r.rows.iter().map(|x| x[0].as_num().unwrap().to_f64()).collect();
    sums.sort_by(f64::total_cmp);
    assert!((sums[0] - 100.0).abs() < 1e-9);
    assert!((sums[1] - 3752.58).abs() < 1e-9);
}

#[test]
fn q6_lag_window() {
    let mut s = seeded_session();
    dmdv(&mut s);
    let r = s
        .execute(
            "select partno, reference, quantity, \
             quantity - LAG(quantity, 1, quantity) over (order by substr(reference, instr(reference, '-') + 1)) as difference \
             from po_item_dmdv where partno = 'P100' \
             order by substr(reference, instr(reference, '-') + 1) desc",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // order within window: ref suffixes "1" then "2"; differences: 0, -1;
    // final order desc → row for ABC-2 first with difference -1
    assert_eq!(r.cell(0, "reference"), Some(&Datum::from("ABC-2")));
    assert_eq!(r.cell(0, "difference"), Some(&Datum::from(-1i64)));
    assert_eq!(r.cell(1, "difference"), Some(&Datum::from(0i64)));
}

#[test]
fn q5_in_list() {
    let mut s = seeded_session();
    dmdv(&mut s);
    let r = s
        .execute(
            "select reference, itemno, partno, description from po_item_dmdv \
             where partno in ('P200', 'P300')",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn comma_join_master_detail() {
    let mut s = Session::new();
    s.execute("create table m (id number, cc varchar2(4))").unwrap();
    s.execute("create table d (mid number, price number)").unwrap();
    s.execute("insert into m values (1, 'A'), (2, 'B')").unwrap();
    s.execute("insert into d values (1, 10), (1, 20), (2, 30), (9, 99)").unwrap();
    let r = s
        .execute(
            "select m.cc, d.price from m, d where m.id = d.mid and d.price > 15 order by d.price",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Datum::from("A"), Datum::from(20i64)]);
    assert_eq!(r.rows[1], vec![Datum::from("B"), Datum::from(30i64)]);
}

#[test]
fn dataguide_agg_statement() {
    let mut s = seeded_session();
    let r = s.execute("select json_dataguideagg(jdoc) from po").unwrap();
    assert_eq!(r.rows.len(), 1);
    let guide_text = r.rows[0][0].to_text();
    let guide = fsdm_json::parse(&guide_text).unwrap();
    let rows = guide.as_array().unwrap();
    assert!(rows.iter().any(|g| g.get("o:path").unwrap().as_str() == Some("$.items.partno")));
    // sampled variant still produces a guide
    let r2 = s.execute("select json_dataguideagg(jdoc) from po sample (50)").unwrap();
    assert_eq!(r2.rows.len(), 1);
}

#[test]
fn insert_validation_via_sql() {
    let mut s = Session::new();
    s.execute("create table t (j json)").unwrap();
    assert!(s.execute("insert into t values ('{bad json')").is_err());
    assert!(s.execute("insert into t values ('{\"ok\":1}')").is_ok());
}

#[test]
fn select_wildcards_and_aliases() {
    let mut s = seeded_session();
    let r = s.execute("select p.* from po p where p.did = 1").unwrap();
    assert_eq!(r.columns, vec!["did", "jdoc"]);
    assert_eq!(r.rows.len(), 1);
    // JSON columns render as text in results
    assert!(
        r.rows[0][1].to_text().contains("purchase") || r.rows[0][1].to_text().contains("reference")
    );
}

#[test]
fn limit_and_fetch_first() {
    let mut s = seeded_session();
    let r = s.execute("select did from po order by did limit 2").unwrap();
    assert_eq!(r.rows.len(), 2);
    let r2 = s.execute("select did from po order by did fetch first 1 rows only").unwrap();
    assert_eq!(r2.rows.len(), 1);
}

#[test]
fn errors_are_reported() {
    let mut s = seeded_session();
    assert!(s.execute("select nope from po").is_err());
    assert!(s.execute("select * from missing_table").is_err());
    assert!(s.execute("select did from po where json_value(did, '$.x') = 1").is_err());
}

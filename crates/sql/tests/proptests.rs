//! Property tests for the SQL front end: lexer/parser totality and
//! round-trip execution invariants.

use fsdm_sql::{parse_sql, tokenize, Session};
use fsdm_sqljson::Datum;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics on arbitrary input.
    #[test]
    fn lexer_total(input in "\\PC{0,80}") {
        let _ = tokenize(&input);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(input in "\\PC{0,80}") {
        let _ = parse_sql(&input);
    }

    /// The parser never panics on SQL-shaped input either.
    #[test]
    fn parser_total_on_sqlish(
        cols in prop::collection::vec("[a-z]{1,8}", 1..4),
        table in "[a-z]{1,8}",
        n in 0i64..100,
    ) {
        let sql = format!(
            "select {} from {} where {} > {} order by 1 limit 5",
            cols.join(", "),
            table,
            cols[0],
            n
        );
        let _ = parse_sql(&sql);
    }

    /// Inserted numeric rows come back exactly through SELECT.
    #[test]
    fn insert_select_roundtrip(values in prop::collection::vec(-10_000i64..10_000, 1..20)) {
        let mut s = Session::new();
        s.execute("create table t (v number)").unwrap();
        for v in &values {
            s.execute(&format!("insert into t values ({v})")).unwrap();
        }
        let r = s.execute("select v from t order by v").unwrap();
        let mut expected = values.clone();
        expected.sort_unstable();
        let got: Vec<i64> = r
            .rows
            .iter()
            .map(|row| row[0].as_num().unwrap().to_i64().unwrap())
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// COUNT(*) with a predicate equals the reference count, including
    /// through bind parameters.
    #[test]
    fn count_with_binds(values in prop::collection::vec(-100i64..100, 0..40), t in -100i64..100) {
        let mut s = Session::new();
        s.execute("create table t (v number)").unwrap();
        for v in &values {
            s.execute_with("insert into t values (?)", &[Datum::from(*v)]).unwrap();
        }
        let r = s
            .execute_with("select count(*) from t where v <= ?", &[Datum::from(t)])
            .unwrap();
        let expected = values.iter().filter(|&&v| v <= t).count() as i64;
        prop_assert_eq!(r.rows[0][0].clone(), Datum::from(expected));
    }
}

//! `fsdm-planck`: plan-level static analysis for the FSDM stack.
//!
//! Where `fsdm-analyze` lints SQL/JSON **path expressions** against a
//! table's DataGuide (FA001–FA007), planck checks the **query plan**
//! itself: a type/schema inference pass over the [`Query`] operator tree
//! and a translation validator for every [`optimize`] rewrite. The two
//! passes share one diagnostic registry and one rendering pipeline, so a
//! planck finding looks and machine-reads exactly like an analyze one.
//!
//! The diagnostic codes, stable across releases:
//!
//! | code  | meaning |
//! |-------|---------|
//! | PK001 | unknown table/view, or column position outside the input schema |
//! | PK002 | type mismatch in a predicate, aggregate argument, or join key |
//! | PK003 | comparison against an operand that is always SQL NULL |
//! | PK004 | wrong function/aggregate arity, or duplicate output column |
//! | PK005 | Sort/window ORDER BY key that does not pin an order |
//! | PK006 | optimizer rewrite diverged (schema/determinism/safety/idempotence) |
//!
//! Entry points:
//!
//! * [`infer`] — output schema (names, [`ScalarType`]s, nullability) of a
//!   plan, plus PK001–PK005 findings.
//! * [`check_plan`] — [`infer`] plus the translation validator run
//!   against the optimizer's actual output (PK006 findings).
//! * [`rewrite_violations`] — the raw validator verdict for a
//!   before/after plan pair.
//! * `Session::typecheck(sql)` in `fsdm-sql` — the SQL-text front end,
//!   and the `fsdm-planck` binary in `fsdm-bench` — the CI gate over the
//!   paper's NoBench + OLAP workloads.

pub use fsdm_analyze::{render_json, render_text, Code, Diagnostic, Severity};
pub use fsdm_store::typecheck::{
    check_plan, infer, op_safety, plan_deterministic, plan_safety, rewrite_violations, ColInfo,
    Inference, ParallelSafety, PlanSchema, ScalarType,
};
pub use fsdm_store::{Database, Query};

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_store::schema::{ColumnSpec, ConstraintMode, TableSchema};
    use fsdm_store::table::Table;
    use fsdm_store::{ColType, Expr, JsonStorage};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(Table::new(TableSchema::new(
            "po",
            vec![
                ColumnSpec::new("did", ColType::Number),
                ColumnSpec::json("jdoc", JsonStorage::Text, ConstraintMode::IsJson),
            ],
        )));
        db
    }

    #[test]
    fn planck_findings_render_through_the_shared_pipeline() {
        let inf = infer(&db(), &Query::scan("missing"));
        assert_eq!(inf.errors(), 1);
        assert_eq!(inf.diagnostics[0].code, Code::UnknownColumn);
        let text = render_text(&inf.diagnostics);
        assert!(text.contains(Code::UnknownColumn.id()), "{text}");
        let json = render_json(&inf.diagnostics);
        let code_field = format!("\"code\": \"{}\"", Code::UnknownColumn.id());
        assert!(json.contains(&code_field), "{json}");
        assert!(json.contains("unknown-column"), "{json}");
    }

    #[test]
    fn clean_plan_has_schema_and_no_findings() {
        let inf = check_plan(
            &db(),
            &Query::scan("po")
                .filter(Expr::json_exists(1, fsdm_sqljson::parse_path("$.price").unwrap())),
        );
        assert!(inf.diagnostics.is_empty(), "{:?}", inf.diagnostics);
        assert_eq!(inf.schema.render(), "did:float?, jdoc:json?");
    }
}

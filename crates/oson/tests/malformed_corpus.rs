//! Corpus of malformed OSON buffers: every entry must make [`decode`]
//! return `Err` — and, above all, never panic. The cases are either
//! hand-built from the wire layout or start from a real encoding and
//! corrupt one structural invariant at a time, so each of the deep
//! verifier's checks is exercised by at least one buffer.
//!
//! Layout under test (narrow widths, the form every small document
//! takes): `"OSON" ver flags nfields:u16 | root:u16 names_len:u16
//! tree_len:u16 values_len:u16 | dict entries (hash:u32 off:u16 len:u8)
//! | names | tree | values`.

use fsdm_json::parse;
use fsdm_oson::{decode, encode, ErrorKind};

fn enc(text: &str) -> Vec<u8> {
    encode(&parse(text).expect("corpus JSON parses")).expect("corpus JSON encodes")
}

/// Segment boundaries of a narrow-width encoding.
struct Layout {
    nfields: usize,
    root: usize,
    names: usize,
    tree: usize,
    values: usize,
}

fn layout(b: &[u8]) -> Layout {
    assert_eq!(&b[0..4], b"OSON");
    assert_eq!(b[5], 0, "corpus documents must use the narrow layout");
    let rd = |p: usize| usize::from(u16::from_le_bytes([b[p], b[p + 1]]));
    let nfields = rd(6);
    let names = 16 + 7 * nfields;
    let tree = names + rd(10);
    let values = tree + rd(12);
    assert_eq!(values + rd(14), b.len(), "segments tile the buffer");
    Layout { nfields, root: rd(8), names, tree, values }
}

fn assert_rejected(name: &str, bytes: &[u8]) {
    match decode(bytes) {
        Err(_) => {}
        Ok(v) => panic!("{name}: corrupted buffer decoded to {v}"),
    }
}

fn assert_kind(name: &str, bytes: &[u8], kind: ErrorKind) {
    match decode(bytes) {
        Err(e) => assert_eq!(e.kind, kind, "{name}: wrong kind: {e}"),
        Ok(v) => panic!("{name}: corrupted buffer decoded to {v}"),
    }
}

// --- header / geometry ---------------------------------------------------

#[test]
fn empty_buffer() {
    assert_kind("empty", &[], ErrorKind::BadMagic);
}

#[test]
fn bad_magic() {
    let mut b = enc(r#"{"a":1}"#);
    b[0] = b'N';
    assert_kind("bad magic", &b, ErrorKind::BadMagic);
}

#[test]
fn unsupported_version() {
    let mut b = enc(r#"{"a":1}"#);
    b[4] = 0x7E;
    assert_kind("version", &b, ErrorKind::UnsupportedVersion);
}

#[test]
fn truncated_header() {
    let b = enc(r#"{"a":1}"#);
    for cut in 4..16 {
        assert_rejected("truncated header", &b[..cut]);
    }
}

#[test]
fn truncated_everywhere() {
    // every proper prefix must be rejected, whatever segment the cut
    // lands in
    let b = enc(r#"{"a":[1,"two",3.5],"b":{"c":null,"d":true}}"#);
    for cut in 0..b.len() {
        assert_rejected("prefix", &b[..cut]);
    }
}

#[test]
fn trailing_garbage() {
    let mut b = enc(r#"{"a":1}"#);
    b.push(0);
    assert_kind("trailing byte", &b, ErrorKind::Corrupt);
}

#[test]
fn nfields_lies() {
    let mut b = enc(r#"{"a":1,"b":2}"#);
    b[6] = b[6].wrapping_add(1); // one more dictionary entry than exists
    assert_rejected("nfields+1", &b);
}

#[test]
fn root_out_of_tree() {
    let mut b = enc(r#"{"a":1}"#);
    let l = layout(&b);
    let tree_len = (l.values - l.tree) as u16;
    b[8..10].copy_from_slice(&tree_len.to_le_bytes());
    assert_kind("root oob", &b, ErrorKind::Corrupt);
}

// --- dictionary ----------------------------------------------------------

#[test]
fn dictionary_not_sorted() {
    let mut b = enc(r#"{"alpha":1,"beta":2}"#);
    let l = layout(&b);
    assert_eq!(l.nfields, 2);
    // swap the two 7-byte entries wholesale: names stay resolvable but
    // the (hash, name) order inverts
    let (e0, e1) = (16, 23);
    for i in 0..7 {
        b.swap(e0 + i, e1 + i);
    }
    // the field-id array in the tree still refers to the old order, but
    // the dictionary check runs first
    assert_kind("unsorted dictionary", &b, ErrorKind::Corrupt);
}

#[test]
fn dictionary_hash_mismatch() {
    let mut b = enc(r#"{"a":1}"#);
    b[16] = b[16].wrapping_add(1); // low byte of the stored hash
    assert_kind("wrong hash", &b, ErrorKind::Corrupt);
}

#[test]
fn dictionary_name_span_escapes() {
    let mut b = enc(r#"{"a":1}"#);
    b[22] = 0xFF; // name_len byte of entry 0
    assert_rejected("name span", &b);
}

#[test]
fn dictionary_name_not_utf8() {
    let mut b = enc(r#"{"k":1}"#);
    let l = layout(&b);
    b[l.names] = 0xFF; // "k" becomes an invalid UTF-8 byte
    assert_kind("non-UTF-8 name", &b, ErrorKind::Corrupt);
}

// --- tree nodes ----------------------------------------------------------

#[test]
fn non_canonical_header_byte() {
    let mut b = enc(r#"{"a":1}"#);
    let l = layout(&b);
    b[l.tree + l.root] |= 0xF8; // same tag, stray high bits
    assert_kind("header high bits", &b, ErrorKind::Corrupt);
}

#[test]
fn container_count_varint_runs_off() {
    let mut b = enc(r#"[1,2,3]"#);
    let l = layout(&b);
    // the root array's child count becomes a huge / unterminated varint
    b[l.tree + l.root + 1] = 0xFF;
    assert_rejected("bad count varint", &b);
}

#[test]
fn child_offset_cycle() {
    let mut b = enc(r#"[1,2,3]"#);
    let l = layout(&b);
    // point the first child at the root itself: a one-hop cycle, caught
    // by the strictly-backwards rule
    let root = u16::try_from(l.root).unwrap();
    let offs = l.tree + l.root + 2; // tag + 1-byte count
    b[offs..offs + 2].copy_from_slice(&root.to_le_bytes());
    assert_kind("cycle", &b, ErrorKind::Corrupt);
}

#[test]
fn object_field_id_out_of_range() {
    let mut b = enc(r#"{"a":1}"#);
    let l = layout(&b);
    b[l.tree + l.root + 2] = 5; // only dictionary entry 0 exists
    assert_kind("field id oob", &b, ErrorKind::Corrupt);
}

#[test]
fn object_field_ids_not_sorted() {
    let mut b = enc(r#"{"a":1,"b":2}"#);
    let l = layout(&b);
    let ids = l.tree + l.root + 2; // tag + 1-byte count, then two u8 ids
    assert_eq!((b[ids], b[ids + 1]), (0, 1), "expected ids [0, 1]");
    b.swap(ids, ids + 1);
    assert_kind("unsorted ids", &b, ErrorKind::Corrupt);
}

// --- leaves --------------------------------------------------------------

#[test]
fn string_value_offset_out_of_segment() {
    let mut b = enc(r#"{"s":"hello"}"#);
    let l = layout(&b);
    // the Str leaf is encoded before its parent: tree-relative offset 0
    assert_eq!(b[l.tree] & 0x07, 2, "expected a Str leaf at tree offset 0");
    let vlen = u16::try_from(b.len() - l.values).unwrap();
    b[l.tree + 1..l.tree + 3].copy_from_slice(&vlen.to_le_bytes());
    assert_kind("voff oob", &b, ErrorKind::Corrupt);
}

#[test]
fn string_length_escapes_buffer() {
    let mut b = enc(r#"{"s":"hello"}"#);
    let l = layout(&b);
    b[l.values] = 0x7F; // claims 127 body bytes; only 5 exist
    assert_kind("string body", &b, ErrorKind::Truncated);
}

#[test]
fn string_body_not_utf8() {
    let mut b = enc(r#"{"s":"hello"}"#);
    let l = layout(&b);
    b[l.values + 1] = 0xFF;
    assert_kind("non-UTF-8 body", &b, ErrorKind::Corrupt);
}

#[test]
fn overlapping_string_extents() {
    // first value: 40 '!' bytes (0x21 — small enough to read as a
    // plausible inner length); second leaf is re-pointed inside it
    let mut b = enc(&format!(r#"{{"a":"{}","b":"yy"}}"#, "!".repeat(40)));
    let l = layout(&b);
    assert_eq!(b[l.tree] & 0x07, 2);
    assert_eq!(b[l.tree + 3] & 0x07, 2, "second Str leaf at tree offset 3");
    // b's extent becomes (values+1 …), strictly inside a's (values+0 …)
    b[l.tree + 4..l.tree + 6].copy_from_slice(&1u16.to_le_bytes());
    assert_kind("overlap", &b, ErrorKind::Corrupt);
}

#[test]
fn invalid_oracle_number() {
    let mut b = enc(r#"{"n":1}"#);
    let l = layout(&b);
    assert_eq!(b[l.tree] & 0x07, 3, "expected a NumOra leaf at tree offset 0");
    let len = usize::from(b[l.tree + 1]);
    for i in 0..len {
        b[l.tree + 2 + i] = 0xFF;
    }
    assert_rejected("bad NUMBER", &b);
}

#[test]
fn number_length_escapes_tree() {
    let mut b = enc(r#"{"n":1}"#);
    let l = layout(&b);
    b[l.tree + 1] = 0xFF;
    assert_kind("number length", &b, ErrorKind::Truncated);
}

// --- hand-built buffers --------------------------------------------------

/// Assemble a narrow-width document with no dictionary and no values.
fn hand_built(root: u16, tree: &[u8]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(b"OSON");
    b.push(1); // version
    b.push(0); // flags: narrow
    b.extend_from_slice(&0u16.to_le_bytes()); // nfields
    b.extend_from_slice(&root.to_le_bytes());
    b.extend_from_slice(&0u16.to_le_bytes()); // names_len
    b.extend_from_slice(&u16::try_from(tree.len()).unwrap().to_le_bytes());
    b.extend_from_slice(&0u16.to_le_bytes()); // values_len
    b.extend_from_slice(tree);
    b
}

#[test]
fn hand_built_control_decodes() {
    // positive control: {} written from the spec, proving the corpus'
    // hand-assembly matches the real layout
    let b = hand_built(0, &[0x00, 0x00]); // Object tag, zero children
    assert_eq!(decode(&b).expect("control decodes"), parse("{}").unwrap());
}

#[test]
fn nesting_beyond_max_depth() {
    // 600 nested single-element arrays — deeper than MAX_DEPTH (512).
    // Impossible to produce via `encode` (the parser and encoder share
    // the bound), so it is exactly the kind of buffer only a hostile
    // peer would present.
    let mut tree = vec![0x01, 0x00]; // innermost: empty array
    let mut prev: u16 = 0;
    for _ in 0..600 {
        let node = u16::try_from(tree.len()).unwrap();
        tree.push(0x01); // Array tag
        tree.push(0x01); // one child
        tree.extend_from_slice(&prev.to_le_bytes());
        prev = node;
    }
    let b = hand_built(prev, &tree);
    assert_kind("depth", &b, ErrorKind::Limit);
}

#[test]
fn shared_subtree_rejected() {
    // an array whose two child offsets both point at the same Null leaf:
    // backwards-only, so no cycle — but the instance is a DAG, not a
    // tree, and the verifier must refuse it
    let tree = [0x07, 0x01, 0x02, 0x00, 0x00, 0x00, 0x00];
    // ^Null ^Array ^count=2, children: 0, 0
    let b = hand_built(1, &tree[..]);
    assert_kind("shared child", &b, ErrorKind::Corrupt);
}

#[test]
fn dag_bomb_terminates() {
    // ~500 chained array nodes, each referencing the previous node twice:
    // every child offset is strictly backwards and nesting stays under
    // MAX_DEPTH, yet naive DFS would make ~2^500 visits. The visited-set
    // bound must reject this in O(tree bytes), not hang.
    let mut tree = vec![0x07]; // innermost: Null leaf at offset 0
    let mut prev: u16 = 0;
    for _ in 0..500 {
        let node = u16::try_from(tree.len()).unwrap();
        tree.push(0x01); // Array tag
        tree.push(0x02); // two children...
        tree.extend_from_slice(&prev.to_le_bytes()); // ...both the
        tree.extend_from_slice(&prev.to_le_bytes()); // previous node
        prev = node;
    }
    let b = hand_built(prev, &tree);
    assert_kind("dag bomb", &b, ErrorKind::Corrupt);
}

#[test]
fn double_leaf_truncated() {
    // a NumDouble leaf whose 8-byte body is cut off by the tree boundary
    let b = hand_built(0, &[0x04, 0x00, 0x00, 0x00, 0x00]);
    assert_kind("short double", &b, ErrorKind::Truncated);
}

#[test]
fn object_with_field_id_but_no_dictionary() {
    // an object claiming one member while nfields == 0
    let b = hand_built(0, &[0x00, 0x01, 0x00, 0x00, 0x00]);
    assert_rejected("id without dictionary", &b);
}

//! Property-based tests for the OSON codec: round-tripping against the
//! value model, navigation agreement with the in-memory DOM, and partial
//! update safety.

use fsdm_json::{field_hash, JsonDom, JsonNumber, JsonValue, Object, ValueDom};
use fsdm_oson::{decode, encode, update_scalar, OsonDoc, SegmentStats, UpdateOutcome};
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<i64>().prop_map(|v| JsonValue::Number(JsonNumber::Int(v))),
        (-100_000i64..100_000, 0u32..1000).prop_map(|(i, f)| JsonValue::Number(
            JsonNumber::from_literal(&format!("{i}.{f:03}")).unwrap()
        )),
        "[a-zA-Z0-9 _\u{e9}]{0,24}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Array),
            prop::collection::vec(("[a-z][a-z0-9_]{0,10}", inner), 0..6).prop_map(|pairs| {
                let mut o = Object::new();
                let mut seen = std::collections::HashSet::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        o.push(k, v);
                    }
                }
                JsonValue::Object(o)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode preserves the JSON data model (object member order
    /// is insignificant, per the data model).
    #[test]
    fn oson_roundtrip(v in arb_json()) {
        let bytes = encode(&v).unwrap();
        prop_assert!(decode(&bytes).unwrap().eq_unordered(&v));
    }

    /// Segment statistics always sum to the buffer size.
    #[test]
    fn segment_stats_exhaustive(v in arb_json()) {
        let bytes = encode(&v).unwrap();
        let s = SegmentStats::of(&bytes).unwrap();
        prop_assert_eq!(s.total(), bytes.len());
    }

    /// Every field reachable in the in-memory DOM resolves identically in
    /// the serialized OSON DOM (name → same scalar / same container sizes).
    #[test]
    fn navigation_agrees_with_value_dom(v in arb_json()) {
        let bytes = encode(&v).unwrap();
        let oson = OsonDoc::new(&bytes).unwrap();
        let dom = ValueDom::new(&v);
        check_agree(&dom, dom.root(), &oson, oson.root())?;
    }

    /// Every encoder-produced buffer passes the deep structural verifier.
    #[test]
    fn encoded_documents_validate(v in arb_json()) {
        let bytes = encode(&v).unwrap();
        let doc = OsonDoc::new(&bytes).unwrap();
        prop_assert!(doc.validate().is_ok());
    }

    /// Flipping a single byte of a valid buffer yields `Err` or a value —
    /// never a panic. No `catch_unwind`: the decode path is total.
    #[test]
    fn decoder_total_on_single_byte_flip(
        v in arb_json(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = encode(&v).unwrap();
        let n = bytes.len();
        bytes[pos % n] ^= 1 << bit;
        let _ = decode(&bytes);
    }

    /// The decoder stays total under heavier damage: multiple flips and a
    /// truncation.
    #[test]
    fn decoder_total_on_bitflips(
        v in arb_json(),
        flips in prop::collection::vec((0usize..4096, 0u8..8), 1..8),
        cut in 0usize..4096,
    ) {
        let mut bytes = encode(&v).unwrap();
        for (pos, bit) in flips {
            let n = bytes.len();
            bytes[pos % n] ^= 1 << bit;
        }
        bytes.truncate(cut % (bytes.len() + 1));
        let _ = decode(&bytes);
    }

    /// Partial number updates preserve every other leaf.
    #[test]
    // non-negative single-base-100-digit ints encode in ≤ 2 OraNum bytes,
    // matching the original slot of `1`; negatives carry a terminator byte
    // and would legitimately need a re-encode
    fn partial_update_isolation(seed_val in 0i64..100) {
        let v = fsdm_json::parse(
            r#"{"a":1,"b":{"c":2,"d":"txt"},"e":[3,4,5]}"#
        ).unwrap();
        let mut bytes = encode(&v).unwrap();
        let doc = OsonDoc::new(&bytes).unwrap();
        let a = doc.get_field(doc.root(), "a", field_hash("a")).unwrap();
        let new = JsonValue::from(seed_val % 100); // short int always fits
        let out = update_scalar(&mut bytes, a, &new).unwrap();
        prop_assert_eq!(out, UpdateOutcome::Updated);
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back.get("a").unwrap().as_i64(), new.as_i64());
        prop_assert_eq!(back.get("b").unwrap().get("d").unwrap().as_str(), Some("txt"));
        prop_assert_eq!(back.get("e").unwrap().at(2).unwrap().as_i64(), Some(5));
    }
}

fn check_agree(
    dom: &ValueDom<'_>,
    dn: fsdm_json::NodeRef,
    oson: &OsonDoc<'_>,
    on: fsdm_json::NodeRef,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(dom.kind(dn), oson.kind(on));
    match dom.kind(dn) {
        fsdm_json::NodeKind::Scalar => {
            prop_assert_eq!(dom.scalar(dn).to_value(), oson.scalar(on).to_value());
        }
        fsdm_json::NodeKind::Array => {
            prop_assert_eq!(dom.array_len(dn), oson.array_len(on));
            for i in 0..dom.array_len(dn) {
                check_agree(dom, dom.array_element(dn, i), oson, oson.array_element(on, i))?;
            }
        }
        fsdm_json::NodeKind::Object => {
            prop_assert_eq!(dom.object_len(dn), oson.object_len(on));
            for i in 0..dom.object_len(dn) {
                let (name, child) = dom.object_entry(dn, i);
                let h = field_hash(name);
                let ochild = oson.get_field(on, name, h);
                prop_assert!(ochild.is_some(), "field {} missing in OSON", name);
                check_agree(dom, child, oson, ochild.unwrap())?;
            }
        }
    }
    Ok(())
}

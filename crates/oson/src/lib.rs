//! `fsdm-oson`: the OSON binary JSON format (§4 of the paper).
//!
//! OSON is a **self-contained**, compact binary encoding of a JSON
//! document designed for rapid SQL/JSON path navigation without a central
//! schema. An encoded instance has three segments (§4.2):
//!
//! 1. **Field-id-name dictionary segment** — every distinct field name is
//!    stored once; names are hashed, the (hash, name) entries are sorted
//!    by hash, and the *ordinal position* of an entry is that name's field
//!    id. Repeated names in nested arrays of objects cost nothing beyond
//!    their id references.
//! 2. **Tree-node navigation segment** — the structural skeleton. Nodes
//!    are addressed by byte offset. An object node stores its children's
//!    field ids in **sorted order** next to their offsets, so child lookup
//!    is a binary search over small integers. An array node stores child
//!    offsets positionally, so the N-th element is one indexed read.
//! 3. **Leaf-scalar-value segment** — concatenated scalar bytes. Numbers
//!    use the Oracle NUMBER encoding ([`fsdm_json::OraNum`]) by default so
//!    values cross into SQL without conversion (design criterion 3), with
//!    an IEEE-double alternative.
//!
//! [`OsonDoc`] implements [`fsdm_json::JsonDom`] *directly over the
//! serialized bytes* — the "DOM read operations against the serialized
//! instance" of §5.1 — including instance field-id resolution and the
//! dictionary fingerprint that powers the cross-document look-back cache
//! of §4.2.1. Partial updates of existing leaf scalar values are supported
//! in place (§4.2.3's stated update trade-off).

pub mod doc;
pub mod encoder;
pub mod set;
pub mod stats;
pub mod update;
mod wire;

pub use doc::OsonDoc;
pub use encoder::{encode, encode_with, EncoderOptions, NumberMode};
pub use set::{OsonSet, OsonSetBuilder, SetDictionary, SetDoc};
pub use stats::SegmentStats;
pub use update::{update_scalar, UpdateOutcome};

use std::fmt;

/// What went wrong while decoding or validating an OSON buffer —
/// the typed half of [`OsonError`], so callers can distinguish "not
/// OSON at all" from "OSON that has been damaged".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The buffer ends before the structure it promises.
    Truncated,
    /// The magic bytes do not spell `OSON`.
    BadMagic,
    /// The version byte names a format this crate does not speak.
    UnsupportedVersion,
    /// A structural invariant of the three-segment layout is violated.
    Corrupt,
    /// A documented format limit was exceeded (dictionary size, nesting
    /// depth, name length).
    Limit,
    /// The API was used against its contract (e.g. a partial update
    /// aimed at a container node).
    Usage,
}

impl ErrorKind {
    fn label(self) -> &'static str {
        match self {
            ErrorKind::Truncated => "truncated",
            ErrorKind::BadMagic => "bad magic",
            ErrorKind::UnsupportedVersion => "unsupported version",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Limit => "limit",
            ErrorKind::Usage => "usage",
        }
    }
}

/// Errors produced by the OSON codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsonError {
    /// Machine-readable classification.
    pub kind: ErrorKind,
    /// Description of the failure.
    pub message: String,
}

impl OsonError {
    pub(crate) fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        OsonError { kind, message: message.into() }
    }

    pub(crate) fn corrupt(message: impl Into<String>) -> Self {
        OsonError::new(ErrorKind::Corrupt, message)
    }

    pub(crate) fn truncated(message: impl Into<String>) -> Self {
        OsonError::new(ErrorKind::Truncated, message)
    }

    pub(crate) fn limit(message: impl Into<String>) -> Self {
        OsonError::new(ErrorKind::Limit, message)
    }

    pub(crate) fn usage(message: impl Into<String>) -> Self {
        OsonError::new(ErrorKind::Usage, message)
    }
}

impl fmt::Display for OsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OSON error ({}): {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for OsonError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, OsonError>;

/// Decode an OSON buffer back into the JSON value model.
///
/// This is the **untrusted-input** entry point: the buffer is run through
/// the deep structural verifier ([`OsonDoc::validate`]) before any tree
/// walk, so corrupted or truncated input returns `Err` — it can never
/// panic or hand garbage to the materializer. Trusted in-process buffers
/// (e.g. rows the store itself encoded) can skip the verifier by
/// constructing an [`OsonDoc`] directly.
pub fn decode(bytes: &[u8]) -> Result<fsdm_json::JsonValue> {
    use fsdm_json::JsonDom;
    let mut decode_span = fsdm_obs::trace::span(fsdm_obs::catalog::SPAN_OSON_DECODE);
    decode_span.record_args(|| format!("bytes={}", bytes.len()));
    let doc = OsonDoc::new(bytes)?;
    doc.validate()?;
    fsdm_obs::counter!(fsdm_obs::catalog::OSON_DECODE_DOCS).inc();
    Ok(doc.materialize(doc.root()))
}

//! Partial in-place update of leaf scalar values (§4.2.3).
//!
//! OSON maximizes path-query efficiency, so "partial update support is
//! limited to changes of existing leaf scalar values": a new value may be
//! written over an existing string or number leaf *when its encoding fits
//! in the existing slot*; otherwise the caller must re-encode the whole
//! document. Booleans and nulls are encoded in the node header itself and
//! cannot be patched without altering tree-segment layout, so they also
//! report [`UpdateOutcome::NeedsReencode`].
//!
//! Like the reader, the updater is panic-free: every buffer position it
//! writes through is re-derived with checked arithmetic and `get_mut`,
//! so a caller handing it a corrupted buffer gets an `Err`, not a crash.

use fsdm_json::{JsonDom, JsonValue, NodeRef};

use crate::doc::OsonDoc;
use crate::wire::{self, NodeTag};
use crate::{OsonError, Result};

/// Result of attempting a partial update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The new value was written in place.
    Updated,
    /// The new value does not fit the existing slot (or the node kind does
    /// not support patching); the document must be re-encoded.
    NeedsReencode,
}

/// Overwrite the scalar leaf at `node` with `new_value`, in place, when the
/// encodings are compatible and the new bytes fit. `buf` must contain a
/// valid OSON document (as produced by [`crate::encode`]).
pub fn update_scalar(
    buf: &mut [u8],
    node: NodeRef,
    new_value: &JsonValue,
) -> Result<UpdateOutcome> {
    let out = update_scalar_inner(buf, node, new_value)?;
    // §4.3 piggyback-vs-rewrite accounting
    match out {
        UpdateOutcome::Updated => fsdm_obs::counter!(fsdm_obs::catalog::OSON_UPDATE_IN_PLACE).inc(),
        UpdateOutcome::NeedsReencode => {
            fsdm_obs::counter!(fsdm_obs::catalog::OSON_UPDATE_REENCODE).inc()
        }
    }
    Ok(out)
}

fn corrupt_slot() -> OsonError {
    OsonError::corrupt("scalar slot out of buffer bounds")
}

fn update_scalar_inner(
    buf: &mut [u8],
    node: NodeRef,
    new_value: &JsonValue,
) -> Result<UpdateOutcome> {
    let doc = OsonDoc::new(buf)?;
    if doc.kind(node) != fsdm_json::NodeKind::Scalar {
        return Err(OsonError::usage("update target is not a scalar leaf"));
    }
    let header = wire::read_u8(buf, doc.tree_abs(node)).ok_or_else(corrupt_slot)?;
    let tag = NodeTag::from_byte(header);
    let plan = match (tag, new_value) {
        (NodeTag::Str, JsonValue::String(s)) => {
            let (body, old_len) = doc.scalar_value_span(node).ok_or_else(corrupt_slot)?;
            if s.len() > old_len {
                return Ok(UpdateOutcome::NeedsReencode);
            }
            // shorter strings are allowed only if the varint length prefix
            // width is unchanged (one byte covers < 128)
            if varint_width(s.len()) != varint_width(old_len) {
                return Ok(UpdateOutcome::NeedsReencode);
            }
            Plan::Str { body, new: s.as_bytes().to_vec(), old_len }
        }
        (NodeTag::NumOra, JsonValue::Number(n)) => {
            let d = match n.to_oranum() {
                Some(d) => d,
                None => return Ok(UpdateOutcome::NeedsReencode),
            };
            let (body, old_len) = doc.scalar_value_span(node).ok_or_else(corrupt_slot)?;
            if d.as_bytes().len() > old_len {
                return Ok(UpdateOutcome::NeedsReencode);
            }
            Plan::Num { body, new: d.as_bytes().to_vec(), old_len }
        }
        (NodeTag::NumDouble, JsonValue::Number(n)) => {
            let (body, _) = doc.scalar_value_span(node).ok_or_else(corrupt_slot)?;
            Plan::Dbl { body, new: n.to_f64() }
        }
        _ => return Ok(UpdateOutcome::NeedsReencode),
    };
    match plan {
        Plan::Str { body, new, old_len } => {
            // rewrite the one-byte-compatible varint length, body, and pad
            // the remainder with spaces (kept inside the old slot)
            let len_pos = body.checked_sub(varint_width(old_len)).ok_or_else(corrupt_slot)?;
            debug_assert_eq!(varint_width(new.len()), varint_width(old_len));
            write_varint_exact(buf.get_mut(len_pos..body).ok_or_else(corrupt_slot)?, new.len());
            let end = body.checked_add(new.len()).ok_or_else(corrupt_slot)?;
            buf.get_mut(body..end).ok_or_else(corrupt_slot)?.copy_from_slice(&new);
            let slot_end = body.checked_add(old_len).ok_or_else(corrupt_slot)?;
            for b in buf.get_mut(end..slot_end).ok_or_else(corrupt_slot)? {
                *b = b' ';
            }
        }
        Plan::Num { body, new, old_len } => {
            let len_pos = body.checked_sub(1).ok_or_else(corrupt_slot)?;
            let len_byte = u8::try_from(new.len())
                .map_err(|_| OsonError::usage("number encoding longer than 255 bytes"))?;
            *buf.get_mut(len_pos).ok_or_else(corrupt_slot)? = len_byte;
            let end = body.checked_add(new.len()).ok_or_else(corrupt_slot)?;
            buf.get_mut(body..end).ok_or_else(corrupt_slot)?.copy_from_slice(&new);
            // slack bytes after a shorter number are dead; zero them
            let slot_end = body.checked_add(old_len).ok_or_else(corrupt_slot)?;
            for b in buf.get_mut(end..slot_end).ok_or_else(corrupt_slot)? {
                *b = 0;
            }
        }
        Plan::Dbl { body, new } => {
            let end = body.checked_add(8).ok_or_else(corrupt_slot)?;
            buf.get_mut(body..end).ok_or_else(corrupt_slot)?.copy_from_slice(&new.to_le_bytes());
        }
    }
    Ok(UpdateOutcome::Updated)
}

enum Plan {
    Str { body: usize, new: Vec<u8>, old_len: usize },
    Num { body: usize, new: Vec<u8>, old_len: usize },
    Dbl { body: usize, new: f64 },
}

fn varint_width(len: usize) -> usize {
    let mut v = wire::as_u64(len);
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Write `v` as a varint that fills `slot` exactly (the caller has already
/// checked the widths match).
fn write_varint_exact(slot: &mut [u8], mut v: usize) {
    let n = slot.len();
    for (i, out) in slot.iter_mut().enumerate() {
        let b = u8::try_from(v & 0x7F).unwrap_or(0x7F);
        v >>= 7;
        *out = if i + 1 == n { b } else { b | 0x80 };
    }
    debug_assert_eq!(v, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use fsdm_json::{field_hash, parse, JsonDom};

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn field_node(
        bytes: &[u8],
        name: &str,
    ) -> std::result::Result<NodeRef, Box<dyn std::error::Error>> {
        let d = OsonDoc::new(bytes)?;
        d.get_field(d.root(), name, field_hash(name))
            .ok_or_else(|| format!("field {name} missing").into())
    }

    #[test]
    fn update_number_in_place() -> TestResult {
        let v = parse(r#"{"price":350.86,"name":"ipad"}"#)?;
        let mut bytes = encode(&v)?;
        let node = field_node(&bytes, "price")?;
        let out = update_scalar(&mut bytes, node, &parse("99.5")?)?;
        assert_eq!(out, UpdateOutcome::Updated);
        let back = crate::decode(&bytes)?;
        assert_eq!(back.get("price").and_then(|p| p.as_f64()), Some(99.5));
        assert_eq!(back.get("name").and_then(|n| n.as_str()), Some("ipad"));
        Ok(())
    }

    #[test]
    fn update_string_same_or_shorter() -> TestResult {
        let v = parse(r#"{"s":"hello"}"#)?;
        let mut bytes = encode(&v)?;
        let node = field_node(&bytes, "s")?;
        assert_eq!(update_scalar(&mut bytes, node, &parse("\"world\"")?)?, UpdateOutcome::Updated);
        assert_eq!(crate::decode(&bytes)?.get("s").and_then(|s| s.as_str()), Some("world"));
        let node = field_node(&bytes, "s")?;
        assert_eq!(update_scalar(&mut bytes, node, &parse("\"hi\"")?)?, UpdateOutcome::Updated);
        assert_eq!(crate::decode(&bytes)?.get("s").and_then(|s| s.as_str()), Some("hi"));
        Ok(())
    }

    #[test]
    fn updated_buffer_still_validates() -> TestResult {
        let v = parse(r#"{"s":"hello","n":123.25}"#)?;
        let mut bytes = encode(&v)?;
        let s = field_node(&bytes, "s")?;
        update_scalar(&mut bytes, s, &parse("\"abc\"")?)?;
        let n = field_node(&bytes, "n")?;
        update_scalar(&mut bytes, n, &parse("7")?)?;
        OsonDoc::new(&bytes)?.validate()?;
        Ok(())
    }

    #[test]
    fn longer_string_needs_reencode() -> TestResult {
        let v = parse(r#"{"s":"ab"}"#)?;
        let mut bytes = encode(&v)?;
        let before = bytes.clone();
        let node = field_node(&bytes, "s")?;
        assert_eq!(
            update_scalar(&mut bytes, node, &parse("\"abcdef\"")?)?,
            UpdateOutcome::NeedsReencode
        );
        assert_eq!(bytes, before, "buffer untouched on refusal");
        Ok(())
    }

    #[test]
    fn type_change_needs_reencode() -> TestResult {
        let v = parse(r#"{"s":"ab","n":5}"#)?;
        let mut bytes = encode(&v)?;
        let s = field_node(&bytes, "s")?;
        assert_eq!(update_scalar(&mut bytes, s, &parse("42")?)?, UpdateOutcome::NeedsReencode);
        let n = field_node(&bytes, "n")?;
        assert_eq!(update_scalar(&mut bytes, n, &parse("true")?)?, UpdateOutcome::NeedsReencode);
        Ok(())
    }

    #[test]
    fn container_target_is_an_error() -> TestResult {
        let v = parse(r#"{"a":[1]}"#)?;
        let mut bytes = encode(&v)?;
        let a = field_node(&bytes, "a")?;
        assert!(update_scalar(&mut bytes, a, &parse("1")?).is_err());
        Ok(())
    }

    #[test]
    fn shorter_number_zero_pads() -> TestResult {
        let v = parse(r#"{"n":123456789.25}"#)?;
        let mut bytes = encode(&v)?;
        let n = field_node(&bytes, "n")?;
        assert_eq!(update_scalar(&mut bytes, n, &parse("7")?)?, UpdateOutcome::Updated);
        assert_eq!(crate::decode(&bytes)?.get("n").and_then(|n| n.as_i64()), Some(7));
        Ok(())
    }
}

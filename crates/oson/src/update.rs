//! Partial in-place update of leaf scalar values (§4.2.3).
//!
//! OSON maximizes path-query efficiency, so "partial update support is
//! limited to changes of existing leaf scalar values": a new value may be
//! written over an existing string or number leaf *when its encoding fits
//! in the existing slot*; otherwise the caller must re-encode the whole
//! document. Booleans and nulls are encoded in the node header itself and
//! cannot be patched without altering tree-segment layout, so they also
//! report [`UpdateOutcome::NeedsReencode`].

use fsdm_json::{JsonDom, JsonValue, NodeRef};

use crate::doc::OsonDoc;
use crate::wire::NodeTag;
use crate::{OsonError, Result};

/// Result of attempting a partial update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The new value was written in place.
    Updated,
    /// The new value does not fit the existing slot (or the node kind does
    /// not support patching); the document must be re-encoded.
    NeedsReencode,
}

/// Overwrite the scalar leaf at `node` with `new_value`, in place, when the
/// encodings are compatible and the new bytes fit. `buf` must contain a
/// valid OSON document (as produced by [`crate::encode`]).
pub fn update_scalar(
    buf: &mut [u8],
    node: NodeRef,
    new_value: &JsonValue,
) -> Result<UpdateOutcome> {
    let out = update_scalar_inner(buf, node, new_value)?;
    // §4.3 piggyback-vs-rewrite accounting
    match out {
        UpdateOutcome::Updated => fsdm_obs::counter!("oson.update.in_place").inc(),
        UpdateOutcome::NeedsReencode => fsdm_obs::counter!("oson.update.reencode").inc(),
    }
    Ok(out)
}

fn update_scalar_inner(
    buf: &mut [u8],
    node: NodeRef,
    new_value: &JsonValue,
) -> Result<UpdateOutcome> {
    let doc = OsonDoc::new(buf)?;
    if doc.kind(node) != fsdm_json::NodeKind::Scalar {
        return Err(OsonError::new("update target is not a scalar leaf"));
    }
    let tag = NodeTag::from_byte(buf[tree_abs(&doc, node)]).expect("valid node");
    let plan = match (tag, new_value) {
        (NodeTag::Str, JsonValue::String(s)) => {
            let (body, old_len) = doc.scalar_value_span(node).expect("string span");
            if s.len() > old_len {
                return Ok(UpdateOutcome::NeedsReencode);
            }
            // shorter strings are allowed only if the varint length prefix
            // width is unchanged (one byte covers < 128)
            if varint_width(s.len()) != varint_width(old_len) {
                return Ok(UpdateOutcome::NeedsReencode);
            }
            Plan::Str { body, new: s.as_bytes().to_vec(), old_len }
        }
        (NodeTag::NumOra, JsonValue::Number(n)) => {
            let d = match n.to_oranum() {
                Some(d) => d,
                None => return Ok(UpdateOutcome::NeedsReencode),
            };
            let (body, old_len) = doc.scalar_value_span(node).expect("number span");
            if d.as_bytes().len() > old_len {
                return Ok(UpdateOutcome::NeedsReencode);
            }
            Plan::Num { body, new: d.as_bytes().to_vec(), old_len }
        }
        (NodeTag::NumDouble, JsonValue::Number(n)) => {
            let (body, _) = doc.scalar_value_span(node).expect("double span");
            Plan::Dbl { body, new: n.to_f64() }
        }
        _ => return Ok(UpdateOutcome::NeedsReencode),
    };
    match plan {
        Plan::Str { body, new, old_len } => {
            // rewrite the one-byte-compatible varint length, body, and pad
            // the remainder with spaces (kept inside the old slot)
            let len_pos = body - varint_width(old_len);
            debug_assert_eq!(varint_width(new.len()), varint_width(old_len));
            write_varint_exact(&mut buf[len_pos..body], new.len());
            buf[body..body + new.len()].copy_from_slice(&new);
            for b in &mut buf[body + new.len()..body + old_len] {
                *b = b' ';
            }
        }
        Plan::Num { body, new, old_len } => {
            buf[body - 1] = new.len() as u8;
            buf[body..body + new.len()].copy_from_slice(&new);
            // slack bytes after a shorter number are dead; zero them
            for b in &mut buf[body + new.len()..body + old_len] {
                *b = 0;
            }
        }
        Plan::Dbl { body, new } => {
            buf[body..body + 8].copy_from_slice(&new.to_le_bytes());
        }
    }
    Ok(UpdateOutcome::Updated)
}

enum Plan {
    Str { body: usize, new: Vec<u8>, old_len: usize },
    Num { body: usize, new: Vec<u8>, old_len: usize },
    Dbl { body: usize, new: f64 },
}

/// Absolute buffer position of the node's header byte.
fn tree_abs(doc: &OsonDoc<'_>, node: NodeRef) -> usize {
    doc.tree_abs(node)
}

fn varint_width(len: usize) -> usize {
    let mut v = len as u64;
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn write_varint_exact(slot: &mut [u8], mut v: usize) {
    for i in 0..slot.len() {
        let last = i == slot.len() - 1;
        let b = (v & 0x7F) as u8;
        v >>= 7;
        slot[i] = if last { b } else { b | 0x80 };
    }
    debug_assert_eq!(v, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use fsdm_json::{field_hash, parse, JsonDom};

    fn field_node(bytes: &[u8], name: &str) -> NodeRef {
        let d = OsonDoc::new(bytes).unwrap();
        d.get_field(d.root(), name, field_hash(name)).unwrap()
    }

    #[test]
    fn update_number_in_place() {
        let v = parse(r#"{"price":350.86,"name":"ipad"}"#).unwrap();
        let mut bytes = encode(&v).unwrap();
        let node = field_node(&bytes, "price");
        let out = update_scalar(&mut bytes, node, &parse("99.5").unwrap()).unwrap();
        assert_eq!(out, UpdateOutcome::Updated);
        let back = crate::decode(&bytes).unwrap();
        assert_eq!(back.get("price").unwrap().as_f64(), Some(99.5));
        assert_eq!(back.get("name").unwrap().as_str(), Some("ipad"));
    }

    #[test]
    fn update_string_same_or_shorter() {
        let v = parse(r#"{"s":"hello"}"#).unwrap();
        let mut bytes = encode(&v).unwrap();
        let node = field_node(&bytes, "s");
        assert_eq!(
            update_scalar(&mut bytes, node, &parse("\"world\"").unwrap()).unwrap(),
            UpdateOutcome::Updated
        );
        assert_eq!(crate::decode(&bytes).unwrap().get("s").unwrap().as_str(), Some("world"));
        let node = field_node(&bytes, "s");
        assert_eq!(
            update_scalar(&mut bytes, node, &parse("\"hi\"").unwrap()).unwrap(),
            UpdateOutcome::Updated
        );
        assert_eq!(crate::decode(&bytes).unwrap().get("s").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn longer_string_needs_reencode() {
        let v = parse(r#"{"s":"ab"}"#).unwrap();
        let mut bytes = encode(&v).unwrap();
        let before = bytes.clone();
        let node = field_node(&bytes, "s");
        assert_eq!(
            update_scalar(&mut bytes, node, &parse("\"abcdef\"").unwrap()).unwrap(),
            UpdateOutcome::NeedsReencode
        );
        assert_eq!(bytes, before, "buffer untouched on refusal");
    }

    #[test]
    fn type_change_needs_reencode() {
        let v = parse(r#"{"s":"ab","n":5}"#).unwrap();
        let mut bytes = encode(&v).unwrap();
        let s = field_node(&bytes, "s");
        assert_eq!(
            update_scalar(&mut bytes, s, &parse("42").unwrap()).unwrap(),
            UpdateOutcome::NeedsReencode
        );
        let n = field_node(&bytes, "n");
        assert_eq!(
            update_scalar(&mut bytes, n, &parse("true").unwrap()).unwrap(),
            UpdateOutcome::NeedsReencode
        );
    }

    #[test]
    fn container_target_is_an_error() {
        let v = parse(r#"{"a":[1]}"#).unwrap();
        let mut bytes = encode(&v).unwrap();
        let a = field_node(&bytes, "a");
        assert!(update_scalar(&mut bytes, a, &parse("1").unwrap()).is_err());
    }

    #[test]
    fn shorter_number_zero_pads() {
        let v = parse(r#"{"n":123456789.25}"#).unwrap();
        let mut bytes = encode(&v).unwrap();
        let n = field_node(&bytes, "n");
        assert_eq!(
            update_scalar(&mut bytes, n, &parse("7").unwrap()).unwrap(),
            UpdateOutcome::Updated
        );
        assert_eq!(crate::decode(&bytes).unwrap().get("n").unwrap().as_i64(), Some(7));
    }
}

//! [`OsonDoc`]: zero-copy reader over an encoded OSON instance,
//! implementing [`JsonDom`] with the jump-navigation semantics of §4.2.
//!
//! A tree-node address is the node's byte offset within the tree-node
//! navigation segment, "used in lieu of machine pointer dereferences"
//! (§5.1). Child lookup in an object is a binary search over the node's
//! sorted field-id array; array indexing is a single positional read.
//!
//! # Safety discipline
//!
//! The navigation accessors are **infallible by trait contract**
//! ([`JsonDom`]) but **total by implementation**: every byte read goes
//! through the checked primitives in [`crate::wire`], and a read that
//! falls outside the buffer yields a neutral value (`Null`, `""`, `0`)
//! instead of panicking. That keeps the hot path free of bounds-check
//! branching beyond what the reads themselves need, while guaranteeing a
//! corrupted buffer can never take the process down. Callers that hold
//! *untrusted* bytes should run [`OsonDoc::validate`] first — the deep
//! structural verifier — after which the neutral-value fallbacks are
//! unreachable and navigation is exact.

use std::cell::Cell;

use fsdm_json::{field_hash, FieldId, JsonDom, JsonNumber, NodeKind, NodeRef, OraNum, ScalarRef};

use crate::wire::{
    self, read_varint, NodeTag, FLAG_WIDE_FIELD_IDS, FLAG_WIDE_OFFSETS, MAGIC, VERSION,
};
use crate::{ErrorKind, OsonError, Result};

/// Maximum container nesting accepted by the structural verifier;
/// matches the parser's bound so that any document the codec accepts can
/// also be materialized and re-parsed.
pub const MAX_DEPTH: usize = fsdm_json::parse::MAX_DEPTH;

fn sum(a: usize, b: usize) -> Result<usize> {
    a.checked_add(b).ok_or_else(|| OsonError::corrupt("segment arithmetic overflow"))
}

fn prod(a: usize, b: usize) -> Result<usize> {
    a.checked_mul(b).ok_or_else(|| OsonError::corrupt("segment arithmetic overflow"))
}

/// Read-only OSON instance view.
pub struct OsonDoc<'a> {
    bytes: &'a [u8],
    wide_offsets: bool,
    wide_ids: bool,
    nfields: usize,
    root: u32,
    /// absolute offset of the hash-id array
    hash_arr: usize,
    /// absolute offset of the names blob
    names: usize,
    /// absolute offset of the tree segment
    tree: usize,
    /// absolute offset of the value segment
    values: usize,
    /// lazily computed dictionary fingerprint (0 = not yet computed)
    fingerprint: Cell<u64>,
}

impl<'a> OsonDoc<'a> {
    /// Wrap an encoded buffer, checking the header and segment geometry.
    ///
    /// This is the cheap O(1) gate: magic, version, and that the four
    /// declared segment lengths tile the buffer exactly. It does **not**
    /// walk the tree — use [`OsonDoc::validate`] for the deep check.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        let magic = bytes.get(0..4).ok_or_else(|| {
            OsonError::new(ErrorKind::BadMagic, "buffer shorter than the 4-byte magic")
        })?;
        if magic != MAGIC {
            return Err(OsonError::new(ErrorKind::BadMagic, "bad magic"));
        }
        let version =
            wire::read_u8(bytes, 4).ok_or_else(|| OsonError::truncated("missing version byte"))?;
        if version != VERSION {
            return Err(OsonError::new(
                ErrorKind::UnsupportedVersion,
                format!("unsupported version {version}"),
            ));
        }
        let flags =
            wire::read_u8(bytes, 5).ok_or_else(|| OsonError::truncated("missing flags byte"))?;
        let wide_offsets = flags & FLAG_WIDE_OFFSETS != 0;
        let wide_ids = flags & FLAG_WIDE_FIELD_IDS != 0;
        let nfields = usize::from(
            wire::read_u16_le(bytes, 6)
                .ok_or_else(|| OsonError::truncated("missing field count"))?,
        );
        let w: usize = if wide_offsets { 4 } else { 2 };
        let nlen_w: usize = if wide_offsets { 2 } else { 1 };
        let rd = |pos: usize| -> Result<u32> {
            let v = if wide_offsets {
                wire::read_u32_le(bytes, pos)
            } else {
                wire::read_u16_le(bytes, pos).map(u32::from)
            };
            v.ok_or_else(|| OsonError::truncated("truncated header"))
        };
        let root = rd(8)?;
        let names_len = wire::idx(rd(sum(8, w)?)?);
        let tree_len = wire::idx(rd(sum(8, prod(2, w)?)?)?);
        let values_len = wire::idx(rd(sum(8, prod(3, w)?)?)?);
        let entry = 4 + w + nlen_w;
        let hash_arr = 8 + 4 * w;
        let names = sum(hash_arr, prod(nfields, entry)?)?;
        let tree = sum(names, names_len)?;
        let values = sum(tree, tree_len)?;
        let total = sum(values, values_len)?;
        if total != bytes.len() {
            return Err(OsonError::corrupt(format!(
                "segment lengths inconsistent with buffer size ({} != {})",
                total,
                bytes.len()
            )));
        }
        if wire::idx(root) >= tree_len.max(1) {
            return Err(OsonError::corrupt("root offset out of tree segment"));
        }
        Ok(OsonDoc {
            bytes,
            wide_offsets,
            wide_ids,
            nfields,
            root,
            hash_arr,
            names,
            tree,
            values,
            fingerprint: Cell::new(0),
        })
    }

    /// Underlying encoded bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Number of distinct field names in the instance dictionary.
    pub fn num_fields(&self) -> usize {
        self.nfields
    }

    fn off_w(&self) -> usize {
        if self.wide_offsets {
            4
        } else {
            2
        }
    }

    fn id_w(&self) -> usize {
        if self.wide_ids {
            2
        } else {
            1
        }
    }

    fn nlen_w(&self) -> usize {
        if self.wide_offsets {
            2
        } else {
            1
        }
    }

    fn entry_size(&self) -> usize {
        4 + self.off_w() + self.nlen_w()
    }

    fn read_off_checked(&self, pos: usize) -> Option<u32> {
        if self.wide_offsets {
            wire::read_u32_le(self.bytes, pos)
        } else {
            wire::read_u16_le(self.bytes, pos).map(u32::from)
        }
    }

    fn read_off(&self, pos: usize) -> u32 {
        self.read_off_checked(pos).unwrap_or(0)
    }

    fn read_id_checked(&self, pos: usize) -> Option<u32> {
        if self.wide_ids {
            wire::read_u16_le(self.bytes, pos).map(u32::from)
        } else {
            wire::read_u8(self.bytes, pos).map(u32::from)
        }
    }

    fn read_id(&self, pos: usize) -> u32 {
        self.read_id_checked(pos).unwrap_or(0)
    }

    /// Dictionary entry `i` as `(hash, name_off, name_len)`, or `None`
    /// if the entry does not fit in the buffer.
    fn dict_entry(&self, i: usize) -> Option<(u32, usize, usize)> {
        let pos = self.hash_arr.checked_add(i.checked_mul(self.entry_size())?)?;
        let hash = wire::read_u32_le(self.bytes, pos)?;
        let noff = wire::idx(self.read_off_checked(pos.checked_add(4)?)?);
        let npos = pos.checked_add(4)?.checked_add(self.off_w())?;
        let nlen = if self.wide_offsets {
            usize::from(wire::read_u16_le(self.bytes, npos)?)
        } else {
            usize::from(wire::read_u8(self.bytes, npos)?)
        };
        Some((hash, noff, nlen))
    }

    /// Hash of dictionary entry `i` (entries sorted by hash).
    fn entry_hash(&self, i: usize) -> u32 {
        self.dict_entry(i).map(|(h, _, _)| h).unwrap_or(0)
    }

    fn field_name_checked(&self, id: FieldId) -> Option<&'a str> {
        let i = usize::try_from(id).ok()?;
        if i >= self.nfields {
            return None;
        }
        let (_, noff, nlen) = self.dict_entry(i)?;
        let start = self.names.checked_add(noff)?;
        let b = wire::slice(self.bytes, start, nlen)?;
        std::str::from_utf8(b).ok()
    }

    /// Field name of dictionary entry (= field id) `i`.
    pub fn field_name(&self, id: FieldId) -> &'a str {
        self.field_name_checked(id).unwrap_or("")
    }

    /// Resolve a field name to its instance field id: binary search on the
    /// hash-id array, then name comparison to resolve hash collisions
    /// (§4.2.1).
    pub fn lookup_field_id(&self, name: &str, hash: u32) -> Option<FieldId> {
        let (mut lo, mut hi) = (0usize, self.nfields);
        let mut probes: u64 = 0;
        while lo < hi {
            probes += 1;
            let mid = (lo + hi) / 2;
            if self.entry_hash(mid) < hash {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut found = None;
        let mut i = lo;
        while i < self.nfields && self.entry_hash(i) == hash {
            probes += 1;
            // nfields < 2^16, so the widening is exact
            let id = FieldId::try_from(i).unwrap_or(FieldId::MAX);
            if self.field_name(id) == name {
                found = Some(id);
                break;
            }
            i += 1;
        }
        fsdm_obs::counter!(fsdm_obs::catalog::OSON_DICT_LOOKUPS).inc();
        fsdm_obs::counter!(fsdm_obs::catalog::OSON_DICT_PROBES).add(probes);
        found
    }

    /// Absolute buffer position of the node's header byte. Saturates on
    /// nonsense refs; the reads downstream are all checked.
    fn node_pos(&self, node: NodeRef) -> usize {
        usize::try_from(node).ok().and_then(|n| self.tree.checked_add(n)).unwrap_or(usize::MAX)
    }

    /// Decode the node header at tree-relative offset `node`:
    /// (tag, payload absolute position).
    fn node_tag(&self, node: NodeRef) -> (NodeTag, usize) {
        let pos = self.node_pos(node);
        let b = wire::read_u8(self.bytes, pos).unwrap_or(NodeTag::Null.to_byte());
        (NodeTag::from_byte(b), pos.saturating_add(1))
    }

    /// For container nodes: (child count, absolute offset of first id/off).
    ///
    /// The count is clamped to the number of bytes left in the tree
    /// segment — a corrupted count can therefore never drive a loop past
    /// the buffer (each child costs at least one tree byte).
    fn container_header(&self, node: NodeRef) -> (NodeTag, usize, usize) {
        let (tag, p) = self.node_tag(node);
        match read_varint(self.bytes, p) {
            Some((count, n)) => {
                let base = p.saturating_add(n);
                let cap = self.values.saturating_sub(base);
                (tag, usize::try_from(count).unwrap_or(cap).min(cap), base)
            }
            None => (tag, 0, p),
        }
    }

    /// Bytes of the scalar value of a string/number node within the value
    /// segment, as (absolute offset of the body, body length). Used by the
    /// partial updater.
    pub(crate) fn scalar_value_span(&self, node: NodeRef) -> Option<(usize, usize)> {
        let (tag, p) = self.node_tag(node);
        match tag {
            NodeTag::Str => {
                let voff = wire::idx(self.read_off_checked(p)?);
                let vpos = self.values.checked_add(voff)?;
                let (len, n) = read_varint(self.bytes, vpos)?;
                Some((vpos.checked_add(n)?, usize::try_from(len).ok()?))
            }
            // numbers are inlined in the tree node
            NodeTag::NumOra => {
                let len = usize::from(wire::read_u8(self.bytes, p)?);
                Some((p.checked_add(1)?, len))
            }
            NodeTag::NumDouble => Some((p, 8)),
            _ => None,
        }
    }

    /// Absolute buffer position of a node's header byte (updater use).
    pub(crate) fn tree_abs(&self, node: NodeRef) -> usize {
        self.node_pos(node)
    }

    /// Deep structural verifier of the three-segment layout.
    ///
    /// Checks, beyond the O(1) geometry of [`OsonDoc::new`]:
    ///
    /// * the field-id dictionary is sorted by `(hash, name)`, free of
    ///   duplicates, every name span lies inside the names blob, every
    ///   name is UTF-8, and every stored hash matches
    ///   [`fsdm_json::field_hash`] of its name;
    /// * every tree node reachable from the root has a canonical header
    ///   (no stray high bits), lies inside the tree segment, and nesting
    ///   stays within [`MAX_DEPTH`];
    /// * object children carry sorted (non-decreasing) in-range field
    ///   ids — equal consecutive ids are permitted, because RFC 8259
    ///   documents may repeat a name and the encoder preserves such
    ///   members in document order ([`JsonDom::get_field`] resolves to
    ///   the first occurrence, matching `Object::get`);
    /// * all child offsets point strictly **backwards** (post-order
    ///   encoding), which rules out cycles, and no tree node is
    ///   referenced by more than one parent — the instance is a strict
    ///   tree, not a DAG, so the walk makes at most one visit per tree
    ///   byte and a post-validate [`JsonDom::materialize`] is linear;
    /// * string leaves reference varint-framed UTF-8 extents fully inside
    ///   the value segment, and no two distinct extents overlap;
    /// * inlined numbers decode under the Oracle NUMBER grammar and
    ///   doubles have their full 8 bytes.
    ///
    /// Runs in O(size of the document): distinct node offsets are tracked
    /// in a bitset and a re-visited offset is rejected outright, so the
    /// traversal is bounded by the tree segment length even on hostile
    /// buffers. The encoder asserts it on every
    /// document in debug builds; [`crate::decode`] runs it on every
    /// buffer, which is what makes the corpus of corrupted inputs return
    /// `Err` instead of panicking.
    pub fn validate(&self) -> Result<()> {
        match self.validate_inner() {
            Ok(()) => Ok(()),
            Err(e) => {
                fsdm_obs::counter!(fsdm_obs::catalog::OSON_VALIDATE_FAILURES).inc();
                Err(e)
            }
        }
    }

    fn validate_inner(&self) -> Result<()> {
        self.validate_dictionary()?;
        let tree_len = self.values - self.tree;
        let mut extents: Vec<(usize, usize)> = Vec::new();
        // iterative DFS with an explicit work stack: a hostile buffer can
        // nest up to MAX_DEPTH levels, and the verifier must not answer
        // adversarial input with call-stack exhaustion
        let mut work: Vec<(u32, usize)> = vec![(self.root, 0)];
        // one bit per tree byte: the strictly-backwards child rule rules
        // out cycles but not DAG sharing, and a few hundred nodes whose
        // child offsets converge on earlier nodes would otherwise drive
        // exponentially many visits. Every node header occupies a distinct
        // tree byte, so "each offset at most once" caps the whole walk at
        // tree_len visits.
        let mut visited = vec![0u64; tree_len / 64 + 1];
        while let Some((node, depth)) = work.pop() {
            let npos = wire::idx(node);
            // an out-of-bounds offset is left for validate_node to report;
            // in-bounds offsets always land inside the bitset
            if let Some(word) = visited.get_mut(npos / 64) {
                let bit = 1u64 << (npos % 64);
                if npos < tree_len {
                    if *word & bit != 0 {
                        return Err(OsonError::corrupt(format!(
                            "node at {node} referenced by more than one parent \
                             (shared subtree; the instance is not a tree)"
                        )));
                    }
                    *word |= bit;
                }
            }
            self.validate_node(node, depth, &mut extents, &mut work)?;
        }
        extents.sort_unstable();
        extents.dedup();
        for pair in extents.windows(2) {
            if let [(_, end_a), (start_b, _)] = pair {
                if end_a > start_b {
                    return Err(OsonError::corrupt(
                        "overlapping leaf extents in the value segment",
                    ));
                }
            }
        }
        Ok(())
    }

    fn validate_dictionary(&self) -> Result<()> {
        let names_len = self.tree - self.names;
        let mut prev: Option<(u32, &str)> = None;
        for i in 0..self.nfields {
            let (hash, noff, nlen) = self.dict_entry(i).ok_or_else(|| {
                OsonError::truncated(format!("dictionary entry {i} out of bounds"))
            })?;
            let end = sum(noff, nlen)?;
            if end > names_len {
                return Err(OsonError::corrupt(format!(
                    "dictionary entry {i}: name span {noff}+{nlen} escapes the \
                     names blob ({names_len} bytes)"
                )));
            }
            let start = sum(self.names, noff)?;
            let b = wire::slice(self.bytes, start, nlen)
                .ok_or_else(|| OsonError::truncated(format!("dictionary entry {i} name")))?;
            let name = std::str::from_utf8(b).map_err(|_| {
                OsonError::corrupt(format!("dictionary entry {i}: name is not UTF-8"))
            })?;
            if hash != field_hash(name) {
                return Err(OsonError::corrupt(format!(
                    "dictionary entry {i}: stored hash {hash:#x} does not match \
                     field_hash({name:?})"
                )));
            }
            if let Some(p) = prev {
                if p >= (hash, name) {
                    return Err(OsonError::corrupt(format!(
                        "dictionary not sorted/deduplicated at entry {i}"
                    )));
                }
            }
            prev = Some((hash, name));
        }
        Ok(())
    }

    /// Validate the node at tree-relative offset `node`; `extents`
    /// accumulates (start, end) spans of string bodies in the value
    /// segment for the global overlap check, and `work` receives the
    /// node's children for the caller's DFS loop.
    fn validate_node(
        &self,
        node: u32,
        depth: usize,
        extents: &mut Vec<(usize, usize)>,
        work: &mut Vec<(u32, usize)>,
    ) -> Result<()> {
        if depth > MAX_DEPTH {
            return Err(OsonError::limit(format!("tree nesting exceeds MAX_DEPTH ({MAX_DEPTH})")));
        }
        let tree_len = self.values - self.tree;
        let npos = wire::idx(node);
        if npos >= tree_len {
            return Err(OsonError::corrupt(format!(
                "node offset {node} out of tree segment ({tree_len} bytes)"
            )));
        }
        let abs = sum(self.tree, npos)?;
        let header =
            wire::read_u8(self.bytes, abs).ok_or_else(|| OsonError::truncated("node header"))?;
        if header >> 3 != 0 {
            return Err(OsonError::corrupt(format!(
                "node at {node}: non-canonical header byte {header:#04x}"
            )));
        }
        let tag = NodeTag::from_byte(header);
        let p = abs + 1;
        match tag {
            NodeTag::Object | NodeTag::Array => {
                let (count_raw, n) = read_varint(self.bytes, p)
                    .ok_or_else(|| OsonError::truncated("container child count"))?;
                let count = usize::try_from(count_raw)
                    .map_err(|_| OsonError::corrupt("container child count overflows"))?;
                let base = sum(p, n)?;
                let id_w = if tag == NodeTag::Object { self.id_w() } else { 0 };
                let body = sum(prod(count, id_w)?, prod(count, self.off_w())?)?;
                if sum(base, body)? > self.values {
                    return Err(OsonError::truncated(format!(
                        "container at {node}: {count} children escape the tree segment"
                    )));
                }
                let offs_base = sum(base, prod(count, id_w)?)?;
                let mut prev_id: Option<u32> = None;
                for i in 0..count {
                    if tag == NodeTag::Object {
                        let id = self
                            .read_id_checked(base + i * id_w)
                            .ok_or_else(|| OsonError::truncated("object field id"))?;
                        if wire::idx(id) >= self.nfields {
                            return Err(OsonError::corrupt(format!(
                                "object at {node}: field id {id} out of dictionary \
                                 range ({} entries)",
                                self.nfields
                            )));
                        }
                        if let Some(prev) = prev_id {
                            // non-decreasing, not strictly increasing:
                            // RFC 8259 documents may repeat a name, the
                            // encoder keeps such members (stable sort,
                            // document order), and lookups resolve to the
                            // first occurrence
                            if prev > id {
                                return Err(OsonError::corrupt(format!(
                                    "object at {node}: field ids not sorted"
                                )));
                            }
                        }
                        prev_id = Some(id);
                    }
                    let child = self
                        .read_off_checked(offs_base + i * self.off_w())
                        .ok_or_else(|| OsonError::truncated("container child offset"))?;
                    if child >= node {
                        return Err(OsonError::corrupt(format!(
                            "container at {node}: child offset {child} is not \
                             strictly backwards (cycle or forward reference)"
                        )));
                    }
                    work.push((child, depth + 1));
                }
            }
            NodeTag::Str => {
                if sum(p, self.off_w())? > self.values {
                    return Err(OsonError::truncated("string value offset"));
                }
                let voff = wire::idx(
                    self.read_off_checked(p)
                        .ok_or_else(|| OsonError::truncated("string value offset"))?,
                );
                let values_len = self.bytes.len() - self.values;
                if voff >= values_len.max(1) {
                    return Err(OsonError::corrupt(format!(
                        "string at {node}: value offset {voff} out of value \
                         segment ({values_len} bytes)"
                    )));
                }
                let vpos = sum(self.values, voff)?;
                let (len_raw, n) = read_varint(self.bytes, vpos)
                    .ok_or_else(|| OsonError::truncated("string length varint"))?;
                let len = usize::try_from(len_raw)
                    .map_err(|_| OsonError::corrupt("string length overflows"))?;
                let start = sum(vpos, n)?;
                if sum(start, len)? > self.bytes.len() {
                    return Err(OsonError::truncated(format!(
                        "string at {node}: body escapes the value segment"
                    )));
                }
                let b = wire::slice(self.bytes, start, len)
                    .ok_or_else(|| OsonError::truncated("string body"))?;
                if std::str::from_utf8(b).is_err() {
                    return Err(OsonError::corrupt(format!("string at {node}: body is not UTF-8")));
                }
                extents.push((vpos, start + len));
            }
            NodeTag::NumOra => {
                let len = usize::from(
                    wire::read_u8(self.bytes, p)
                        .ok_or_else(|| OsonError::truncated("number length byte"))?,
                );
                let start = sum(p, 1)?;
                if sum(start, len)? > self.values {
                    return Err(OsonError::truncated(format!(
                        "number at {node}: body escapes the tree segment"
                    )));
                }
                let b = wire::slice(self.bytes, start, len)
                    .ok_or_else(|| OsonError::truncated("number body"))?;
                if OraNum::from_bytes(b).is_err() {
                    return Err(OsonError::corrupt(format!(
                        "number at {node}: invalid Oracle NUMBER encoding"
                    )));
                }
            }
            NodeTag::NumDouble => {
                if sum(p, 8)? > self.values {
                    return Err(OsonError::truncated(format!(
                        "double at {node}: 8-byte body escapes the tree segment"
                    )));
                }
            }
            NodeTag::True | NodeTag::False | NodeTag::Null => {}
        }
        Ok(())
    }
}

impl JsonDom for OsonDoc<'_> {
    fn root(&self) -> NodeRef {
        NodeRef::from(self.root)
    }

    fn kind(&self, node: NodeRef) -> NodeKind {
        match self.node_tag(node).0 {
            NodeTag::Object => NodeKind::Object,
            NodeTag::Array => NodeKind::Array,
            _ => NodeKind::Scalar,
        }
    }

    fn object_len(&self, node: NodeRef) -> usize {
        let (tag, count, _) = self.container_header(node);
        debug_assert_eq!(tag, NodeTag::Object);
        count
    }

    fn object_entry(&self, node: NodeRef, i: usize) -> (&str, NodeRef) {
        let (_, count, base) = self.container_header(node);
        debug_assert!(i < count);
        let id = self.read_id(base.saturating_add(i * self.id_w()));
        let offs = base.saturating_add(count * self.id_w());
        let child = self.read_off(offs.saturating_add(i * self.off_w()));
        (self.field_name(id), NodeRef::from(child))
    }

    fn array_len(&self, node: NodeRef) -> usize {
        let (tag, count, _) = self.container_header(node);
        debug_assert_eq!(tag, NodeTag::Array);
        count
    }

    fn array_element(&self, node: NodeRef, i: usize) -> NodeRef {
        let (_, count, base) = self.container_header(node);
        debug_assert!(i < count);
        NodeRef::from(self.read_off(base.saturating_add(i * self.off_w())))
    }

    fn scalar(&self, node: NodeRef) -> ScalarRef<'_> {
        let (tag, p) = self.node_tag(node);
        match tag {
            NodeTag::Null => ScalarRef::Null,
            NodeTag::True => ScalarRef::Bool(true),
            NodeTag::False => ScalarRef::Bool(false),
            NodeTag::Str => {
                let s = self
                    .scalar_value_span(node)
                    .and_then(|(start, len)| wire::slice(self.bytes, start, len))
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .unwrap_or("");
                ScalarRef::Str(s)
            }
            NodeTag::NumOra => {
                // inlined in the tree node: length byte then OraNum bytes
                let d = self
                    .scalar_value_span(node)
                    .and_then(|(start, len)| wire::slice(self.bytes, start, len))
                    .and_then(|b| OraNum::from_bytes(b).ok());
                match d {
                    Some(d) => ScalarRef::Num(match d.to_i64() {
                        Some(i) => JsonNumber::Int(i),
                        None => JsonNumber::Dec(d),
                    }),
                    None => ScalarRef::Null,
                }
            }
            NodeTag::NumDouble => {
                let v = wire::read_f64_le(self.bytes, p).unwrap_or(0.0);
                ScalarRef::Num(JsonNumber::from(v))
            }
            NodeTag::Object | NodeTag::Array => {
                debug_assert!(false, "scalar() on container node");
                ScalarRef::Null
            }
        }
    }

    /// `JsonDomGetFieldValue`: resolve the name to an instance field id,
    /// then binary-search the object's sorted id array (§4.2.1–4.2.2).
    fn get_field(&self, node: NodeRef, name: &str, hash: u32) -> Option<NodeRef> {
        let _span = fsdm_obs::trace::span(fsdm_obs::catalog::SPAN_OSON_GET_FIELD);
        let id = self.lookup_field_id(name, hash)?;
        self.get_field_by_id(node, id)
    }

    fn field_id(&self, name: &str, hash: u32) -> Option<FieldId> {
        self.lookup_field_id(name, hash)
    }

    fn has_field_ids(&self) -> bool {
        true
    }

    fn verify_field_id(&self, id: FieldId, name: &str, hash: u32) -> bool {
        wire::idx(id) < self.nfields
            && self.entry_hash(wire::idx(id)) == hash
            && self.field_name(id) == name
    }

    /// Lower-bound binary search: if the object repeats a field id
    /// (duplicate keys in the source document), this lands on the *first*
    /// occurrence in document order — the same member `Object::get`
    /// returns on the owned-value side.
    fn get_field_by_id(&self, node: NodeRef, id: FieldId) -> Option<NodeRef> {
        let (tag, count, base) = self.container_header(node);
        if tag != NodeTag::Object {
            return None;
        }
        let id_w = self.id_w();
        let (mut lo, mut hi) = (0usize, count);
        let mut probes: u64 = 1;
        while lo < hi {
            probes += 1;
            let mid = (lo + hi) / 2;
            if self.read_id(base + mid * id_w) < id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        fsdm_obs::counter!(fsdm_obs::catalog::OSON_NODE_LOOKUPS).inc();
        fsdm_obs::counter!(fsdm_obs::catalog::OSON_NODE_PROBES).add(probes);
        if lo < count && self.read_id(base + lo * id_w) == id {
            let offs = base + count * id_w;
            Some(NodeRef::from(self.read_off(offs + lo * self.off_w())))
        } else {
            None
        }
    }

    /// Computed lazily on first use (queries that never look up a field
    /// by name — array-only paths — skip it entirely) and cached for the
    /// lifetime of the view.
    fn dict_fingerprint(&self) -> u64 {
        let cached = self.fingerprint.get();
        if cached != 0 {
            return cached;
        }
        // FNV-1a 64 over the dictionary region; never returns the 0
        // sentinel (the offset basis bit pattern is restored if it does)
        let mut fp: u64 = 0xcbf29ce484222325;
        for &b in self.bytes.get(self.hash_arr..self.tree).unwrap_or(&[]) {
            fp ^= u64::from(b);
            fp = fp.wrapping_mul(0x100000001b3);
        }
        if fp == 0 {
            fp = 0xcbf29ce484222325;
        }
        self.fingerprint.set(fp);
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use fsdm_json::parse;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn doc_of(
        text: &str,
    ) -> std::result::Result<(Vec<u8>, fsdm_json::JsonValue), Box<dyn std::error::Error>> {
        let v = parse(text)?;
        let bytes = encode(&v)?;
        Ok((bytes, v))
    }

    #[test]
    fn materialize_roundtrip() -> TestResult {
        let texts = [
            r#"{"a":1,"b":"s","c":true,"d":null,"e":[1,2,{"f":3.5}],"g":{}}"#,
            r#"{}"#,
            r#"{"x":[[],[[]]]}"#,
            r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
                {"name":"phone","price":100,"quantity":2},
                {"name":"ipad","price":350.86,"quantity":3}]}}"#,
        ];
        for t in texts {
            let (bytes, v) = doc_of(t)?;
            assert!(crate::decode(&bytes)?.eq_unordered(&v), "roundtrip {t}");
        }
        Ok(())
    }

    #[test]
    fn validate_accepts_encoder_output() -> TestResult {
        let texts = [
            r#"{}"#,
            r#"{"a":1}"#,
            r#"{"a":{"b":[10,20,30]},"z":"end","n":null,"t":true,"d":1.5e300}"#,
            r#"{"x":[[],[[]],{"deep":{"deeper":"v"}}]}"#,
        ];
        for t in texts {
            let (bytes, _) = doc_of(t)?;
            OsonDoc::new(&bytes)?.validate()?;
        }
        Ok(())
    }

    #[test]
    fn jump_navigation() -> TestResult {
        let (bytes, _) = doc_of(r#"{"a":{"b":[10,20,30]},"z":"end"}"#)?;
        let d = OsonDoc::new(&bytes)?;
        let root = d.root();
        assert_eq!(d.kind(root), NodeKind::Object);
        let a = d.get_field(root, "a", field_hash("a")).ok_or("field a missing")?;
        let b = d.get_field(a, "b", field_hash("b")).ok_or("field b missing")?;
        assert_eq!(d.array_len(b), 3);
        // positional jump to the 3rd element without touching the others
        let e2 = d.array_element(b, 2);
        assert_eq!(d.scalar(e2), ScalarRef::Num(JsonNumber::Int(30)));
        assert!(d.get_field(root, "missing", field_hash("missing")).is_none());
        Ok(())
    }

    #[test]
    fn field_ids_are_dictionary_ordinals() -> TestResult {
        let (bytes, _) = doc_of(r#"{"alpha":1,"beta":2,"gamma":3}"#)?;
        let d = OsonDoc::new(&bytes)?;
        assert_eq!(d.num_fields(), 3);
        // every name resolves, ids are dense 0..n
        let mut ids = Vec::new();
        for n in ["alpha", "beta", "gamma"] {
            ids.push(d.lookup_field_id(n, field_hash(n)).ok_or("unresolved name")?);
        }
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        // and ids map back to their names
        for n in ["alpha", "beta", "gamma"] {
            let id = d.lookup_field_id(n, field_hash(n)).ok_or("unresolved name")?;
            assert_eq!(d.field_name(id), n);
        }
        Ok(())
    }

    #[test]
    fn get_field_by_id_binary_search() -> TestResult {
        let (bytes, v) =
            doc_of(r#"{"f1":1,"f2":2,"f3":3,"f4":4,"f5":5,"f6":6,"f7":7,"f8":8,"f9":9}"#)?;
        let d = OsonDoc::new(&bytes)?;
        for (k, expected) in v.as_object().ok_or("not an object")?.iter() {
            let id = d.field_id(k, field_hash(k)).ok_or("unresolved name")?;
            let node = d.get_field_by_id(d.root(), id).ok_or("child missing")?;
            let n = *expected.as_number().ok_or("not a number")?;
            assert_eq!(d.scalar(node), ScalarRef::Num(n));
        }
        Ok(())
    }

    #[test]
    fn fingerprints_match_for_homogeneous_instances() -> TestResult {
        let (b1, _) = doc_of(r#"{"name":"a","price":1}"#)?;
        let (b2, _) = doc_of(r#"{"name":"b","price":2}"#)?;
        let (b3, _) = doc_of(r#"{"name":"c","cost":2}"#)?;
        let d1 = OsonDoc::new(&b1)?;
        let d2 = OsonDoc::new(&b2)?;
        let d3 = OsonDoc::new(&b3)?;
        assert_eq!(d1.dict_fingerprint(), d2.dict_fingerprint());
        assert_ne!(d1.dict_fingerprint(), d3.dict_fingerprint());
        Ok(())
    }

    #[test]
    fn object_entry_names() -> TestResult {
        let (bytes, _) = doc_of(r#"{"b":1,"a":2}"#)?;
        let d = OsonDoc::new(&bytes)?;
        let mut names: Vec<&str> = (0..2).map(|i| d.object_entry(d.root(), i).0).collect();
        names.sort_unstable();
        assert_eq!(names, ["a", "b"]);
        Ok(())
    }

    #[test]
    fn rejects_corrupt_buffers() -> TestResult {
        assert!(OsonDoc::new(b"").is_err());
        assert!(OsonDoc::new(b"NOPE\x01\x00").is_err());
        let (mut bytes, _) = doc_of(r#"{"a":1}"#)?;
        bytes.truncate(bytes.len() - 1);
        assert!(OsonDoc::new(&bytes).is_err());
        let (mut bytes2, _) = doc_of(r#"{"a":1}"#)?;
        if let Some(v) = bytes2.get_mut(4) {
            *v = 99; // version
        }
        assert!(OsonDoc::new(&bytes2).is_err());
        Ok(())
    }

    #[test]
    fn error_kinds_distinguish_failures() -> TestResult {
        let bad_magic = OsonDoc::new(b"NOPE\x01\x00\x00\x00").map(|_| ());
        assert_eq!(bad_magic.err().map(|e| e.kind), Some(ErrorKind::BadMagic));
        let (mut bytes, _) = doc_of(r#"{"a":1}"#)?;
        if let Some(v) = bytes.get_mut(4) {
            *v = 99;
        }
        let bad_version = OsonDoc::new(&bytes).map(|_| ());
        assert_eq!(bad_version.err().map(|e| e.kind), Some(ErrorKind::UnsupportedVersion));
        Ok(())
    }

    #[test]
    fn numbers_preserve_decimal_exactness() -> TestResult {
        let (bytes, _) = doc_of(r#"{"d":350.86}"#)?;
        let d = OsonDoc::new(&bytes)?;
        let n = d.get_field(d.root(), "d", field_hash("d")).ok_or("field d missing")?;
        match d.scalar(n) {
            ScalarRef::Num(JsonNumber::Dec(x)) => {
                assert_eq!(x.to_decimal_string(), "350.86");
                Ok(())
            }
            other => Err(format!("expected exact decimal, got {other:?}").into()),
        }
    }

    #[test]
    fn duplicate_keys_survive() -> TestResult {
        let v = parse(r#"{"k":1,"k":2}"#)?;
        let bytes = encode(&v)?;
        OsonDoc::new(&bytes)?.validate()?;
        let back = crate::decode(&bytes)?;
        let o = back.as_object().ok_or("not an object")?;
        assert_eq!(o.len(), 2);
        Ok(())
    }

    #[test]
    fn duplicate_keys_lookup_first_wins() -> TestResult {
        // get_field on a repeated name must resolve to the first member in
        // document order, mirroring Object::get
        let v = parse(r#"{"k":1,"k":2,"z":3}"#)?;
        let bytes = encode(&v)?;
        let d = OsonDoc::new(&bytes)?;
        d.validate()?;
        let k = d.get_field(d.root(), "k", field_hash("k")).ok_or("field k missing")?;
        match d.scalar(k) {
            ScalarRef::Num(JsonNumber::Int(1)) => Ok(()),
            other => Err(format!("expected first occurrence (1), got {other:?}").into()),
        }
    }
}

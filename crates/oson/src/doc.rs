//! [`OsonDoc`]: zero-copy reader over an encoded OSON instance,
//! implementing [`JsonDom`] with the jump-navigation semantics of §4.2.
//!
//! A tree-node address is the node's byte offset within the tree-node
//! navigation segment, "used in lieu of machine pointer dereferences"
//! (§5.1). Child lookup in an object is a binary search over the node's
//! sorted field-id array; array indexing is a single positional read.

use fsdm_json::{FieldId, JsonDom, JsonNumber, NodeKind, NodeRef, OraNum, ScalarRef};

use crate::wire::{read_varint, NodeTag, FLAG_WIDE_FIELD_IDS, FLAG_WIDE_OFFSETS, MAGIC, VERSION};
use crate::{OsonError, Result};

/// Read-only OSON instance view.
pub struct OsonDoc<'a> {
    bytes: &'a [u8],
    wide_offsets: bool,
    wide_ids: bool,
    nfields: usize,
    root: u32,
    /// absolute offset of the hash-id array
    hash_arr: usize,
    /// absolute offset of the names blob
    names: usize,
    /// absolute offset of the tree segment
    tree: usize,
    /// absolute offset of the value segment
    values: usize,
    /// lazily computed dictionary fingerprint (0 = not yet computed)
    fingerprint: std::cell::Cell<u64>,
}

impl<'a> OsonDoc<'a> {
    /// Wrap and validate an encoded buffer.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        if bytes.len() < 8 || bytes[0..4] != MAGIC {
            return Err(OsonError::new("bad magic"));
        }
        if bytes[4] != VERSION {
            return Err(OsonError::new(format!("unsupported version {}", bytes[4])));
        }
        let flags = bytes[5];
        let wide_offsets = flags & FLAG_WIDE_OFFSETS != 0;
        let wide_ids = flags & FLAG_WIDE_FIELD_IDS != 0;
        let nfields = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
        let w = if wide_offsets { 4usize } else { 2 };
        let nlen_w = if wide_offsets { 2usize } else { 1 };
        let hdr = 8 + 4 * w;
        if bytes.len() < hdr {
            return Err(OsonError::new("truncated header"));
        }
        let rd = |pos: usize| -> u32 {
            if wide_offsets {
                u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap())
            } else {
                u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as u32
            }
        };
        let root = rd(8);
        let names_len = rd(8 + w) as usize;
        let tree_len = rd(8 + 2 * w) as usize;
        let values_len = rd(8 + 3 * w) as usize;
        let entry = 4 + w + nlen_w;
        let hash_arr = hdr;
        let names = hash_arr + nfields * entry;
        let tree = names + names_len;
        let values = tree + tree_len;
        if values + values_len != bytes.len() {
            return Err(OsonError::new(format!(
                "segment lengths inconsistent with buffer size ({} != {})",
                values + values_len,
                bytes.len()
            )));
        }
        if (root as usize) >= tree_len.max(1) {
            return Err(OsonError::new("root offset out of tree segment"));
        }
        Ok(OsonDoc {
            bytes,
            wide_offsets,
            wide_ids,
            nfields,
            root,
            hash_arr,
            names,
            tree,
            values,
            fingerprint: std::cell::Cell::new(0),
        })
    }

    /// Underlying encoded bytes.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Number of distinct field names in the instance dictionary.
    pub fn num_fields(&self) -> usize {
        self.nfields
    }

    fn off_w(&self) -> usize {
        if self.wide_offsets {
            4
        } else {
            2
        }
    }

    fn id_w(&self) -> usize {
        if self.wide_ids {
            2
        } else {
            1
        }
    }

    fn read_off(&self, pos: usize) -> u32 {
        if self.wide_offsets {
            u32::from_le_bytes(self.bytes[pos..pos + 4].try_into().unwrap())
        } else {
            u16::from_le_bytes(self.bytes[pos..pos + 2].try_into().unwrap()) as u32
        }
    }

    fn read_id(&self, pos: usize) -> u32 {
        if self.wide_ids {
            u16::from_le_bytes(self.bytes[pos..pos + 2].try_into().unwrap()) as u32
        } else {
            self.bytes[pos] as u32
        }
    }

    /// Hash of dictionary entry `i` (entries sorted by hash).
    fn entry_hash(&self, i: usize) -> u32 {
        let entry = 4 + self.off_w() + if self.wide_offsets { 2 } else { 1 };
        let pos = self.hash_arr + i * entry;
        u32::from_le_bytes(self.bytes[pos..pos + 4].try_into().unwrap())
    }

    /// Field name of dictionary entry (= field id) `i`.
    pub fn field_name(&self, id: FieldId) -> &'a str {
        let i = id as usize;
        debug_assert!(i < self.nfields);
        let nlen_w = if self.wide_offsets { 2 } else { 1 };
        let entry = 4 + self.off_w() + nlen_w;
        let pos = self.hash_arr + i * entry + 4;
        let noff = self.read_off(pos) as usize;
        let nlen = if self.wide_offsets {
            u16::from_le_bytes(self.bytes[pos + 4..pos + 6].try_into().unwrap()) as usize
        } else {
            self.bytes[pos + 2] as usize
        };
        std::str::from_utf8(&self.bytes[self.names + noff..self.names + noff + nlen]).unwrap_or("")
    }

    /// Resolve a field name to its instance field id: binary search on the
    /// hash-id array, then name comparison to resolve hash collisions
    /// (§4.2.1).
    pub fn lookup_field_id(&self, name: &str, hash: u32) -> Option<FieldId> {
        let (mut lo, mut hi) = (0usize, self.nfields);
        let mut probes: u64 = 0;
        while lo < hi {
            probes += 1;
            let mid = (lo + hi) / 2;
            if self.entry_hash(mid) < hash {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut found = None;
        let mut i = lo;
        while i < self.nfields && self.entry_hash(i) == hash {
            probes += 1;
            if self.field_name(i as FieldId) == name {
                found = Some(i as FieldId);
                break;
            }
            i += 1;
        }
        fsdm_obs::counter!("oson.dict.lookups").inc();
        fsdm_obs::counter!("oson.dict.probes").add(probes);
        found
    }

    /// Decode the node header at tree-relative offset `node`:
    /// (tag, payload absolute position).
    fn node_tag(&self, node: NodeRef) -> (NodeTag, usize) {
        let pos = self.tree + node as usize;
        let tag = NodeTag::from_byte(self.bytes[pos]).expect("3-bit tag is total");
        (tag, pos + 1)
    }

    /// For container nodes: (child count, absolute offset of first id/off).
    fn container_header(&self, node: NodeRef) -> (NodeTag, usize, usize) {
        let (tag, p) = self.node_tag(node);
        let (count, n) = read_varint(self.bytes, p).expect("container count present");
        (tag, count as usize, p + n)
    }

    /// Bytes of the scalar value of a string/number node within the value
    /// segment, as (absolute offset of the body, body length). Used by the
    /// partial updater.
    pub(crate) fn scalar_value_span(&self, node: NodeRef) -> Option<(usize, usize)> {
        let (tag, p) = self.node_tag(node);
        match tag {
            NodeTag::Str => {
                let voff = self.read_off(p) as usize;
                let (len, n) = read_varint(self.bytes, self.values + voff)?;
                Some((self.values + voff + n, len as usize))
            }
            // numbers are inlined in the tree node
            NodeTag::NumOra => {
                let len = self.bytes[p] as usize;
                Some((p + 1, len))
            }
            NodeTag::NumDouble => Some((p, 8)),
            _ => None,
        }
    }

    /// Absolute buffer position of a node's header byte (updater use).
    pub(crate) fn tree_abs(&self, node: NodeRef) -> usize {
        self.tree + node as usize
    }
}

impl JsonDom for OsonDoc<'_> {
    fn root(&self) -> NodeRef {
        self.root as NodeRef
    }

    fn kind(&self, node: NodeRef) -> NodeKind {
        match self.node_tag(node).0 {
            NodeTag::Object => NodeKind::Object,
            NodeTag::Array => NodeKind::Array,
            _ => NodeKind::Scalar,
        }
    }

    fn object_len(&self, node: NodeRef) -> usize {
        let (tag, count, _) = self.container_header(node);
        debug_assert_eq!(tag, NodeTag::Object);
        count
    }

    fn object_entry(&self, node: NodeRef, i: usize) -> (&str, NodeRef) {
        let (_, count, base) = self.container_header(node);
        debug_assert!(i < count);
        let id = self.read_id(base + i * self.id_w());
        let offs = base + count * self.id_w();
        let child = self.read_off(offs + i * self.off_w());
        (self.field_name(id), child as NodeRef)
    }

    fn array_len(&self, node: NodeRef) -> usize {
        let (tag, count, _) = self.container_header(node);
        debug_assert_eq!(tag, NodeTag::Array);
        count
    }

    fn array_element(&self, node: NodeRef, i: usize) -> NodeRef {
        let (_, count, base) = self.container_header(node);
        debug_assert!(i < count);
        self.read_off(base + i * self.off_w()) as NodeRef
    }

    fn scalar(&self, node: NodeRef) -> ScalarRef<'_> {
        let (tag, p) = self.node_tag(node);
        match tag {
            NodeTag::Null => ScalarRef::Null,
            NodeTag::True => ScalarRef::Bool(true),
            NodeTag::False => ScalarRef::Bool(false),
            NodeTag::Str => {
                let voff = self.read_off(p) as usize;
                let (len, n) = read_varint(self.bytes, self.values + voff).expect("string length");
                let start = self.values + voff + n;
                ScalarRef::Str(
                    std::str::from_utf8(&self.bytes[start..start + len as usize]).unwrap_or(""),
                )
            }
            NodeTag::NumOra => {
                // inlined in the tree node: length byte then OraNum bytes
                let len = self.bytes[p] as usize;
                let start = p + 1;
                let d = OraNum::from_bytes(&self.bytes[start..start + len])
                    .expect("valid encoded number");
                ScalarRef::Num(match d.to_i64() {
                    Some(i) => JsonNumber::Int(i),
                    None => JsonNumber::Dec(d),
                })
            }
            NodeTag::NumDouble => {
                let v = f64::from_le_bytes(self.bytes[p..p + 8].try_into().unwrap());
                ScalarRef::Num(JsonNumber::from(v))
            }
            NodeTag::Object | NodeTag::Array => panic!("scalar() on container node"),
        }
    }

    /// `JsonDomGetFieldValue`: resolve the name to an instance field id,
    /// then binary-search the object's sorted id array (§4.2.1–4.2.2).
    fn get_field(&self, node: NodeRef, name: &str, hash: u32) -> Option<NodeRef> {
        let id = self.lookup_field_id(name, hash)?;
        self.get_field_by_id(node, id)
    }

    fn field_id(&self, name: &str, hash: u32) -> Option<FieldId> {
        self.lookup_field_id(name, hash)
    }

    fn has_field_ids(&self) -> bool {
        true
    }

    fn verify_field_id(&self, id: FieldId, name: &str, hash: u32) -> bool {
        (id as usize) < self.nfields
            && self.entry_hash(id as usize) == hash
            && self.field_name(id) == name
    }

    fn get_field_by_id(&self, node: NodeRef, id: FieldId) -> Option<NodeRef> {
        let (tag, count, base) = self.container_header(node);
        if tag != NodeTag::Object {
            return None;
        }
        let id_w = self.id_w();
        let (mut lo, mut hi) = (0usize, count);
        let mut probes: u64 = 1;
        while lo < hi {
            probes += 1;
            let mid = (lo + hi) / 2;
            if self.read_id(base + mid * id_w) < id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        fsdm_obs::counter!("oson.node.lookups").inc();
        fsdm_obs::counter!("oson.node.probes").add(probes);
        if lo < count && self.read_id(base + lo * id_w) == id {
            let offs = base + count * id_w;
            Some(self.read_off(offs + lo * self.off_w()) as NodeRef)
        } else {
            None
        }
    }

    /// Computed lazily on first use (queries that never look up a field
    /// by name — array-only paths — skip it entirely) and cached for the
    /// lifetime of the view.
    fn dict_fingerprint(&self) -> u64 {
        let cached = self.fingerprint.get();
        if cached != 0 {
            return cached;
        }
        // FNV-1a 64 over the dictionary region; never returns the 0
        // sentinel (the offset basis bit pattern is restored if it does)
        let mut fp: u64 = 0xcbf29ce484222325;
        for &b in &self.bytes[self.hash_arr..self.tree] {
            fp ^= b as u64;
            fp = fp.wrapping_mul(0x100000001b3);
        }
        if fp == 0 {
            fp = 0xcbf29ce484222325;
        }
        self.fingerprint.set(fp);
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use fsdm_json::{field_hash, parse};

    fn doc_of(text: &str) -> (Vec<u8>, fsdm_json::JsonValue) {
        let v = parse(text).unwrap();
        (encode(&v).unwrap(), v)
    }

    #[test]
    fn materialize_roundtrip() {
        let texts = [
            r#"{"a":1,"b":"s","c":true,"d":null,"e":[1,2,{"f":3.5}],"g":{}}"#,
            r#"{}"#,
            r#"{"x":[[],[[]]]}"#,
            r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
                {"name":"phone","price":100,"quantity":2},
                {"name":"ipad","price":350.86,"quantity":3}]}}"#,
        ];
        for t in texts {
            let (bytes, v) = doc_of(t);
            assert!(crate::decode(&bytes).unwrap().eq_unordered(&v), "roundtrip {t}");
        }
    }

    #[test]
    fn jump_navigation() {
        let (bytes, _) = doc_of(r#"{"a":{"b":[10,20,30]},"z":"end"}"#);
        let d = OsonDoc::new(&bytes).unwrap();
        let root = d.root();
        assert_eq!(d.kind(root), NodeKind::Object);
        let a = d.get_field(root, "a", field_hash("a")).unwrap();
        let b = d.get_field(a, "b", field_hash("b")).unwrap();
        assert_eq!(d.array_len(b), 3);
        // positional jump to the 3rd element without touching the others
        let e2 = d.array_element(b, 2);
        assert_eq!(d.scalar(e2), ScalarRef::Num(JsonNumber::Int(30)));
        assert!(d.get_field(root, "missing", field_hash("missing")).is_none());
    }

    #[test]
    fn field_ids_are_dictionary_ordinals() {
        let (bytes, _) = doc_of(r#"{"alpha":1,"beta":2,"gamma":3}"#);
        let d = OsonDoc::new(&bytes).unwrap();
        assert_eq!(d.num_fields(), 3);
        // every name resolves, ids are dense 0..n
        let mut ids: Vec<FieldId> = ["alpha", "beta", "gamma"]
            .iter()
            .map(|n| d.lookup_field_id(n, field_hash(n)).unwrap())
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        // and ids map back to their names
        for n in ["alpha", "beta", "gamma"] {
            let id = d.lookup_field_id(n, field_hash(n)).unwrap();
            assert_eq!(d.field_name(id), n);
        }
    }

    #[test]
    fn get_field_by_id_binary_search() {
        let (bytes, v) =
            doc_of(r#"{"f1":1,"f2":2,"f3":3,"f4":4,"f5":5,"f6":6,"f7":7,"f8":8,"f9":9}"#);
        let d = OsonDoc::new(&bytes).unwrap();
        for (k, expected) in v.as_object().unwrap().iter() {
            let id = d.field_id(k, field_hash(k)).unwrap();
            let node = d.get_field_by_id(d.root(), id).unwrap();
            assert_eq!(d.scalar(node), ScalarRef::Num(*expected.as_number().unwrap()));
        }
    }

    #[test]
    fn fingerprints_match_for_homogeneous_instances() {
        let (b1, _) = doc_of(r#"{"name":"a","price":1}"#);
        let (b2, _) = doc_of(r#"{"name":"b","price":2}"#);
        let (b3, _) = doc_of(r#"{"name":"c","cost":2}"#);
        let d1 = OsonDoc::new(&b1).unwrap();
        let d2 = OsonDoc::new(&b2).unwrap();
        let d3 = OsonDoc::new(&b3).unwrap();
        assert_eq!(d1.dict_fingerprint(), d2.dict_fingerprint());
        assert_ne!(d1.dict_fingerprint(), d3.dict_fingerprint());
    }

    #[test]
    fn object_entry_names() {
        let (bytes, _) = doc_of(r#"{"b":1,"a":2}"#);
        let d = OsonDoc::new(&bytes).unwrap();
        let mut names: Vec<&str> = (0..2).map(|i| d.object_entry(d.root(), i).0).collect();
        names.sort_unstable();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn rejects_corrupt_buffers() {
        assert!(OsonDoc::new(b"").is_err());
        assert!(OsonDoc::new(b"NOPE\x01\x00").is_err());
        let (mut bytes, _) = doc_of(r#"{"a":1}"#);
        bytes.truncate(bytes.len() - 1);
        assert!(OsonDoc::new(&bytes).is_err());
        let (mut bytes2, _) = doc_of(r#"{"a":1}"#);
        bytes2[4] = 99; // version
        assert!(OsonDoc::new(&bytes2).is_err());
    }

    #[test]
    fn numbers_preserve_decimal_exactness() {
        let (bytes, _) = doc_of(r#"{"d":350.86}"#);
        let d = OsonDoc::new(&bytes).unwrap();
        let n = d.get_field(d.root(), "d", field_hash("d")).unwrap();
        match d.scalar(n) {
            ScalarRef::Num(JsonNumber::Dec(x)) => {
                assert_eq!(x.to_decimal_string(), "350.86")
            }
            other => panic!("expected exact decimal, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_keys_survive() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        let bytes = encode(&v).unwrap();
        let back = crate::decode(&bytes).unwrap();
        let o = back.as_object().unwrap();
        assert_eq!(o.len(), 2);
    }
}

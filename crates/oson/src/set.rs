//! OSON **set encoding** — the paper's §7 future-work direction,
//! implemented: "the common field-id-name dictionary segments can be
//! extracted from each OSON instance and merged into a single dictionary
//! in the in-memory store. This would reduce memory consumption and
//! improve query performance because field name to id mapping can be done
//! once for the entire in-memory store."
//!
//! Unlike Dremel's columnar encoding, the set encoding keeps every
//! instance's own tree — so fully **heterogeneous** collections are fine:
//! a field may be a string in one document, a number in the next, an
//! object or array in a third (§7's explicit requirement). Only the
//! name→id mapping is hoisted out and shared.
//!
//! Per the paper's closing vision: the on-disk format stays the
//! self-contained instance encoding (`fsdm_oson::encode`); this module is
//! the non-self-contained, query-friendly **in-memory** companion.

use std::collections::HashMap;

use fsdm_json::{
    field_hash, FieldId, JsonDom, JsonNumber, JsonValue, NodeKind, NodeRef, OraNum, ScalarRef,
};

use crate::wire::{read_varint, write_varint, NodeTag};
use crate::{OsonError, Result};

/// The shared field-id-name dictionary of a set.
#[derive(Debug, Default)]
pub struct SetDictionary {
    /// (hash, name) sorted by (hash, name); ordinal = field id.
    entries: Vec<(u32, String)>,
    ids: HashMap<String, u32>,
}

impl SetDictionary {
    /// Number of distinct field names across the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no names are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Name of a field id.
    pub fn name(&self, id: FieldId) -> &str {
        &self.entries[id as usize].1
    }

    /// Resolve a name (binary search by hash, then name compare).
    pub fn lookup(&self, name: &str, hash: u32) -> Option<FieldId> {
        let mut lo = 0usize;
        let mut hi = self.entries.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.entries[mid].0 < hash {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        while lo < self.entries.len() && self.entries[lo].0 == hash {
            if self.entries[lo].1 == name {
                return Some(lo as u32);
            }
            lo += 1;
        }
        None
    }

    /// Bytes used by the dictionary.
    pub fn heap_size(&self) -> usize {
        self.entries.iter().map(|(_, n)| n.len() + 8).sum::<usize>()
    }
}

/// Builder: collect documents, then finalize into an [`OsonSet`].
#[derive(Default)]
pub struct OsonSetBuilder {
    docs: Vec<JsonValue>,
    names: HashMap<String, u32>,
}

impl OsonSetBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one document to the set.
    pub fn add(&mut self, doc: JsonValue) {
        collect_names(&doc, &mut self.names);
        self.docs.push(doc);
    }

    /// Number of documents added.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents were added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Assign global field ids and encode every instance against the
    /// shared dictionary.
    pub fn finalize(self) -> Result<OsonSet> {
        let mut entries: Vec<(u32, String)> = self.names.into_iter().map(|(n, h)| (h, n)).collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        if entries.len() > u32::MAX as usize / 2 {
            return Err(OsonError::limit("set dictionary too large"));
        }
        let mut ids = HashMap::with_capacity(entries.len());
        for (i, (_, n)) in entries.iter().enumerate() {
            ids.insert(n.clone(), i as u32);
        }
        let dict = SetDictionary { entries, ids };
        let mut instances = Vec::with_capacity(self.docs.len());
        for d in &self.docs {
            instances.push(encode_instance(d, &dict)?);
        }
        Ok(OsonSet { dict, instances })
    }
}

fn collect_names(v: &JsonValue, out: &mut HashMap<String, u32>) {
    match v {
        JsonValue::Object(o) => {
            for (k, c) in o.iter() {
                out.entry(k.to_string()).or_insert_with(|| field_hash(k));
                collect_names(c, out);
            }
        }
        JsonValue::Array(a) => {
            for c in a {
                collect_names(c, out);
            }
        }
        _ => {}
    }
}

/// One set-encoded instance: tree + values only (no dictionary — that is
/// the whole point). Offsets are 4-byte, field ids LEB128 varints against
/// the shared dictionary.
struct SetInstance {
    tree: Vec<u8>,
    values: Vec<u8>,
    root: u32,
}

/// A set-encoded in-memory collection.
pub struct OsonSet {
    dict: SetDictionary,
    instances: Vec<SetInstance>,
}

impl OsonSet {
    /// The shared dictionary.
    pub fn dictionary(&self) -> &SetDictionary {
        &self.dict
    }

    /// Number of documents in the set.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the set holds no documents.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// A [`JsonDom`] view over one document.
    pub fn doc(&self, i: usize) -> SetDoc<'_> {
        SetDoc { set: self, inst: &self.instances[i] }
    }

    /// Total heap bytes: shared dictionary once + per-instance tree/value
    /// segments. Compare against the sum of self-contained instance
    /// encodings to see §7's memory saving.
    pub fn heap_size(&self) -> usize {
        self.dict.heap_size()
            + self.instances.iter().map(|i| i.tree.len() + i.values.len()).sum::<usize>()
    }
}

fn encode_instance(doc: &JsonValue, dict: &SetDictionary) -> Result<SetInstance> {
    let mut tree = Vec::with_capacity(128);
    let mut values = Vec::with_capacity(128);
    let root = write_node(doc, dict, &mut tree, &mut values)?;
    Ok(SetInstance { tree, values, root })
}

fn write_node(
    v: &JsonValue,
    dict: &SetDictionary,
    tree: &mut Vec<u8>,
    values: &mut Vec<u8>,
) -> Result<u32> {
    Ok(match v {
        JsonValue::Null => {
            let off = tree.len() as u32;
            tree.push(NodeTag::Null as u8);
            off
        }
        JsonValue::Bool(b) => {
            let off = tree.len() as u32;
            tree.push(if *b { NodeTag::True as u8 } else { NodeTag::False as u8 });
            off
        }
        JsonValue::String(s) => {
            let voff = values.len() as u32;
            write_varint(values, s.len() as u64);
            values.extend_from_slice(s.as_bytes());
            let off = tree.len() as u32;
            tree.push(NodeTag::Str as u8);
            tree.extend_from_slice(&voff.to_le_bytes());
            off
        }
        JsonValue::Number(n) => {
            let off = tree.len() as u32;
            match n.to_oranum() {
                Some(d) => {
                    let b = d.as_bytes();
                    tree.push(NodeTag::NumOra as u8);
                    tree.push(b.len() as u8);
                    tree.extend_from_slice(b);
                }
                None => {
                    tree.push(NodeTag::NumDouble as u8);
                    tree.extend_from_slice(&n.to_f64().to_le_bytes());
                }
            }
            off
        }
        JsonValue::Array(a) => {
            let kids: Vec<u32> =
                a.iter().map(|c| write_node(c, dict, tree, values)).collect::<Result<_>>()?;
            let off = tree.len() as u32;
            tree.push(NodeTag::Array as u8);
            write_varint(tree, kids.len() as u64);
            for k in kids {
                tree.extend_from_slice(&k.to_le_bytes());
            }
            off
        }
        JsonValue::Object(o) => {
            let mut kids: Vec<(u32, u32)> = Vec::with_capacity(o.len());
            for (k, c) in o.iter() {
                let id = *dict
                    .ids
                    .get(k)
                    .ok_or_else(|| OsonError::usage(format!("name {k:?} not in set dictionary")))?;
                let coff = write_node(c, dict, tree, values)?;
                kids.push((id, coff));
            }
            kids.sort_by_key(|(id, _)| *id);
            let off = tree.len() as u32;
            tree.push(NodeTag::Object as u8);
            write_varint(tree, kids.len() as u64);
            // ids fixed-width u32 to keep binary search trivial (this is an
            // in-memory format; compactness is secondary to scan speed)
            for (id, _) in &kids {
                tree.extend_from_slice(&id.to_le_bytes());
            }
            for (_, coff) in &kids {
                tree.extend_from_slice(&coff.to_le_bytes());
            }
            off
        }
    })
}

/// [`JsonDom`] over one set-encoded instance. Field resolution goes
/// through the **shared** dictionary, so the engine's look-back cache
/// validates trivially for every document of the set — the "field name to
/// id mapping done once for the entire in-memory store" of §7.
pub struct SetDoc<'a> {
    set: &'a OsonSet,
    inst: &'a SetInstance,
}

impl SetDoc<'_> {
    fn u32_at(&self, pos: usize) -> u32 {
        u32::from_le_bytes(self.inst.tree[pos..pos + 4].try_into().unwrap())
    }

    fn header(&self, node: NodeRef) -> (NodeTag, usize) {
        let p = node as usize;
        (NodeTag::from_byte(self.inst.tree[p]), p + 1)
    }

    fn container(&self, node: NodeRef) -> (NodeTag, usize, usize) {
        let (tag, p) = self.header(node);
        let (count, n) = read_varint(&self.inst.tree, p).expect("count");
        (tag, count as usize, p + n)
    }
}

impl JsonDom for SetDoc<'_> {
    fn root(&self) -> NodeRef {
        self.inst.root as NodeRef
    }

    fn kind(&self, node: NodeRef) -> NodeKind {
        match self.header(node).0 {
            NodeTag::Object => NodeKind::Object,
            NodeTag::Array => NodeKind::Array,
            _ => NodeKind::Scalar,
        }
    }

    fn object_len(&self, node: NodeRef) -> usize {
        self.container(node).1
    }

    fn object_entry(&self, node: NodeRef, i: usize) -> (&str, NodeRef) {
        let (_, count, base) = self.container(node);
        let id = self.u32_at(base + i * 4);
        let child = self.u32_at(base + count * 4 + i * 4);
        (self.set.dict.name(id), child as NodeRef)
    }

    fn array_len(&self, node: NodeRef) -> usize {
        self.container(node).1
    }

    fn array_element(&self, node: NodeRef, i: usize) -> NodeRef {
        let (_, _, base) = self.container(node);
        self.u32_at(base + i * 4) as NodeRef
    }

    fn scalar(&self, node: NodeRef) -> ScalarRef<'_> {
        let (tag, p) = self.header(node);
        match tag {
            NodeTag::Null => ScalarRef::Null,
            NodeTag::True => ScalarRef::Bool(true),
            NodeTag::False => ScalarRef::Bool(false),
            NodeTag::NumOra => {
                let len = self.inst.tree[p] as usize;
                let d =
                    OraNum::from_bytes(&self.inst.tree[p + 1..p + 1 + len]).expect("valid number");
                ScalarRef::Num(match d.to_i64() {
                    Some(i) => JsonNumber::Int(i),
                    None => JsonNumber::Dec(d),
                })
            }
            NodeTag::NumDouble => {
                let v = f64::from_le_bytes(self.inst.tree[p..p + 8].try_into().unwrap());
                ScalarRef::Num(JsonNumber::from(v))
            }
            NodeTag::Str => {
                let voff = self.u32_at(p) as usize;
                let (len, n) = read_varint(&self.inst.values, voff).expect("len");
                let start = voff + n;
                ScalarRef::Str(
                    std::str::from_utf8(&self.inst.values[start..start + len as usize])
                        .unwrap_or(""),
                )
            }
            NodeTag::Object | NodeTag::Array => panic!("scalar() on container"),
        }
    }

    fn get_field(&self, node: NodeRef, name: &str, hash: u32) -> Option<NodeRef> {
        let id = self.set.dict.lookup(name, hash)?;
        self.get_field_by_id(node, id)
    }

    fn field_id(&self, name: &str, hash: u32) -> Option<FieldId> {
        self.set.dict.lookup(name, hash)
    }

    fn has_field_ids(&self) -> bool {
        true
    }

    /// Ids are global to the set: a cached id is valid for *every*
    /// instance — resolution happens once for the whole store (§7).
    fn verify_field_id(&self, id: FieldId, name: &str, hash: u32) -> bool {
        (id as usize) < self.set.dict.len() && {
            let (h, n) = &self.set.dict.entries[id as usize];
            *h == hash && n == name
        }
    }

    fn get_field_by_id(&self, node: NodeRef, id: FieldId) -> Option<NodeRef> {
        let (tag, count, base) = self.container(node);
        if tag != NodeTag::Object {
            return None;
        }
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.u32_at(base + mid * 4) < id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < count && self.u32_at(base + lo * 4) == id {
            Some(self.u32_at(base + count * 4 + lo * 4) as NodeRef)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    fn build(texts: &[&str]) -> OsonSet {
        let mut b = OsonSetBuilder::new();
        for t in texts {
            b.add(parse(t).unwrap());
        }
        b.finalize().unwrap()
    }

    #[test]
    fn roundtrip_per_document() {
        let texts = [
            r#"{"name":"a","price":1.5,"tags":["x","y"]}"#,
            r#"{"name":"b","price":2,"nested":{"deep":[true,null]}}"#,
            r#"{"other":42}"#,
        ];
        let set = build(&texts);
        assert_eq!(set.len(), 3);
        for (i, t) in texts.iter().enumerate() {
            let doc = set.doc(i);
            let back = doc.materialize(doc.root());
            assert!(back.eq_unordered(&parse(t).unwrap()), "doc {i}");
        }
    }

    #[test]
    fn heterogeneous_types_per_field_are_fine() {
        // §7: "field 'name' is a string … an integer … a nested object …
        // an array" — the per-instance trees make this trivial
        let set = build(&[
            r#"{"name":"s"}"#,
            r#"{"name":7}"#,
            r#"{"name":{"inner":1}}"#,
            r#"{"name":[1,2]}"#,
        ]);
        use fsdm_json::NodeKind::*;
        let kinds: Vec<_> = (0..4)
            .map(|i| {
                let d = set.doc(i);
                let n = d.get_field(d.root(), "name", field_hash("name")).unwrap();
                d.kind(n)
            })
            .collect();
        assert_eq!(kinds, vec![Scalar, Scalar, Object, Array]);
    }

    #[test]
    fn shared_dictionary_saves_memory_on_homogeneous_sets() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let docs: Vec<JsonValue> = (0..200)
            .map(|i| {
                fsdm_workloads_like_doc(&mut rng, i) // local helper below
            })
            .collect();
        let individual: usize = docs.iter().map(|d| crate::encode(d).unwrap().len()).sum();
        let mut b = OsonSetBuilder::new();
        for d in docs {
            b.add(d);
        }
        let set = b.finalize().unwrap();
        let shared = set.heap_size();
        assert!(
            (shared as f64) < individual as f64 * 0.85,
            "set {shared} vs individual {individual}"
        );
    }

    /// NOBENCH-ish doc without depending on fsdm-workloads (cycle).
    fn fsdm_workloads_like_doc(rng: &mut rand::rngs::StdRng, i: usize) -> JsonValue {
        use rand::Rng;
        let text = format!(
            r#"{{"customer_reference":"c{}","shipping_priority":{},"order_total_amount":{}.{:02},
                "warehouse_location":"w{}","delivery_instructions":"leave at door {}"}}"#,
            i,
            rng.gen_range(0..5),
            rng.gen_range(1..999),
            rng.gen_range(0..99),
            rng.gen_range(0..50),
            i
        );
        parse(&text).unwrap()
    }

    #[test]
    fn lookback_always_hits_across_the_set() {
        // the engine's verify step: resolve once, reuse on every doc
        let set = build(&[r#"{"a":1,"b":2}"#, r#"{"a":3}"#, r#"{"b":4,"a":5}"#]);
        let h = field_hash("a");
        let id = set.doc(0).field_id("a", h).unwrap();
        for i in 0..set.len() {
            assert!(set.doc(i).verify_field_id(id, "a", h), "doc {i}");
        }
    }

    #[test]
    fn empty_and_unknown_names() {
        let set = build(&[r#"{}"#]);
        let d = set.doc(0);
        assert_eq!(d.object_len(d.root()), 0);
        assert!(d.get_field(d.root(), "zz", field_hash("zz")).is_none());
        assert!(set.dictionary().is_empty());
    }
}

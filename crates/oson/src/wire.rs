//! Wire-level constants and primitives shared by the OSON encoder and
//! decoder.
//!
//! Header layout (all multi-byte integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "OSON"
//! 4       1     version (1)
//! 5       1     flags: bit0 = wide offsets (u32, else u16)
//!                      bit1 = wide field ids (u16, else u8)
//! 6       2     nfields (number of dictionary entries)
//! 8       w     root node offset (within tree segment)
//! 8+w     w     names blob length
//! 8+2w    w     tree segment length
//! 8+3w    w     value segment length
//! ```
//!
//! followed by: the hash-id array (`nfields` entries of
//! `hash:u32, name_off:w, name_len:(1|2)`), the names blob, the tree
//! segment, and the value segment. `w` is 2 or 4 per flag bit 0.

pub const MAGIC: [u8; 4] = *b"OSON";
pub const VERSION: u8 = 1;

pub const FLAG_WIDE_OFFSETS: u8 = 0b01;
pub const FLAG_WIDE_FIELD_IDS: u8 = 0b10;

/// Node-type tags carried in the low 3 bits of each tree-node header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTag {
    Object = 0,
    Array = 1,
    Str = 2,
    NumOra = 3,
    NumDouble = 4,
    True = 5,
    False = 6,
    Null = 7,
}

impl NodeTag {
    pub fn from_byte(b: u8) -> Option<NodeTag> {
        Some(match b & 0x07 {
            0 => NodeTag::Object,
            1 => NodeTag::Array,
            2 => NodeTag::Str,
            3 => NodeTag::NumOra,
            4 => NodeTag::NumDouble,
            5 => NodeTag::True,
            6 => NodeTag::False,
            7 => NodeTag::Null,
            _ => return None,
        })
    }
}

/// Append a LEB128 varint (used for container child counts, which are
/// usually < 128 and thus one byte).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            break;
        }
        buf.push(b | 0x80);
    }
}

/// Read a LEB128 varint; returns (value, bytes consumed).
pub fn read_varint(buf: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0;
    let mut n = 0;
    loop {
        let b = *buf.get(pos + n)?;
        v |= ((b & 0x7F) as u64) << shift;
        n += 1;
        if b & 0x80 == 0 {
            return Some((v, n));
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 255, 300, 65535, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, n) = read_varint(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_is_compact_for_small_counts() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 12);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn varint_rejects_truncation() {
        assert!(read_varint(&[0x80], 0).is_none());
        assert!(read_varint(&[], 0).is_none());
    }

    #[test]
    fn node_tags_roundtrip() {
        for t in [
            NodeTag::Object,
            NodeTag::Array,
            NodeTag::Str,
            NodeTag::NumOra,
            NodeTag::NumDouble,
            NodeTag::True,
            NodeTag::False,
            NodeTag::Null,
        ] {
            assert_eq!(NodeTag::from_byte(t as u8), Some(t));
        }
    }
}

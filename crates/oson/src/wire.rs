//! Wire-level constants and primitives shared by the OSON encoder and
//! decoder.
//!
//! Header layout (all multi-byte integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "OSON"
//! 4       1     version (1)
//! 5       1     flags: bit0 = wide offsets (u32, else u16)
//!                      bit1 = wide field ids (u16, else u8)
//! 6       2     nfields (number of dictionary entries)
//! 8       w     root node offset (within tree segment)
//! 8+w     w     names blob length
//! 8+2w    w     tree segment length
//! 8+3w    w     value segment length
//! ```
//!
//! followed by: the hash-id array (`nfields` entries of
//! `hash:u32, name_off:w, name_len:(1|2)`), the names blob, the tree
//! segment, and the value segment. `w` is 2 or 4 per flag bit 0.
//!
//! Every read primitive in this module is **checked**: out-of-range
//! positions return `None` instead of panicking, and offset/length
//! arithmetic goes through the widening helpers below rather than bare
//! `as` casts, so a corrupted buffer can never take down the process.
//! `fsdm-tidy` enforces this discipline (rules `no-panic`, `no-index`,
//! `no-as-int`) for this file and the other decode hot paths.

pub const MAGIC: [u8; 4] = *b"OSON";
pub const VERSION: u8 = 1;

pub const FLAG_WIDE_OFFSETS: u8 = 0b01;
pub const FLAG_WIDE_FIELD_IDS: u8 = 0b10;

/// Node-type tags carried in the low 3 bits of each tree-node header byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTag {
    Object = 0,
    Array = 1,
    Str = 2,
    NumOra = 3,
    NumDouble = 4,
    True = 5,
    False = 6,
    Null = 7,
}

impl NodeTag {
    /// Decode a node header byte. Total: the tag occupies the low 3 bits,
    /// so all 8 values are meaningful.
    pub fn from_byte(b: u8) -> NodeTag {
        match b & 0x07 {
            0 => NodeTag::Object,
            1 => NodeTag::Array,
            2 => NodeTag::Str,
            3 => NodeTag::NumOra,
            4 => NodeTag::NumDouble,
            5 => NodeTag::True,
            6 => NodeTag::False,
            _ => NodeTag::Null,
        }
    }

    /// The header byte value of this tag (inverse of [`NodeTag::from_byte`]).
    pub fn to_byte(self) -> u8 {
        match self {
            NodeTag::Object => 0,
            NodeTag::Array => 1,
            NodeTag::Str => 2,
            NodeTag::NumOra => 3,
            NodeTag::NumDouble => 4,
            NodeTag::True => 5,
            NodeTag::False => 6,
            NodeTag::Null => 7,
        }
    }
}

/// Widen a wire offset to an index. Infallible on every supported target
/// (`usize` is at least 32 bits); the saturation arm keeps the function
/// total without a panic path.
#[inline]
pub(crate) fn idx(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Widen a length to the u64 domain used by varints and metrics.
#[inline]
pub(crate) fn as_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Checked single-byte read.
#[inline]
pub(crate) fn read_u8(buf: &[u8], pos: usize) -> Option<u8> {
    buf.get(pos).copied()
}

/// Checked little-endian u16 read.
#[inline]
pub(crate) fn read_u16_le(buf: &[u8], pos: usize) -> Option<u16> {
    let b = buf.get(pos..pos.checked_add(2)?)?;
    Some(u16::from_le_bytes(b.try_into().ok()?))
}

/// Checked little-endian u32 read.
#[inline]
pub(crate) fn read_u32_le(buf: &[u8], pos: usize) -> Option<u32> {
    let b = buf.get(pos..pos.checked_add(4)?)?;
    Some(u32::from_le_bytes(b.try_into().ok()?))
}

/// Checked little-endian f64 read.
#[inline]
pub(crate) fn read_f64_le(buf: &[u8], pos: usize) -> Option<f64> {
    let b = buf.get(pos..pos.checked_add(8)?)?;
    Some(f64::from_le_bytes(b.try_into().ok()?))
}

/// Checked sub-slice `buf[pos..pos + len]`.
#[inline]
pub(crate) fn slice(buf: &[u8], pos: usize, len: usize) -> Option<&[u8]> {
    buf.get(pos..pos.checked_add(len)?)
}

/// Append a LEB128 varint (used for container child counts, which are
/// usually < 128 and thus one byte).
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = u8::try_from(v & 0x7F).unwrap_or(0x7F);
        v >>= 7;
        if v == 0 {
            buf.push(b);
            break;
        }
        buf.push(b | 0x80);
    }
}

/// Read a LEB128 varint; returns (value, bytes consumed).
pub fn read_varint(buf: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    let mut shift = 0;
    let mut n = 0;
    loop {
        let b = *buf.get(pos.checked_add(n)?)?;
        v |= u64::from(b & 0x7F) << shift;
        n += 1;
        if b & 0x80 == 0 {
            return Some((v, n));
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() -> Result<(), String> {
        for v in [0u64, 1, 127, 128, 255, 300, 65535, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, n) = read_varint(&buf, 0).ok_or("varint must read back")?;
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
        Ok(())
    }

    #[test]
    fn varint_is_compact_for_small_counts() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 12);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn varint_rejects_truncation() {
        assert!(read_varint(&[0x80], 0).is_none());
        assert!(read_varint(&[], 0).is_none());
    }

    #[test]
    fn varint_position_overflow_is_none() {
        assert!(read_varint(&[0x01], usize::MAX).is_none());
    }

    #[test]
    fn node_tags_roundtrip() {
        for t in [
            NodeTag::Object,
            NodeTag::Array,
            NodeTag::Str,
            NodeTag::NumOra,
            NodeTag::NumDouble,
            NodeTag::True,
            NodeTag::False,
            NodeTag::Null,
        ] {
            assert_eq!(NodeTag::from_byte(t.to_byte()), t);
        }
        // high bits are ignored
        assert_eq!(NodeTag::from_byte(0xF8 | 2), NodeTag::Str);
    }

    #[test]
    fn checked_reads_reject_out_of_range() {
        let buf = [1u8, 2, 3];
        assert_eq!(read_u8(&buf, 2), Some(3));
        assert_eq!(read_u8(&buf, 3), None);
        assert_eq!(read_u16_le(&buf, 1), Some(0x0302));
        assert_eq!(read_u16_le(&buf, 2), None);
        assert_eq!(read_u32_le(&buf, 0), None);
        assert_eq!(read_f64_le(&buf, 0), None);
        assert_eq!(slice(&buf, 1, 2), Some(&buf[1..3]));
        assert_eq!(slice(&buf, 1, 3), None);
        // position arithmetic can never wrap
        assert_eq!(read_u16_le(&buf, usize::MAX), None);
        assert_eq!(slice(&buf, usize::MAX, 2), None);
    }
}

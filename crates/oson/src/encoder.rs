//! OSON encoder: [`JsonValue`] → three-segment binary instance.
//!
//! The encoder makes two passes at most: it first serializes with wide
//! (4-byte) offsets, and if every segment fits comfortably in 16 bits it
//! re-serializes in the compact 2-byte-offset mode. Small documents —
//! the common case in the paper's customer collections — therefore pay
//! only two bytes per node reference.

use std::collections::HashMap;

use fsdm_json::{field_hash, JsonValue};

use crate::wire::{write_varint, NodeTag, FLAG_WIDE_FIELD_IDS, FLAG_WIDE_OFFSETS, MAGIC, VERSION};
use crate::{OsonError, Result};

/// How JSON numbers are encoded in the leaf-scalar-value segment (§4.2.3:
/// "By default, OSON uses the Oracle binary number format … JSON numbers
/// can also be encoded using IEEE double-precision format").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumberMode {
    /// Oracle NUMBER encoding — exact decimals, SQL-native (default).
    #[default]
    OraNum,
    /// IEEE 754 double precision (8 bytes, lossy for decimals).
    Double,
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncoderOptions {
    /// Scalar number representation.
    pub number_mode: NumberMode,
}

/// Encode with default options.
pub fn encode(v: &JsonValue) -> Result<Vec<u8>> {
    encode_with(v, EncoderOptions::default())
}

/// Encode with explicit options.
pub fn encode_with(v: &JsonValue, opts: EncoderOptions) -> Result<Vec<u8>> {
    let dict = Dictionary::build(v)?;
    // Pass 1: wide mode.
    let wide = Layout { wide_offsets: true, wide_ids: dict.names.len() > 256 };
    let (tree_w, values_w, root_w) = write_segments(v, &dict, wide, opts)?;
    let names_len = dict.names_blob.len();
    let fits_small = dict.names.len() <= 255
        && names_len < 0xFFF0
        && tree_w.len() < 0xFFF0
        && values_w.len() < 0xFFF0;
    let (layout, tree, values, root) = if fits_small {
        let small = Layout { wide_offsets: false, wide_ids: false };
        let (t, va, r) = write_segments(v, &dict, small, opts)?;
        (small, t, va, r)
    } else {
        (wide, tree_w, values_w, root_w)
    };
    let out = assemble(&dict, layout, &tree, &values, root);
    // the deep structural verifier must accept everything we emit; in
    // debug builds every encode proves it
    debug_assert!(
        crate::doc::OsonDoc::new(&out).and_then(|d| d.validate()).is_ok(),
        "encoder produced an OSON document the verifier rejects"
    );
    // per-segment byte accounting (§4 / Table 11); the enabled() guard
    // also skips the SegmentStats header re-parse in no-op mode
    if fsdm_obs::enabled() {
        if let Ok(s) = crate::stats::SegmentStats::of(&out) {
            fsdm_obs::counter!(fsdm_obs::catalog::OSON_ENCODE_DOCS).inc();
            fsdm_obs::histogram!(fsdm_obs::catalog::OSON_ENCODE_BYTES).record(out.len() as u64);
            fsdm_obs::counter!(fsdm_obs::catalog::OSON_SEGMENT_DICTIONARY_BYTES)
                .add(s.dictionary as u64);
            fsdm_obs::counter!(fsdm_obs::catalog::OSON_SEGMENT_TREE_BYTES).add(s.tree as u64);
            fsdm_obs::counter!(fsdm_obs::catalog::OSON_SEGMENT_VALUES_BYTES).add(s.values as u64);
        }
    }
    Ok(out)
}

/// Offset/id width configuration for one encode.
#[derive(Debug, Clone, Copy)]
struct Layout {
    wide_offsets: bool,
    wide_ids: bool,
}

impl Layout {
    fn off_w(&self) -> usize {
        if self.wide_offsets {
            4
        } else {
            2
        }
    }

    fn push_off(&self, buf: &mut Vec<u8>, v: u32) {
        if self.wide_offsets {
            buf.extend_from_slice(&v.to_le_bytes());
        } else {
            debug_assert!(v <= u16::MAX as u32);
            buf.extend_from_slice(&(v as u16).to_le_bytes());
        }
    }

    fn push_id(&self, buf: &mut Vec<u8>, v: u32) {
        if self.wide_ids {
            buf.extend_from_slice(&(v as u16).to_le_bytes());
        } else {
            debug_assert!(v <= u8::MAX as u32);
            buf.push(v as u8);
        }
    }
}

/// The field-id-name dictionary under construction: distinct names, their
/// hashes, sorted by hash (ties broken by name for determinism); the
/// ordinal after sorting is the field id.
struct Dictionary {
    /// (hash, name) sorted by (hash, name).
    names: Vec<(u32, String)>,
    /// name → field id.
    ids: HashMap<String, u32>,
    /// concatenated UTF-8 names.
    names_blob: Vec<u8>,
    /// (offset, len) of each name within `names_blob`, parallel to `names`.
    name_spans: Vec<(u32, u16)>,
}

impl Dictionary {
    fn build(root: &JsonValue) -> Result<Self> {
        let mut set: HashMap<String, u32> = HashMap::new();
        collect_names(root, &mut set)?;
        let mut names: Vec<(u32, String)> = set.into_iter().map(|(n, h)| (h, n)).collect();
        names.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        if names.len() > u16::MAX as usize {
            return Err(OsonError::limit("too many distinct field names (max 65535)"));
        }
        let mut ids = HashMap::with_capacity(names.len());
        let mut names_blob = Vec::new();
        let mut name_spans = Vec::with_capacity(names.len());
        for (id, (_, name)) in names.iter().enumerate() {
            ids.insert(name.clone(), id as u32);
            let off = names_blob.len() as u32;
            names_blob.extend_from_slice(name.as_bytes());
            name_spans.push((off, name.len() as u16));
        }
        Ok(Dictionary { names, ids, names_blob, name_spans })
    }
}

fn collect_names(v: &JsonValue, set: &mut HashMap<String, u32>) -> Result<()> {
    match v {
        JsonValue::Object(o) => {
            for (k, c) in o.iter() {
                if k.len() > u16::MAX as usize {
                    return Err(OsonError::limit("field name longer than 65535 bytes"));
                }
                set.entry(k.to_string()).or_insert_with(|| field_hash(k));
                collect_names(c, set)?;
            }
        }
        JsonValue::Array(a) => {
            for c in a {
                collect_names(c, set)?;
            }
        }
        _ => {}
    }
    Ok(())
}

/// Post-order serialization of the tree and value segments. Children are
/// written before their parent so the parent can embed their offsets.
fn write_segments(
    root: &JsonValue,
    dict: &Dictionary,
    layout: Layout,
    opts: EncoderOptions,
) -> Result<(Vec<u8>, Vec<u8>, u32)> {
    let mut tree = Vec::with_capacity(256);
    let mut values = Vec::with_capacity(256);
    let root_off = write_node(root, dict, layout, opts, &mut tree, &mut values)?;
    Ok((tree, values, root_off))
}

fn write_node(
    v: &JsonValue,
    dict: &Dictionary,
    layout: Layout,
    opts: EncoderOptions,
    tree: &mut Vec<u8>,
    values: &mut Vec<u8>,
) -> Result<u32> {
    match v {
        JsonValue::Null => {
            let off = tree.len() as u32;
            tree.push(NodeTag::Null as u8);
            Ok(off)
        }
        JsonValue::Bool(b) => {
            let off = tree.len() as u32;
            tree.push(if *b { NodeTag::True as u8 } else { NodeTag::False as u8 });
            Ok(off)
        }
        JsonValue::String(s) => {
            let voff = values.len() as u32;
            write_varint(values, s.len() as u64);
            values.extend_from_slice(s.as_bytes());
            let off = tree.len() as u32;
            tree.push(NodeTag::Str as u8);
            layout.push_off(tree, voff);
            Ok(off)
        }
        JsonValue::Number(n) => {
            // numbers are inlined in the tree node (no value-segment
            // indirection): a scalar read is one jump, and number-dense
            // documents become tree-segment-dominated, matching Table 11's
            // SensorData profile
            let off = tree.len() as u32;
            match opts.number_mode {
                NumberMode::OraNum => match n.to_oranum() {
                    Some(d) => {
                        let b = d.as_bytes();
                        tree.push(NodeTag::NumOra as u8);
                        tree.push(b.len() as u8);
                        tree.extend_from_slice(b);
                    }
                    // out of NUMBER range: fall back to double
                    None => {
                        tree.push(NodeTag::NumDouble as u8);
                        tree.extend_from_slice(&n.to_f64().to_le_bytes());
                    }
                },
                NumberMode::Double => {
                    tree.push(NodeTag::NumDouble as u8);
                    tree.extend_from_slice(&n.to_f64().to_le_bytes());
                }
            }
            Ok(off)
        }
        JsonValue::Array(a) => {
            let mut kid_offs = Vec::with_capacity(a.len());
            for c in a {
                kid_offs.push(write_node(c, dict, layout, opts, tree, values)?);
            }
            let off = tree.len() as u32;
            tree.push(NodeTag::Array as u8);
            write_varint(tree, a.len() as u64);
            for k in kid_offs {
                layout.push_off(tree, k);
            }
            Ok(off)
        }
        JsonValue::Object(o) => {
            let mut kids: Vec<(u32, u32)> = Vec::with_capacity(o.len());
            for (k, c) in o.iter() {
                let id = *dict.ids.get(k).expect("name collected");
                let coff = write_node(c, dict, layout, opts, tree, values)?;
                kids.push((id, coff));
            }
            // sorted by field id to enable binary search in the reader —
            // stable so duplicate keys keep document order among themselves
            kids.sort_by_key(|(id, _)| *id);
            let off = tree.len() as u32;
            tree.push(NodeTag::Object as u8);
            write_varint(tree, kids.len() as u64);
            for (id, _) in &kids {
                layout.push_id(tree, *id);
            }
            for (_, coff) in &kids {
                layout.push_off(tree, *coff);
            }
            Ok(off)
        }
    }
}

/// Glue header + dictionary + tree + values into the final buffer.
fn assemble(dict: &Dictionary, layout: Layout, tree: &[u8], values: &[u8], root: u32) -> Vec<u8> {
    let w = layout.off_w();
    let nlen_w = if layout.wide_offsets { 2 } else { 1 }; // name_len width
    let entry = 4 + w + nlen_w;
    let cap =
        8 + 4 * w + dict.names.len() * entry + dict.names_blob.len() + tree.len() + values.len();
    let mut out = Vec::with_capacity(cap);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    let mut flags = 0u8;
    if layout.wide_offsets {
        flags |= FLAG_WIDE_OFFSETS;
    }
    if layout.wide_ids {
        flags |= FLAG_WIDE_FIELD_IDS;
    }
    out.push(flags);
    out.extend_from_slice(&(dict.names.len() as u16).to_le_bytes());
    layout.push_off(&mut out, root);
    layout.push_off(&mut out, dict.names_blob.len() as u32);
    layout.push_off(&mut out, tree.len() as u32);
    layout.push_off(&mut out, values.len() as u32);
    for (i, (hash, _)) in dict.names.iter().enumerate() {
        out.extend_from_slice(&hash.to_le_bytes());
        let (noff, nlen) = dict.name_spans[i];
        layout.push_off(&mut out, noff);
        if layout.wide_offsets {
            out.extend_from_slice(&nlen.to_le_bytes());
        } else {
            out.push(nlen as u8);
        }
    }
    out.extend_from_slice(&dict.names_blob);
    out.extend_from_slice(tree);
    out.extend_from_slice(values);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    #[test]
    fn header_magic_and_version() {
        let b = encode(&parse(r#"{"a":1}"#).unwrap()).unwrap();
        assert_eq!(&b[0..4], b"OSON");
        assert_eq!(b[4], VERSION);
        assert_eq!(b[5] & FLAG_WIDE_OFFSETS, 0, "small doc uses narrow offsets");
    }

    #[test]
    fn field_names_stored_once() {
        // 100 objects with the same two field names: the names appear once
        let doc = format!(
            "[{}]",
            (0..100)
                .map(|i| format!(r#"{{"name":"x","price":{i}}}"#))
                .collect::<Vec<_>>()
                .join(",")
        );
        let v = parse(&doc).unwrap();
        let b = encode(&v).unwrap();
        let hay = b.windows(4).filter(|w| w == b"name").count();
        assert_eq!(hay, 1, "repeated field name must be deduplicated");
    }

    #[test]
    fn scalars_only_document() {
        for t in ["null", "true", "false", "42", "\"s\"", "3.5"] {
            let v = parse(t).unwrap();
            assert!(encode(&v).is_ok(), "scalar root {t}");
        }
    }

    #[test]
    fn double_mode_uses_eight_byte_values() {
        let v = parse(r#"{"n":1.5}"#).unwrap();
        let ora = encode(&v).unwrap();
        let dbl = encode_with(&v, EncoderOptions { number_mode: NumberMode::Double }).unwrap();
        // value segment: OraNum for 1.5 is len-prefixed 3 bytes (4 total);
        // the double is always 8
        assert!(dbl.len() >= ora.len());
    }

    #[test]
    fn large_document_switches_to_wide_offsets() {
        let big: String = format!(r#"{{"k":"{}"}}"#, "x".repeat(70_000));
        let b = encode(&parse(&big).unwrap()).unwrap();
        assert_ne!(b[5] & FLAG_WIDE_OFFSETS, 0);
    }
}

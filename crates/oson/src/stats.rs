//! Per-segment size statistics (reproduces Table 11's measurement).

use crate::doc::OsonDoc;
use crate::wire::{self, FLAG_WIDE_OFFSETS};
use crate::Result;

/// Byte sizes of the three OSON segments (plus fixed header) for one
/// encoded instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Header bytes (magic, flags, segment directory).
    pub header: usize,
    /// Field-id-name dictionary segment (hash-id array + names blob).
    pub dictionary: usize,
    /// Tree-node navigation segment.
    pub tree: usize,
    /// Leaf-scalar-value segment.
    pub values: usize,
}

impl SegmentStats {
    /// Measure an encoded OSON buffer.
    pub fn of(bytes: &[u8]) -> Result<SegmentStats> {
        // validate framing via the doc reader, then derive region sizes
        // (reads below are checked-but-infallible once `new` succeeds)
        let _doc = OsonDoc::new(bytes)?;
        let wide = wire::read_u8(bytes, 5).unwrap_or(0) & FLAG_WIDE_OFFSETS != 0;
        let w = if wide { 4usize } else { 2 };
        let nlen_w = if wide { 2usize } else { 1 };
        let nfields = usize::from(wire::read_u16_le(bytes, 6).unwrap_or(0));
        let rd = |pos: usize| -> usize {
            if wide {
                wire::idx(wire::read_u32_le(bytes, pos).unwrap_or(0))
            } else {
                usize::from(wire::read_u16_le(bytes, pos).unwrap_or(0))
            }
        };
        let header = 8 + 4 * w;
        let names_len = rd(8 + w);
        let tree = rd(8 + 2 * w);
        let values = rd(8 + 3 * w);
        let dictionary = nfields * (4 + w + nlen_w) + names_len;
        Ok(SegmentStats { header, dictionary, tree, values })
    }

    /// Total encoded size.
    pub fn total(&self) -> usize {
        self.header + self.dictionary + self.tree + self.values
    }

    /// Fraction of the total taken by the dictionary segment.
    pub fn dictionary_ratio(&self) -> f64 {
        self.dictionary as f64 / self.total() as f64
    }

    /// Fraction of the total taken by the tree-navigation segment.
    pub fn tree_ratio(&self) -> f64 {
        self.tree as f64 / self.total() as f64
    }

    /// Fraction of the total taken by the leaf-scalar-value segment.
    pub fn values_ratio(&self) -> f64 {
        self.values as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode;
    use fsdm_json::parse;

    #[test]
    fn stats_sum_to_buffer_size() {
        let v = parse(r#"{"a":1,"b":[{"c":"x"},{"c":"y"}]}"#).unwrap();
        let bytes = encode(&v).unwrap();
        let s = SegmentStats::of(&bytes).unwrap();
        assert_eq!(s.total(), bytes.len());
        assert!(s.dictionary > 0 && s.tree > 0 && s.values > 0);
    }

    #[test]
    fn ratios_sum_near_one_minus_header() {
        let v = parse(r#"{"k1":"v1","k2":"v2"}"#).unwrap();
        let bytes = encode(&v).unwrap();
        let s = SegmentStats::of(&bytes).unwrap();
        let sum = s.dictionary_ratio() + s.tree_ratio() + s.values_ratio();
        assert!((sum + s.header as f64 / s.total() as f64 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repetitive_arrays_shrink_dictionary_share() {
        // a single object vs. 500 identically-shaped objects: the
        // dictionary is constant, so its share must collapse — the Table 11
        // TwitterMsgArchive/SensorData effect
        let one = parse(r#"[{"fieldname_one":1,"fieldname_two":2}]"#).unwrap();
        let many_text = format!(
            "[{}]",
            (0..500)
                .map(|i| format!(r#"{{"fieldname_one":{i},"fieldname_two":{i}}}"#))
                .collect::<Vec<_>>()
                .join(",")
        );
        let many = parse(&many_text).unwrap();
        let s1 = SegmentStats::of(&encode(&one).unwrap()).unwrap();
        let s2 = SegmentStats::of(&encode(&many).unwrap()).unwrap();
        assert!(s2.dictionary_ratio() < s1.dictionary_ratio() / 10.0);
    }

    #[test]
    fn rejects_non_oson() {
        assert!(SegmentStats::of(b"JSON").is_err());
    }
}

//! The diagnostics model: stable codes, severities, spans, and the text
//! and JSON renderers shared by the prepare-time hook, EXPLAIN, and the
//! `fsdm-analyze` lint binary.

use std::fmt;

use fsdm_sqljson::Span;

/// How bad a finding is. `Error` findings fail the workload-lint CI
/// budget; warnings and infos are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: a tuning or materialization opportunity.
    Info,
    /// Suspicious: the query almost certainly does not mean this.
    Warning,
    /// Provably wrong against the observed collection.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The stable diagnostic codes. Numbering is append-only: codes are part
/// of the CI contract and never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// FA001: the path names a field no ingested document has.
    UnknownPath,
    /// FA002: a comparison or item method is inconsistent with every
    /// scalar kind observed at the path.
    TypeMismatch,
    /// FA003: a filter predicate that constant-folds to true or false.
    DeadPredicate,
    /// FA004: an array step over a path never observed as an array, or a
    /// strict-mode field step that would need an explicit `[*]`.
    MissingArrayStep,
    /// FA005: the path occurs in fewer documents than the `add_vc`
    /// frequency threshold.
    LowFrequencyPath,
    /// FA006: the path fails `JsonPath::is_streamable`, so TEXT storage
    /// falls back to DOM evaluation.
    UnstreamablePath,
    /// FA007: a singleton-scalar path eligible for `add_vc` that is not
    /// materialized as a virtual column.
    VcCandidate,
    /// PK001: a plan expression references a column position outside its
    /// input schema, or a scan/view names a table/view that does not
    /// exist.
    UnknownColumn,
    /// PK002: a predicate, aggregate argument, or join key whose operand
    /// types can never compare/compute under the executor's coercion
    /// rules.
    PlanTypeMismatch,
    /// PK003: a comparison against an operand that is always SQL NULL, so
    /// the predicate can never be true under three-valued logic.
    NullComparison,
    /// PK004: wrong scalar-function/aggregate arity, or duplicate output
    /// column names in a Project/GroupBy/Window schema.
    ArityMismatch,
    /// PK005: a Sort or window ORDER BY key that does not pin an order
    /// (empty key list, constant key, or duplicated key expression).
    UnstableOrderKey,
    /// PK006: an optimizer rewrite changed the plan's inferred schema,
    /// nullability, determinism, or parallel-safety class, or failed the
    /// idempotence check.
    RewriteDivergence,
    /// SN001: a function may acquire a lock it (transitively) already
    /// holds — a guaranteed deadlock on `std::sync::Mutex`.
    DoubleLock,
    /// SN002: two locks are acquired against the catalog-declared lock
    /// hierarchy (higher rank while holding a lower rank).
    LockOrderInversion,
    /// SN003: a lock guard is live across a call into the morsel
    /// executor, serializing the parallel pipeline.
    LockAcrossExecutor,
    /// SN004: a lock guard is live across a panic-capable site
    /// (`unwrap`, `expect`, slice indexing), risking mutex poisoning.
    LockAcrossPanic,
    /// SN005: an atomic operation's `Ordering` violates the
    /// catalog-declared discipline for that atomic (monotonic counters
    /// stay `Relaxed`; handshakes need `Acquire`/`Release`).
    AtomicOrdering,
    /// SN006: a scoped-worker closure captures a `&mut` binding that
    /// outlives the spawn site, aliasing it across workers.
    MutCaptureAliasing,
    /// SN007: a thread is spawned outside the morsel executor
    /// (`crates/store/src/parallel.rs`), bypassing the degree control.
    SpawnOutsideExecutor,
    /// SN008: a failpoint is fired with a name that is not a constant
    /// declared in `fsdm_fault::catalog` (or the catalog file and its
    /// `ALL` slice disagree), so the name could never be armed.
    UndeclaredFailpoint,
}

impl Code {
    /// The stable `FAnnn` identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Code::UnknownPath => "FA001",
            Code::TypeMismatch => "FA002",
            Code::DeadPredicate => "FA003",
            Code::MissingArrayStep => "FA004",
            Code::LowFrequencyPath => "FA005",
            Code::UnstreamablePath => "FA006",
            Code::VcCandidate => "FA007",
            Code::UnknownColumn => "PK001",
            Code::PlanTypeMismatch => "PK002",
            Code::NullComparison => "PK003",
            Code::ArityMismatch => "PK004",
            Code::UnstableOrderKey => "PK005",
            Code::RewriteDivergence => "PK006",
            Code::DoubleLock => "SN001",
            Code::LockOrderInversion => "SN002",
            Code::LockAcrossExecutor => "SN003",
            Code::LockAcrossPanic => "SN004",
            Code::AtomicOrdering => "SN005",
            Code::MutCaptureAliasing => "SN006",
            Code::SpawnOutsideExecutor => "SN007",
            Code::UndeclaredFailpoint => "SN008",
        }
    }

    /// Kebab-case name, matching the issue-tracker vocabulary.
    pub fn slug(&self) -> &'static str {
        match self {
            Code::UnknownPath => "unknown-path",
            Code::TypeMismatch => "type-mismatch",
            Code::DeadPredicate => "dead-predicate",
            Code::MissingArrayStep => "missing-array-step",
            Code::LowFrequencyPath => "low-frequency-path",
            Code::UnstreamablePath => "unstreamable-path",
            Code::VcCandidate => "vc-candidate",
            Code::UnknownColumn => "unknown-column",
            Code::PlanTypeMismatch => "plan-type-mismatch",
            Code::NullComparison => "null-comparison",
            Code::ArityMismatch => "arity-or-duplicate",
            Code::UnstableOrderKey => "unstable-order-key",
            Code::RewriteDivergence => "rewrite-divergence",
            Code::DoubleLock => "double-lock",
            Code::LockOrderInversion => "lock-order-inversion",
            Code::LockAcrossExecutor => "lock-across-executor",
            Code::LockAcrossPanic => "lock-across-panic",
            Code::AtomicOrdering => "atomic-ordering",
            Code::MutCaptureAliasing => "mut-capture-aliasing",
            Code::SpawnOutsideExecutor => "spawn-outside-executor",
            Code::UndeclaredFailpoint => "undeclared-failpoint",
        }
    }

    /// Severity a finding of this code carries.
    pub fn severity(&self) -> Severity {
        match self {
            Code::UnknownPath => Severity::Error,
            Code::TypeMismatch | Code::DeadPredicate | Code::MissingArrayStep => Severity::Warning,
            Code::LowFrequencyPath => Severity::Warning,
            Code::UnstreamablePath | Code::VcCandidate => Severity::Info,
            Code::UnknownColumn | Code::PlanTypeMismatch => Severity::Error,
            Code::ArityMismatch | Code::RewriteDivergence => Severity::Error,
            Code::NullComparison | Code::UnstableOrderKey => Severity::Warning,
            // every concurrency finding is a correctness hazard: there
            // is no advisory tier for a deadlock or a data race
            Code::DoubleLock
            | Code::LockOrderInversion
            | Code::LockAcrossExecutor
            | Code::LockAcrossPanic
            | Code::AtomicOrdering
            | Code::MutCaptureAliasing
            | Code::SpawnOutsideExecutor
            | Code::UndeclaredFailpoint => Severity::Error,
        }
    }
}

/// One finding of the semantic analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to `code.severity()`).
    pub severity: Severity,
    /// Location inside [`Diagnostic::path`] (the shared
    /// [`fsdm_sqljson::Span`] position type of the path parser).
    pub span: Span,
    /// Text of the path expression the finding is about.
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the analyzer can tell.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a finding at `span` of `path` with the code's default
    /// severity.
    pub fn new(code: Code, span: Span, path: &str, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            path: path.to_string(),
            message,
            help: None,
        }
    }

    /// Attach a help suggestion.
    pub fn with_help(mut self, help: &str) -> Diagnostic {
        self.help = Some(help.to_string());
        self
    }

    /// The offending snippet of the path text, char-boundary safe.
    pub fn snippet(&self) -> &str {
        self.span.slice(&self.path)
    }

    /// One JSON object (the lint binary's `--json` element shape).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        push_kv(&mut out, "code", self.code.id());
        out.push_str(", ");
        push_kv(&mut out, "name", self.code.slug());
        out.push_str(", ");
        push_kv(&mut out, "severity", self.severity.label());
        out.push_str(&format!(", \"start\": {}, \"end\": {}, ", self.span.start, self.span.end));
        push_kv(&mut out, "path", &self.path);
        out.push_str(", ");
        push_kv(&mut out, "message", &self.message);
        if let Some(h) = &self.help {
            out.push_str(", ");
            push_kv(&mut out, "help", h);
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    /// Compiler-style text rendering:
    ///
    /// ```text
    /// FA001 error [unknown-path]: no ingested document has field `persno` — $.persno (near `.persno`)
    ///   help: check the field name against the DataGuide
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}]: {} — {}",
            self.code.id(),
            self.severity.label(),
            self.code.slug(),
            self.message,
            self.path
        )?;
        let near = self.snippet();
        if !near.is_empty() && near != self.path {
            write!(f, " (near `{near}`)")?;
        }
        if let Some(h) = &self.help {
            write!(f, "\n  help: {h}")?;
        }
        Ok(())
    }
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\": \"");
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a batch of findings as a text report, one finding per
/// paragraph, sorted most severe first (stable within a severity).
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by_key(|d| std::cmp::Reverse(d.severity));
    let mut out = String::new();
    for d in sorted {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Render a batch of findings as a JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&d.render_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic::new(
            Code::UnknownPath,
            Span::new(1, 8),
            "$.persno",
            "no ingested document has field `persno`".to_string(),
        )
        .with_help("check the field name against the DataGuide")
    }

    #[test]
    fn codes_are_stable() {
        let all = [
            Code::UnknownPath,
            Code::TypeMismatch,
            Code::DeadPredicate,
            Code::MissingArrayStep,
            Code::LowFrequencyPath,
            Code::UnstreamablePath,
            Code::VcCandidate,
            Code::UnknownColumn,
            Code::PlanTypeMismatch,
            Code::NullComparison,
            Code::ArityMismatch,
            Code::UnstableOrderKey,
            Code::RewriteDivergence,
            Code::DoubleLock,
            Code::LockOrderInversion,
            Code::LockAcrossExecutor,
            Code::LockAcrossPanic,
            Code::AtomicOrdering,
            Code::MutCaptureAliasing,
            Code::SpawnOutsideExecutor,
            Code::UndeclaredFailpoint,
        ];
        let ids: Vec<&str> = all.iter().map(|c| c.id()).collect();
        assert_eq!(
            ids,
            vec![
                "FA001", "FA002", "FA003", "FA004", "FA005", "FA006", "FA007", "PK001", "PK002",
                "PK003", "PK004", "PK005", "PK006", "SN001", "SN002", "SN003", "SN004", "SN005",
                "SN006", "SN007", "SN008",
            ]
        );
        for c in all {
            assert!(c.slug().chars().all(|ch| ch.is_ascii_lowercase() || ch == '-'));
        }
        assert_eq!(Code::UnknownPath.severity(), Severity::Error);
        assert_eq!(Code::UnknownColumn.severity(), Severity::Error);
        assert_eq!(Code::DoubleLock.severity(), Severity::Error);
        assert_eq!(Code::SpawnOutsideExecutor.severity(), Severity::Error);
        assert!(Severity::Error > Severity::Warning && Severity::Warning > Severity::Info);
    }

    #[test]
    fn code_registry_has_no_duplicates_or_gaps() {
        // same discipline as the obs metric catalog: each series is
        // contiguous from 001 and every id/slug is unique
        let all = [
            Code::UnknownPath,
            Code::TypeMismatch,
            Code::DeadPredicate,
            Code::MissingArrayStep,
            Code::LowFrequencyPath,
            Code::UnstreamablePath,
            Code::VcCandidate,
            Code::UnknownColumn,
            Code::PlanTypeMismatch,
            Code::NullComparison,
            Code::ArityMismatch,
            Code::UnstableOrderKey,
            Code::RewriteDivergence,
            Code::DoubleLock,
            Code::LockOrderInversion,
            Code::LockAcrossExecutor,
            Code::LockAcrossPanic,
            Code::AtomicOrdering,
            Code::MutCaptureAliasing,
            Code::SpawnOutsideExecutor,
            Code::UndeclaredFailpoint,
        ];
        for series in ["FA", "PK", "SN"] {
            let mut nums: Vec<u32> = all
                .iter()
                .map(|c| c.id())
                .filter(|id| id.starts_with(series))
                .filter_map(|id| id[2..].parse().ok())
                .collect();
            nums.sort_unstable();
            let expect: Vec<u32> = (1..=nums.len() as u32).collect();
            assert_eq!(nums, expect, "{series} series must be contiguous from 001");
        }
        let mut slugs: Vec<&str> = all.iter().map(|c| c.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), all.len(), "slugs must be unique");
    }

    #[test]
    fn text_rendering_has_code_path_and_help() {
        let text = sample().to_string();
        assert!(text.starts_with("FA001 error [unknown-path]:"), "{text}");
        assert!(text.contains("$.persno"), "{text}");
        assert!(text.contains("near `.persno`"), "{text}");
        assert!(text.contains("help: check the field name"), "{text}");
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut d = sample();
        d.message = "odd \"quote\"".to_string();
        let json = d.render_json();
        assert!(json.contains("\"code\": \"FA001\""), "{json}");
        assert!(json.contains("\"severity\": \"error\""), "{json}");
        assert!(json.contains("odd \\\"quote\\\""), "{json}");
        assert!(json.contains("\"start\": 1, \"end\": 8"), "{json}");
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'), "{arr}");
        assert_eq!(arr.matches("\"code\"").count(), 2);
    }

    #[test]
    fn batch_text_sorts_errors_first() {
        let info = Diagnostic::new(Code::VcCandidate, Span::point(0), "$.a", "vc".to_string());
        let err = sample();
        let text = render_text(&[info, err]);
        let first = text.lines().next().unwrap_or_default();
        assert!(first.starts_with("FA001"), "{text}");
    }
}

//! The analysis itself: walking a compiled [`JsonPath`] in lockstep with
//! the collection's [`DataGuide`] and reporting FA001–FA007 findings.
//!
//! The walk mirrors how [`fsdm_dataguide::GuideNode::observe`] records
//! documents: field steps descend `children`, array steps stay at the
//! same node (array elements contribute to the node itself), filters and
//! methods never move. A field step that matches no child of any
//! reachable node therefore proves the path empty over every ingested
//! document — the FA001 criterion, which is also what the optimizer's
//! dead-predicate pruning relies on.

use std::collections::BTreeSet;

use fsdm_dataguide::{DataGuide, GuideNode, ScalarKind};
use fsdm_json::JsonValue;
use fsdm_sqljson::path::{path_step_text, CmpOp, Method, Mode, Operand, Predicate, Span, Step};
use fsdm_sqljson::JsonPath;

use crate::diag::{Code, Diagnostic, Severity};

/// Knobs of one analysis run, usually derived from the target table.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Paths occurring in fewer than this percentage of documents get
    /// FA005 (and are excluded from FA007). Mirrors the `add_vc`
    /// `min_frequency_pct` argument.
    pub vc_frequency_pct: i64,
    /// The column is stored as JSON text, so unstreamable paths (FA006)
    /// fall back to DOM evaluation.
    pub text_storage: bool,
    /// Normalized texts of paths already materialized as virtual
    /// columns (suppresses FA007).
    pub materialized_vc_paths: BTreeSet<String>,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            vc_frequency_pct: 10,
            text_storage: false,
            materialized_vc_paths: BTreeSet::new(),
        }
    }
}

/// The canonical text of a plain field-chain path (`$.a."b c"`), the
/// form `add_vc` synthesizes. `None` when the path has any non-field
/// step.
pub fn normalized_field_path(path: &JsonPath) -> Option<String> {
    let mut out = String::from("$");
    for s in &path.steps {
        match s {
            Step::Field { name, .. } => out.push_str(&path_step_text(name)),
            _ => return None,
        }
    }
    Some(out)
}

/// True when evaluating `path` over every document the guide observed
/// provably yields no items: some field step names a child no ingested
/// document has (the FA001 criterion). Never true for an empty guide.
pub fn path_provably_empty(guide: &DataGuide, path: &JsonPath) -> bool {
    if guide.doc_count == 0 {
        return false;
    }
    advance_all(&[&guide.root], &path.steps).is_none()
}

/// Check one compiled path against the guide. An empty guide yields no
/// findings (nothing is known about the collection yet).
pub fn analyze_path(guide: &DataGuide, path: &JsonPath, cfg: &AnalyzerConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if guide.doc_count == 0 {
        return diags;
    }
    fsdm_obs::counter!(fsdm_obs::catalog::ANALYZE_PATHS_CHECKED).inc();
    let text = path.text();
    let whole = Span::new(0, text.len());
    let mut nodes: Vec<&GuideNode> = vec![&guide.root];
    let mut prev_was_array = false;
    for (i, step) in path.steps.iter().enumerate() {
        let span = path.step_span(i);
        match step {
            Step::Field { name, .. } => {
                if path.mode == Mode::Strict
                    && !prev_was_array
                    && nodes.iter().any(|n| n.array.seen())
                {
                    diags.push(
                        Diagnostic::new(
                            Code::MissingArrayStep,
                            span,
                            text,
                            format!(
                                "strict mode does not unwrap arrays, and `{name}` is reached \
                                 through a path observed as an array"
                            ),
                        )
                        .with_help("insert [*] before the field step, or use lax mode"),
                    );
                }
                match advance(&nodes, step) {
                    Some(next) => nodes = next,
                    None => {
                        diags.push(
                            Diagnostic::new(
                                Code::UnknownPath,
                                span,
                                text,
                                format!("no ingested document has field `{name}` here"),
                            )
                            .with_help(
                                "check the field name against the DataGuide ($DG rows) — \
                                 the path can never match",
                            ),
                        );
                        count(&diags);
                        return diags;
                    }
                }
                prev_was_array = false;
            }
            Step::FieldWildcard => {
                match advance(&nodes, step) {
                    Some(next) => nodes = next,
                    None => {
                        diags.push(
                            Diagnostic::new(
                                Code::UnknownPath,
                                span,
                                text,
                                "no ingested document has object members here".to_string(),
                            )
                            .with_help("the .* step can never yield items"),
                        );
                        count(&diags);
                        return diags;
                    }
                }
                prev_was_array = false;
            }
            Step::Array(_) | Step::ArrayWildcard => {
                if !nodes.iter().any(|n| n.array.seen() || n.scalars.any_under_array()) {
                    diags.push(
                        Diagnostic::new(
                            Code::MissingArrayStep,
                            span,
                            text,
                            "array step over a path never observed as an array".to_string(),
                        )
                        .with_help(
                            "lax mode wraps the scalar, so this may still match one item — \
                             drop the array step or check the ingested shape",
                        ),
                    );
                }
                prev_was_array = true;
            }
            Step::Filter(pred) => {
                let before = diags.len();
                let truth = check_pred(pred, &nodes, span, text, &mut diags);
                let explained = diags[before..].iter().any(|d| d.code == Code::DeadPredicate);
                match truth {
                    Tri::True if !explained => diags.push(
                        Diagnostic::new(
                            Code::DeadPredicate,
                            span,
                            text,
                            "filter is always true for every ingested document".to_string(),
                        )
                        .with_help("remove the filter"),
                    ),
                    Tri::False if !explained => diags.push(
                        Diagnostic::new(
                            Code::DeadPredicate,
                            span,
                            text,
                            "filter can never match any ingested document".to_string(),
                        )
                        .with_help("the predicate constant-folds to false against the DataGuide"),
                    ),
                    _ => {}
                }
            }
            Step::Method(m) => {
                check_method(*m, &nodes, span, text, &mut diags);
            }
        }
    }

    // frequencies are relative to the walked sample: collections loaded
    // through the structure-signature fast path only re-walk novel
    // structures, so `doc_count` overstates the per-node denominators
    let freq = nodes.iter().map(|n| n.frequency_pct(guide.sampled_docs())).max().unwrap_or(0);
    if freq < cfg.vc_frequency_pct {
        diags.push(
            Diagnostic::new(
                Code::LowFrequencyPath,
                whole,
                text,
                format!(
                    "path occurs in only ~{freq}% of documents (add_vc threshold is {}%)",
                    cfg.vc_frequency_pct
                ),
            )
            .with_help("guard the query with JSON_EXISTS to skip the documents without it"),
        );
    } else if let Some(canon) = normalized_field_path(path) {
        let singleton = nodes.iter().any(|n| n.is_singleton_scalar());
        if singleton && !path.steps.is_empty() && !cfg.materialized_vc_paths.contains(&canon) {
            diags.push(
                Diagnostic::new(
                    Code::VcCandidate,
                    whole,
                    text,
                    format!("singleton scalar path `{canon}` is not materialized"),
                )
                .with_help("add_vc would expose it as a virtual column (paper §3.3.1)"),
            );
        }
    }
    if cfg.text_storage && !path.is_streamable() {
        diags.push(
            Diagnostic::new(
                Code::UnstreamablePath,
                whole,
                text,
                "path is not streamable; TEXT storage falls back to DOM evaluation".to_string(),
            )
            .with_help(
                "only plain field steps and absolute array indexes stream (paper §5.1) — \
                 or store the collection as OSON",
            ),
        );
    }
    count(&diags);
    diags
}

/// Record the per-severity diagnostic counters.
fn count(diags: &[Diagnostic]) {
    for d in diags {
        match d.severity {
            Severity::Error => fsdm_obs::counter!(fsdm_obs::catalog::ANALYZE_DIAG_ERRORS).inc(),
            Severity::Warning => fsdm_obs::counter!(fsdm_obs::catalog::ANALYZE_DIAG_WARNINGS).inc(),
            Severity::Info => fsdm_obs::counter!(fsdm_obs::catalog::ANALYZE_DIAG_INFOS).inc(),
        }
    }
}

/// Move one step through the guide. `None` means provably empty: a
/// field step that matches no child of any reachable node.
fn advance<'g>(nodes: &[&'g GuideNode], step: &Step) -> Option<Vec<&'g GuideNode>> {
    match step {
        Step::Field { name, .. } => {
            let next: Vec<&GuideNode> = nodes.iter().filter_map(|n| n.child(name)).collect();
            if next.is_empty() {
                None
            } else {
                Some(next)
            }
        }
        Step::FieldWildcard => {
            let next: Vec<&GuideNode> = nodes.iter().flat_map(|n| n.children.values()).collect();
            if next.is_empty() {
                None
            } else {
                Some(next)
            }
        }
        // array elements live at the same guide node; filters and
        // methods never move
        Step::Array(_) | Step::ArrayWildcard | Step::Filter(_) | Step::Method(_) => {
            Some(nodes.to_vec())
        }
    }
}

/// [`advance`] over a whole step sequence.
fn advance_all<'g>(nodes: &[&'g GuideNode], steps: &[Step]) -> Option<Vec<&'g GuideNode>> {
    let mut cur = nodes.to_vec();
    for s in steps {
        cur = advance(&cur, s)?;
    }
    Some(cur)
}

/// Three-valued outcome of folding a predicate against the guide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Unknown,
    True,
    False,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

fn check_pred(
    pred: &Predicate,
    nodes: &[&GuideNode],
    span: Span,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) -> Tri {
    match pred {
        Predicate::And(l, r) => {
            let a = check_pred(l, nodes, span, text, diags);
            let b = check_pred(r, nodes, span, text, diags);
            match (a, b) {
                (Tri::False, _) | (_, Tri::False) => Tri::False,
                (Tri::True, Tri::True) => Tri::True,
                _ => Tri::Unknown,
            }
        }
        Predicate::Or(l, r) => {
            let a = check_pred(l, nodes, span, text, diags);
            let b = check_pred(r, nodes, span, text, diags);
            match (a, b) {
                (Tri::True, _) | (_, Tri::True) => Tri::True,
                (Tri::False, Tri::False) => Tri::False,
                _ => Tri::Unknown,
            }
        }
        Predicate::Not(inner) => check_pred(inner, nodes, span, text, diags).not(),
        Predicate::Exists(steps) => {
            if advance_all(nodes, steps).is_none() {
                diags.push(
                    Diagnostic::new(
                        Code::DeadPredicate,
                        span,
                        text,
                        format!(
                            "exists(@{}) is false for every ingested document",
                            steps_text(steps)
                        ),
                    )
                    .with_help("the relative path names a field no document has"),
                );
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Predicate::Cmp(lhs, op, rhs) => check_cmp(lhs, *op, rhs, nodes, span, text, diags),
    }
}

fn check_cmp(
    lhs: &Operand,
    op: CmpOp,
    rhs: &Operand,
    nodes: &[&GuideNode],
    span: Span,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) -> Tri {
    // resolve path operands; a dead operand makes the comparison dead
    for side in [lhs, rhs] {
        if let Operand::Path(steps) = side {
            if advance_all(nodes, steps).is_none() {
                diags.push(
                    Diagnostic::new(
                        Code::DeadPredicate,
                        span,
                        text,
                        format!(
                            "comparison operand @{} never occurs in any ingested document",
                            steps_text(steps)
                        ),
                    )
                    .with_help("an empty operand makes the comparison false for every row"),
                );
                return Tri::False;
            }
        }
    }
    match (lhs, rhs) {
        (Operand::Lit(a), Operand::Lit(b)) => match fold_cmp(a, op, b) {
            Some(v) => {
                diags.push(
                    Diagnostic::new(
                        Code::DeadPredicate,
                        span,
                        text,
                        format!("comparison of two constants is always {v}"),
                    )
                    .with_help("replace the comparison with its constant value"),
                );
                if v {
                    Tri::True
                } else {
                    Tri::False
                }
            }
            None => Tri::Unknown,
        },
        (Operand::Path(steps), Operand::Lit(lit)) | (Operand::Lit(lit), Operand::Path(steps)) => {
            if let Some(resolved) = advance_all(nodes, steps) {
                check_lit_against_nodes(lit, op, &resolved, steps, span, text, diags);
            }
            Tri::Unknown
        }
        (Operand::Path(_), Operand::Path(_)) => Tri::Unknown,
    }
}

/// FA002: a literal whose kind was never observed at the operand path.
fn check_lit_against_nodes(
    lit: &JsonValue,
    op: CmpOp,
    resolved: &[&GuideNode],
    steps: &[Step],
    span: Span,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let observed: BTreeSet<ScalarKind> =
        resolved.iter().flat_map(|n| n.scalars.observed_kinds()).collect();
    let containers_only =
        observed.is_empty() && resolved.iter().any(|n| n.object.seen() || n.array.seen());
    if containers_only {
        diags.push(
            Diagnostic::new(
                Code::TypeMismatch,
                span,
                text,
                format!(
                    "@{} only ever holds containers, never a comparable scalar",
                    steps_text(steps)
                ),
            )
            .with_help("descend to a scalar field before comparing"),
        );
        return;
    }
    if observed.is_empty() {
        return;
    }
    let lit_kind = match lit {
        JsonValue::String(_) => ScalarKind::String,
        JsonValue::Number(_) => ScalarKind::Number,
        JsonValue::Bool(_) => ScalarKind::Boolean,
        JsonValue::Null => ScalarKind::Null,
        _ => return,
    };
    let string_op = matches!(op, CmpOp::StartsWith | CmpOp::HasSubstring);
    if string_op {
        if lit_kind != ScalarKind::String || !observed.contains(&ScalarKind::String) {
            diags.push(
                Diagnostic::new(
                    Code::TypeMismatch,
                    span,
                    text,
                    format!(
                        "string operator on @{} which only holds {}",
                        steps_text(steps),
                        kinds_text(&observed)
                    ),
                )
                .with_help("starts with / has substring require string operands"),
            );
        }
        return;
    }
    if !observed.contains(&lit_kind) {
        diags.push(
            Diagnostic::new(
                Code::TypeMismatch,
                span,
                text,
                format!(
                    "comparison with a {} literal, but @{} only holds {}",
                    lit_kind.name(),
                    steps_text(steps),
                    kinds_text(&observed)
                ),
            )
            .with_help("the comparison never matches any observed value kind"),
        );
    }
}

/// FA002 for item methods: the method's input kind was never observed.
fn check_method(
    m: Method,
    nodes: &[&GuideNode],
    span: Span,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let observed: BTreeSet<ScalarKind> =
        nodes.iter().flat_map(|n| n.scalars.observed_kinds()).collect();
    if observed.is_empty() {
        return;
    }
    let ok = match m {
        Method::Type | Method::Size | Method::StringM => true,
        Method::Number | Method::Abs | Method::Ceiling | Method::Floor | Method::Double => {
            observed.contains(&ScalarKind::Number) || observed.contains(&ScalarKind::String)
        }
        Method::Upper | Method::Lower | Method::Length => observed.contains(&ScalarKind::String),
    };
    if !ok {
        diags.push(
            Diagnostic::new(
                Code::TypeMismatch,
                span,
                text,
                format!(
                    ".{}() applied to a path that only holds {}",
                    m.name(),
                    kinds_text(&observed)
                ),
            )
            .with_help("the item method yields no value for any observed kind"),
        );
    }
}

/// Fold a literal-vs-literal comparison. `None` when the semantics are
/// not decidable here (kept conservative).
fn fold_cmp(a: &JsonValue, op: CmpOp, b: &JsonValue) -> Option<bool> {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (a, b) {
        (JsonValue::Number(x), JsonValue::Number(y)) => Some(x.total_cmp(y)),
        (JsonValue::String(x), JsonValue::String(y)) => Some(x.cmp(y)),
        (JsonValue::Bool(x), JsonValue::Bool(y)) => Some(x.cmp(y)),
        (JsonValue::Null, JsonValue::Null) => Some(Ordering::Equal),
        _ => None,
    };
    match op {
        CmpOp::Eq => Some(ord == Some(std::cmp::Ordering::Equal)),
        CmpOp::Ne => Some(ord != Some(std::cmp::Ordering::Equal)),
        CmpOp::Lt => Some(ord == Some(std::cmp::Ordering::Less)),
        CmpOp::Le => Some(matches!(ord, Some(o) if o != std::cmp::Ordering::Greater)),
        CmpOp::Gt => Some(ord == Some(std::cmp::Ordering::Greater)),
        CmpOp::Ge => Some(matches!(ord, Some(o) if o != std::cmp::Ordering::Less)),
        CmpOp::StartsWith => match (a, b) {
            (JsonValue::String(x), JsonValue::String(y)) => Some(x.starts_with(y.as_str())),
            _ => Some(false),
        },
        CmpOp::HasSubstring => match (a, b) {
            (JsonValue::String(x), JsonValue::String(y)) => Some(x.contains(y.as_str())),
            _ => Some(false),
        },
    }
}

/// Relative-path text for messages (`.a.b[*]` shapes; filters elided).
fn steps_text(steps: &[Step]) -> String {
    let mut out = String::new();
    for s in steps {
        match s {
            Step::Field { name, .. } => out.push_str(&path_step_text(name)),
            Step::FieldWildcard => out.push_str(".*"),
            Step::Array(_) => out.push_str("[..]"),
            Step::ArrayWildcard => out.push_str("[*]"),
            Step::Filter(_) => out.push_str("?(..)"),
            Step::Method(m) => {
                out.push('.');
                out.push_str(m.name());
                out.push_str("()");
            }
        }
    }
    out
}

fn kinds_text(kinds: &BTreeSet<ScalarKind>) -> String {
    let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
    names.join("/")
}

//! `fsdm-analyze`: DataGuide-powered semantic static analysis of
//! SQL/JSON path expressions (paper §3's "query validation" use case).
//!
//! The engine accepts any well-formed path and only discovers at run
//! time that `$.persno` matches nothing in a million documents. This
//! crate closes that gap: it walks a compiled [`fsdm_sqljson::JsonPath`]
//! in lockstep with the collection's [`fsdm_dataguide::DataGuide`] and
//! reports, before execution:
//!
//! | code  | name               | meaning                                          |
//! |-------|--------------------|--------------------------------------------------|
//! | FA001 | unknown-path       | no ingested document has the path (error)        |
//! | FA002 | type-mismatch      | comparison/method vs. observed kinds (warning)   |
//! | FA003 | dead-predicate     | filter constant-folds to true/false (warning)    |
//! | FA004 | missing-array-step | array step shape hazards, lax and strict (warn)  |
//! | FA005 | low-frequency-path | below the `add_vc` threshold (warning)           |
//! | FA006 | unstreamable-path  | TEXT storage falls back to DOM (info)            |
//! | FA007 | vc-candidate       | `add_vc`-eligible but not materialized (info)    |
//!
//! FA001 doubles as the optimizer's proof obligation: when
//! [`path_provably_empty`] holds, a predicate over the path is false for
//! every row, and the scan below it can be rewritten to an empty scan.
//! Statement-level collection of embedded paths lives in `fsdm-sql`
//! (which depends on this crate); the `fsdm-analyze` lint binary lives
//! in `fsdm-bench` next to the other workload tooling.

pub mod check;
pub mod diag;

pub use check::{analyze_path, normalized_field_path, path_provably_empty, AnalyzerConfig};
pub use diag::{render_json, render_text, Code, Diagnostic, Severity};

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use fsdm_dataguide::DataGuide;
    use fsdm_sqljson::parse_path;

    use super::*;

    /// A small heterogeneous corpus: `price` is all-number, `flag`
    /// all-boolean, `name` all-string, `items` an array of objects,
    /// `rare` appears in 1 of 20 documents.
    fn guide() -> DataGuide {
        let mut g = DataGuide::new();
        let docs = [
            r#"{"name":"a","price":10,"flag":true,"items":[{"sku":"x","qty":1}],"rare":1}"#,
            r#"{"name":"b","price":20,"flag":false,"items":[{"sku":"y","qty":2}]}"#,
        ];
        for t in docs {
            g.add_document(&fsdm_json::parse(t).unwrap());
        }
        for i in 0..18 {
            let t = format!(r#"{{"name":"n{i}","price":{i},"flag":true,"items":[]}}"#);
            g.add_document(&fsdm_json::parse(&t).unwrap());
        }
        g
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.id()).collect()
    }

    fn run(path: &str) -> Vec<Diagnostic> {
        analyze_path(&guide(), &parse_path(path).unwrap(), &AnalyzerConfig::default())
    }

    #[test]
    fn fa001_unknown_path_positive_and_negative() {
        let d = run("$.persno");
        assert_eq!(codes(&d), vec!["FA001"], "{d:?}");
        assert_eq!(d[0].severity, Severity::Error);
        assert!(path_provably_empty(&guide(), &parse_path("$.persno").unwrap()));
        // nested: known prefix, unknown leaf
        assert_eq!(codes(&run("$.items.missing")), vec!["FA001"]);
        // negative: known paths are clean of FA001
        assert!(!codes(&run("$.price")).contains(&"FA001"));
        assert!(!codes(&run("$.items.sku")).contains(&"FA001"), "lax array collapse");
        assert!(!path_provably_empty(&guide(), &parse_path("$.price").unwrap()));
        // empty guide: silent, nothing provable
        let empty = DataGuide::new();
        assert!(analyze_path(&empty, &parse_path("$.x").unwrap(), &Default::default()).is_empty());
        assert!(!path_provably_empty(&empty, &parse_path("$.x").unwrap()));
    }

    #[test]
    fn fa002_type_mismatch_positive_and_negative() {
        // method on all-boolean path
        let d = run("$.flag.number()");
        assert!(codes(&d).contains(&"FA002"), "{d:?}");
        // string compare against all-number path
        let d = run("$.items[*]?(@.qty == \"x\")");
        assert!(codes(&d).contains(&"FA002"), "{d:?}");
        // starts with on a number path
        let d = run("$.items[*]?(@.qty starts with 'a')");
        assert!(codes(&d).contains(&"FA002"), "{d:?}");
        // containers-only operand: items is an array of objects
        let d = run("$?(@.items == 1)");
        assert!(codes(&d).contains(&"FA002"), "{d:?}");
        let d = run("$?(@.name == 1)");
        assert!(codes(&d).contains(&"FA002"), "{d:?}");
        // negative: kind-consistent comparisons and methods are clean
        assert!(!codes(&run("$.price.number()")).contains(&"FA002"));
        assert!(!codes(&run("$.items[*]?(@.qty > 1)")).contains(&"FA002"));
        assert!(!codes(&run("$.name.upper()")).contains(&"FA002"));
    }

    #[test]
    fn fa003_dead_predicate_positive_and_negative() {
        // constant-folds false
        let d = run("$.items[*]?(1 == 2)");
        assert!(codes(&d).contains(&"FA003"), "{d:?}");
        // constant-folds true
        let d = run("$.items[*]?('a' == 'a')");
        assert!(codes(&d).contains(&"FA003"), "{d:?}");
        // dead because the operand path is unknown
        let d = run("$.items[*]?(@.nosuch == 1)");
        assert!(codes(&d).contains(&"FA003"), "{d:?}");
        // dead exists
        let d = run("$?(exists(@.nosuch))");
        assert!(codes(&d).contains(&"FA003"), "{d:?}");
        // folding composes through &&/||/!
        let d = run("$.items[*]?(@.qty > 1 && 1 == 2)");
        assert!(codes(&d).contains(&"FA003"), "{d:?}");
        // negative: a live filter is clean
        let d = run("$.items[*]?(@.qty > 1)");
        assert!(!codes(&d).contains(&"FA003"), "{d:?}");
        let d = run("$?(exists(@.rare))");
        assert!(!codes(&d).contains(&"FA003"), "{d:?}");
    }

    #[test]
    fn fa004_missing_array_step_positive_and_negative() {
        // array step over a scalar-only path
        let d = run("$.price[*]");
        assert!(codes(&d).contains(&"FA004"), "{d:?}");
        // strict mode reaching through an array without [*]
        let d = run("strict $.items.sku");
        assert!(codes(&d).contains(&"FA004"), "{d:?}");
        // negative: [*] on a real array, and the strict form with [*]
        assert!(!codes(&run("$.items[*]")).contains(&"FA004"));
        assert!(!codes(&run("strict $.items[*].sku")).contains(&"FA004"));
        assert!(!codes(&run("$.items.sku")).contains(&"FA004"), "lax unwraps fine");
    }

    #[test]
    fn fa005_low_frequency_positive_and_negative() {
        // `rare` is in 1/20 docs = 5% < default 10%
        let d = run("$.rare");
        assert!(codes(&d).contains(&"FA005"), "{d:?}");
        assert!(d.iter().any(|x| x.help.as_deref().is_some_and(|h| h.contains("JSON_EXISTS"))));
        // negative: a 100% path, and a lowered threshold
        assert!(!codes(&run("$.price")).contains(&"FA005"));
        let cfg = AnalyzerConfig { vc_frequency_pct: 5, ..Default::default() };
        let d = analyze_path(&guide(), &parse_path("$.rare").unwrap(), &cfg);
        assert!(!codes(&d).contains(&"FA005"), "{d:?}");
    }

    #[test]
    fn fa006_unstreamable_positive_and_negative() {
        let cfg = AnalyzerConfig { text_storage: true, ..Default::default() };
        let g = guide();
        let d = analyze_path(&g, &parse_path("$.items[*]?(@.qty > 1)").unwrap(), &cfg);
        assert!(codes(&d).contains(&"FA006"), "{d:?}");
        let d = analyze_path(&g, &parse_path("$.items[last]").unwrap(), &cfg);
        assert!(codes(&d).contains(&"FA006"), "last needs the array length: {d:?}");
        // negative: streamable path, or binary storage
        let d = analyze_path(&g, &parse_path("$.items[0].sku").unwrap(), &cfg);
        assert!(!codes(&d).contains(&"FA006"), "{d:?}");
        let d = run("$.items[*]?(@.qty > 1)");
        assert!(!codes(&d).contains(&"FA006"), "not text storage: {d:?}");
    }

    #[test]
    fn fa007_vc_candidate_positive_and_negative() {
        // price: singleton scalar in 100% of docs, not materialized
        let d = run("$.price");
        assert_eq!(codes(&d), vec!["FA007"], "{d:?}");
        assert_eq!(d[0].severity, Severity::Info);
        // negative: already materialized
        let cfg = AnalyzerConfig {
            materialized_vc_paths: BTreeSet::from(["$.price".to_string()]),
            ..Default::default()
        };
        let d = analyze_path(&guide(), &parse_path("$.price").unwrap(), &cfg);
        assert!(!codes(&d).contains(&"FA007"), "{d:?}");
        // negative: arrays are not singleton scalars
        assert!(!codes(&run("$.items")).contains(&"FA007"));
        // negative: non-field-chain paths are not add_vc shapes
        assert!(!codes(&run("$.items[*]")).contains(&"FA007"));
    }

    #[test]
    fn normalization_quotes_non_identifiers() {
        let p = parse_path(r#"$.a."b c""#).unwrap();
        assert_eq!(normalized_field_path(&p).as_deref(), Some(r#"$.a."b c""#));
        let p = parse_path("$.a[*]").unwrap();
        assert_eq!(normalized_field_path(&p), None);
    }

    #[test]
    fn renderers_cover_the_pipeline() {
        let d = run("$.persno");
        let text = render_text(&d);
        assert!(text.contains("FA001 error [unknown-path]"), "{text}");
        let json = render_json(&d);
        assert!(json.contains("\"code\": \"FA001\""), "{json}");
    }
}

//! Property-based tests for the semantic analyzer: total over arbitrary
//! corpus/path combinations, and FA001 findings are *sound* — a path the
//! analyzer calls unknown really matches nothing in any ingested
//! document.

use std::collections::BTreeSet;

use fsdm_analyze::{analyze_path, path_provably_empty, AnalyzerConfig, Code};
use fsdm_dataguide::{structure_signature, DataGuide};
use fsdm_json::{JsonNumber, JsonValue, Object, ValueDom};
use fsdm_sqljson::{parse_path, PathEvaluator};
use proptest::prelude::*;

/// Documents over the same small field vocabulary the paths draw from,
/// so known and unknown paths both occur with useful probability.
fn arb_doc() -> impl Strategy<Value = JsonValue> {
    let field = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("items".to_string()),
    ];
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-50i64..50).prop_map(|v| JsonValue::Number(JsonNumber::Int(v))),
        "[a-z]{0,5}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 30, 4, move |inner| {
        let field = field.clone();
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::vec((field, inner), 0..4).prop_map(|pairs| {
                let mut o = Object::new();
                let mut seen = std::collections::HashSet::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        o.push(k, v);
                    }
                }
                JsonValue::Object(o)
            }),
        ]
    })
}

/// Syntactically valid path text: field steps (including two fields no
/// document ever has), array steps, filters, and an optional trailing
/// item method, in lax or strict mode.
fn arb_path() -> impl Strategy<Value = String> {
    let field = prop_oneof![
        Just("a"),
        Just("b"),
        Just("c"),
        Just("items"),
        Just("ghost"),
        Just("phantom"),
    ];
    let step = prop_oneof![
        field.clone().prop_map(|f| format!(".{f}")),
        Just("[*]".to_string()),
        Just("[0]".to_string()),
        Just("[last]".to_string()),
        Just("[0 to 1]".to_string()),
        field.prop_map(|f| format!("?(@.{f} == 1)")),
        Just("?(@ > 2)".to_string()),
        Just("?(exists(@.a))".to_string()),
    ];
    let method = prop_oneof![Just(""), Just(".number()"), Just(".upper()"), Just(".string()")];
    (any::<bool>(), prop::collection::vec(step, 0..5), method).prop_map(
        |(strict, steps, method)| {
            let mode = if strict { "strict " } else { "" };
            format!("{mode}${}{method}", steps.concat())
        },
    )
}

/// Build a guide the way [`fsdm_store::Table`] does when `fast_path` is
/// set: only structurally novel documents are walked, the rest bump
/// `doc_count`. Analyzer claims must stay sound under both regimes.
fn guide_of(docs: &[JsonValue], fast_path: bool) -> DataGuide {
    let mut g = DataGuide::new();
    let mut seen = std::collections::HashSet::new();
    for d in docs {
        if !fast_path || seen.insert(structure_signature(d)) {
            g.add_document(d);
        } else {
            g.doc_count += 1;
        }
    }
    g
}

fn configs() -> Vec<AnalyzerConfig> {
    vec![
        AnalyzerConfig::default(),
        AnalyzerConfig { text_storage: true, ..Default::default() },
        AnalyzerConfig { vc_frequency_pct: 0, ..Default::default() },
        AnalyzerConfig {
            materialized_vc_paths: BTreeSet::from(["$.a".to_string()]),
            ..Default::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The analyzer is total: any corpus and any well-formed path produce
    /// diagnostics without panicking, every span stays inside the path
    /// text, and both renderers handle every finding.
    #[test]
    fn analyzer_is_total(
        docs in prop::collection::vec(arb_doc(), 0..8),
        path_text in arb_path(),
        fast_path in any::<bool>(),
    ) {
        let parsed = parse_path(&path_text);
        prop_assert!(parsed.is_ok(), "generator emitted unparseable `{path_text}`: {parsed:?}");
        let Ok(path) = parsed else { return Ok(()) };
        let guide = guide_of(&docs, fast_path);
        for cfg in configs() {
            for d in analyze_path(&guide, &path, &cfg) {
                prop_assert!(d.span.start <= d.span.end, "{d:?}");
                prop_assert!(d.span.end <= path_text.len(), "{d:?} vs {path_text}");
                let _ = d.snippet();
                prop_assert!(!d.to_string().is_empty());
                prop_assert!(d.render_json().starts_with('{'));
            }
        }
    }

    /// FA001 soundness: when the analyzer reports an unknown path (or the
    /// optimizer's `path_provably_empty` obligation holds), evaluating
    /// that path against every ingested document yields nothing. This is
    /// exactly what licenses the dead-predicate scan rewrite.
    #[test]
    fn fa001_paths_really_match_nothing(
        docs in prop::collection::vec(arb_doc(), 1..8),
        path_text in arb_path(),
        fast_path in any::<bool>(),
    ) {
        let parsed = parse_path(&path_text);
        prop_assert!(parsed.is_ok(), "generator emitted unparseable `{path_text}`: {parsed:?}");
        let Ok(path) = parsed else { return Ok(()) };
        let guide = guide_of(&docs, fast_path);
        let diags = analyze_path(&guide, &path, &AnalyzerConfig::default());
        let unknown = diags.iter().any(|d| d.code == Code::UnknownPath);
        let provably_empty = path_provably_empty(&guide, &path);
        if unknown || provably_empty {
            for doc in &docs {
                let values =
                    PathEvaluator::new(path.clone()).evaluate_values(&ValueDom::new(doc));
                prop_assert!(
                    values.is_empty(),
                    "analyzer said `{path_text}` is unknown (FA001={unknown}, \
                     provably_empty={provably_empty}) but it matched {values:?} in {doc:?}"
                );
            }
        }
    }
}

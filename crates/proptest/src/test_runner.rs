//! The case runner and the `proptest!` / assertion macros.

use std::fmt;

use crate::TestRng;

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated; fails the test.
    Fail(String),
    /// The inputs were uninteresting (`prop_assume!`); the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Drive one property: run `case` with fresh deterministic RNGs until
/// `config.cases` cases pass, panicking on the first failure.
///
/// The per-case seed is derived from the test name and the case index, so
/// failures are reproducible run-to-run; set `PROPTEST_SEED` to an integer
/// to shift the whole sequence when hunting for new counterexamples.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = (config.cases as u64).saturating_mul(16).max(1024);
    while passed < config.cases {
        let seed = fnv1a(name.as_bytes()) ^ base.wrapping_add(attempt).wrapping_mul(0x9E37_79B9);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "proptest `{name}` failed at case {passed} (attempt {attempt}, seed \
                     {seed:#x}): {reason}"
                );
            }
        }
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "proptest `{name}`: too many rejected cases ({} passed of {} wanted after {} \
                 attempts)",
                passed, config.cases, attempt
            );
        }
    }
}

/// `proptest! { ... }` — declare property tests (subset of the real macro:
/// an optional `#![proptest_config(...)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            // Build each strategy once; generate per case.
            let __strategies = ($($strat,)+);
            $crate::test_runner::run_cases(__config, stringify!($name), move |__rng| {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, __rng);
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                __out
            });
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)` — fail the
/// current case (in any function returning `Result<_, TestCaseError>`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format context.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format context.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assume!(cond)` — skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

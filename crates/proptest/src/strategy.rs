//! The `Strategy` trait and the combinators the workspace uses.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use crate::TestRng;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a cloneable recipe that draws one value from a [`TestRng`].
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into one more level of structure.
    ///
    /// Real proptest recurses probabilistically under a size budget; this
    /// stand-in unrolls exactly `depth` levels eagerly, which bounds depth
    /// by construction (the `desired_size`/`expected_branch_size` hints are
    /// accepted but unused).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut acc = self.boxed();
        for _ in 0..depth {
            acc = recurse(acc).boxed();
        }
        acc
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: Rc::clone(&self.f) }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between same-valued alternatives — the engine behind
/// `prop_oneof!`.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let ix = rng.below(self.0.len());
        self.0[ix].generate(rng)
    }
}

/// `prop_oneof![s1, s2, ...]` — uniform choice among strategies with the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i128(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// &str regex-subset strategies
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies, supporting the subset of regex
/// the repo's tests use: a concatenation of atoms, where an atom is a
/// character class `[...]` (with ranges and `\`-escapes), the printable-
/// character shorthand `\PC`, or a literal character — each optionally
/// followed by `{n}` / `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per generation keeps the impl simple; patterns are tiny
        // and this is test-only code.
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(atom.pool[rng.below(atom.pool.len())]);
            }
        }
        out
    }
}

struct Atom {
    pool: Vec<char>,
    min: usize,
    max: usize,
}

fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (' '..='~').collect();
    pool.extend(['\u{e9}', '\u{df}', '\u{3b1}', '\u{4e2d}', '\u{1F600}']);
    pool
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let pool = match chars[i] {
            '[' => {
                let (pool, next) = parse_class(&chars, i + 1, pat);
                i = next;
                pool
            }
            '\\' => {
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    printable_pool()
                } else if let Some(&c) = chars.get(i + 1) {
                    i += 2;
                    vec![c]
                } else {
                    panic!("dangling backslash in pattern {pat:?}");
                }
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                panic!("unsupported regex construct {:?} in pattern {pat:?}", chars[i])
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}').unwrap_or_else(|| {
                panic!("unterminated repetition in pattern {pat:?}");
            }) + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in pattern {pat:?}");
        assert!(!pool.is_empty(), "empty character class in pattern {pat:?}");
        atoms.push(Atom { pool, min, max });
    }
    atoms
}

fn parse_class(chars: &[char], mut i: usize, pat: &str) -> (Vec<char>, usize) {
    let mut pool = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            *chars.get(i).unwrap_or_else(|| panic!("dangling backslash in class in {pat:?}"))
        } else {
            chars[i]
        };
        // range `a-z`? only when `-` is flanked by two class members
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).map(|&e| e != ']').unwrap_or(false) {
            let hi = chars[i + 2];
            assert!(c <= hi, "inverted range {c}-{hi} in pattern {pat:?}");
            for v in c as u32..=hi as u32 {
                if let Some(ch) = char::from_u32(v) {
                    pool.push(ch);
                }
            }
            i += 3;
        } else {
            pool.push(c);
            i += 1;
        }
    }
    assert!(chars.get(i) == Some(&']'), "unterminated character class in {pat:?}");
    (pool, i + 1)
}

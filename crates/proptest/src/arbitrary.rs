//! `any::<T>()` — full-range generators for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical full-range strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Draw one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

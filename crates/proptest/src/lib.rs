//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this package shadows it through a workspace
//! path dependency and implements exactly the subset the repo's property
//! tests use:
//!
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`
//!   and `prop_oneof!` macros,
//! * `Strategy` with `prop_map`, `prop_recursive` and `boxed`,
//! * `Just`, `any::<T>()`, half-open integer ranges, tuples up to arity 6,
//!   `prop::collection::vec`, and a small generator for the character-class
//!   regex patterns used by `&str` strategies,
//! * `ProptestConfig::with_cases` and `TestCaseError`.
//!
//! It generates random cases deterministically (seeded per test name) but
//! performs **no shrinking** — a failing case reports its seed and values
//! instead. That is a deliberate trade for zero dependencies.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! Mirrors `proptest::prelude::prop`, the module-alias namespace.
        pub use crate::collection;
    }
}

/// Deterministic test-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// New generator with the given seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `[lo, hi)` over i128 space (shared by all the
    /// integer range strategies).
    pub fn in_range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        let span = (hi - lo) as u128;
        let v = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + v as i128
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        let s = (0u8..5, -10i64..10, any::<bool>());
        for _ in 0..500 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 5);
            assert!((-10..10).contains(&b));
        }
    }

    #[test]
    fn regex_subset_matches_charclass() {
        let mut rng = crate::TestRng::new(2);
        let s = "[a-c]{2,4}";
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=4).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        let s = (0i64..10).prop_map(T::Leaf).boxed().prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            fn depth(t: &T) -> usize {
                match t {
                    T::Leaf(n) => {
                        assert!((0..10).contains(n));
                        1
                    }
                    T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&v) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(a in 0i64..100, (b, c) in (0u8..4, any::<bool>())) {
            prop_assume!(b != 3);
            prop_assert!(a < 100);
            prop_assert_eq!(b as i64 + a - a, b as i64, "b was {}", b);
            prop_assert_ne!(!c, c);
        }
    }
}

//! Collection strategies (subset of `proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for collection::vec");
    VecStrategy { element, size }
}

/// Result of [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.start + rng.below(self.size.end - self.size.start);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

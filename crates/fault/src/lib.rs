//! fsdm-fault: a catalog-checked failpoint registry for deterministic
//! fault injection.
//!
//! A failpoint is a named site in production code — `fire(FP_EXEC_MORSEL)?`
//! — that normally does nothing and can be armed by a test or a chaos
//! harness to inject a typed error, a panic, a delay, an error after N
//! clean passes, or a seeded-probability error. The design mirrors the obs
//! crate's metrics discipline:
//!
//! - **Disarmed cost is one relaxed atomic load.** `fire` reads the global
//!   `ARMED` flag and returns immediately when nothing is armed; the
//!   registry mutex is only touched while at least one point is armed.
//! - **Names come from a catalog.** Every failpoint name is a `pub const`
//!   in [`catalog`]; [`arm`] rejects undeclared names at runtime and
//!   fsdm-sentinel (SN008) rejects undeclared `fire` arguments statically.
//! - **Determinism.** The probability mode draws from the in-workspace
//!   seeded `rand` stand-in, so a `(point, mode, seed)` triple replays the
//!   same hit sequence on every run — the chaos harness depends on this.
//!
//! Arming is process-global, so concurrently running tests would observe
//! each other's failpoints. [`FailScope`] serializes: it holds a private
//! static mutex for its lifetime, arms on construction, and resets the
//! whole registry on drop (even on panic-unwind, which is the common exit
//! for `Panic`-mode tests).
//!
//! `FSDM_FAILPOINTS` configures the registry from the environment (see
//! [`init_from_env`]): `name=mode` pairs separated by `;`, where mode is
//! `off`, `error`, `panic`, `delay(MS)`, `after(N)`, or `prob(P,SEED)`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod catalog;

/// Global fast-path gate: true while at least one point is armed. All
/// accesses are `Relaxed` (a monotonic flag): the registry mutex, taken by
/// every writer and by every armed-path reader, provides the ordering that
/// makes the flag's value meaningful, and a stale read on the race window
/// around arming only delays injection by one call — never corrupts state.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Number of times `fire` got past the disarmed fast path and consulted
/// the registry. Tier-1 tests assert this stays zero for a disarmed run.
static HITS: AtomicU64 = AtomicU64::new(0);

/// The error a fired failpoint injects. Carries the catalog name so the
/// harness can assert *which* point produced a given typed failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Catalog name of the failpoint that fired.
    pub point: &'static str,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failpoint `{}` injected error", self.point)
    }
}

impl std::error::Error for FaultError {}

/// What an armed failpoint does when its site executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailMode {
    /// Declared but inert (arming with `Off` removes the point).
    Off,
    /// Return [`FaultError`] on every hit.
    Error,
    /// Panic with a `failpoint`-prefixed payload on every hit.
    Panic,
    /// Sleep for the given milliseconds, then succeed.
    Delay(u64),
    /// Succeed for the first N hits, then error on every later hit.
    ErrorAfter(u64),
    /// Error with probability `p` per hit, drawn from a generator seeded
    /// with `seed` at arm time.
    ErrorWithProbability(f64, u64),
}

struct PointState {
    mode: FailMode,
    hits: u64,
    rng: Option<StdRng>,
}

/// What the site must do, decided under the registry lock but acted on
/// after releasing it (a panic or sleep must not hold the lock).
enum Action {
    Proceed,
    Fail,
    Panic,
    Sleep(u64),
}

fn points() -> &'static Mutex<BTreeMap<&'static str, PointState>> {
    static POINTS: OnceLock<Mutex<BTreeMap<&'static str, PointState>>> = OnceLock::new();
    POINTS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A panic while a site sleeps or a test unwinds can poison the registry;
/// the map itself is always consistent (mutations are single assignments),
/// so recover the guard rather than propagating the poison forever.
fn lock_points() -> MutexGuard<'static, BTreeMap<&'static str, PointState>> {
    points().lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Execute the failpoint named `name`. Disarmed cost: one relaxed load.
///
/// Returns `Ok(())` unless the point is armed in a failing mode, in which
/// case the typed [`FaultError`] (or a panic, for [`FailMode::Panic`])
/// is injected exactly as the armed schedule dictates.
#[inline]
pub fn fire(name: &'static str) -> Result<(), FaultError> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire_armed(name)
}

#[cold]
fn fire_armed(name: &'static str) -> Result<(), FaultError> {
    HITS.fetch_add(1, Ordering::Relaxed);
    let action = {
        let mut reg = lock_points();
        let Some(state) = reg.get_mut(name) else {
            return Ok(());
        };
        state.hits += 1;
        match state.mode {
            FailMode::Off => Action::Proceed,
            FailMode::Error => Action::Fail,
            FailMode::Panic => Action::Panic,
            FailMode::Delay(ms) => Action::Sleep(ms),
            FailMode::ErrorAfter(n) => {
                if state.hits > n {
                    Action::Fail
                } else {
                    Action::Proceed
                }
            }
            FailMode::ErrorWithProbability(p, seed) => {
                let rng = state.rng.get_or_insert_with(|| StdRng::seed_from_u64(seed));
                if rng.gen_range(0.0f64..1.0) < p {
                    Action::Fail
                } else {
                    Action::Proceed
                }
            }
        }
    };
    match action {
        Action::Proceed => Ok(()),
        Action::Fail => Err(FaultError { point: name }),
        Action::Panic => panic!("failpoint `{name}` injected panic"),
        Action::Sleep(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
    }
}

/// Arm `name` in `mode`. The name must be declared in [`catalog::ALL`];
/// arming with [`FailMode::Off`] removes the point instead.
pub fn arm(name: &str, mode: FailMode) -> Result<(), String> {
    let Some(&canonical) = catalog::ALL.iter().find(|&&n| n == name) else {
        return Err(format!("unknown failpoint `{name}`; declare it in fault::catalog"));
    };
    let mut reg = lock_points();
    if mode == FailMode::Off {
        reg.remove(canonical);
    } else {
        reg.insert(canonical, PointState { mode, hits: 0, rng: None });
    }
    ARMED.store(!reg.is_empty(), Ordering::Relaxed);
    Ok(())
}

/// Disarm one point (no-op if it was not armed).
pub fn disarm(name: &str) {
    let mut reg = lock_points();
    reg.remove(name);
    ARMED.store(!reg.is_empty(), Ordering::Relaxed);
}

/// Disarm every point and zero the registry-hit counter.
pub fn reset() {
    let mut reg = lock_points();
    reg.clear();
    ARMED.store(false, Ordering::Relaxed);
    HITS.store(0, Ordering::Relaxed);
}

/// Times `fire` consulted the registry since the last [`reset`]. A fully
/// disarmed run keeps this at zero — that is the disarmed-cost contract.
pub fn total_hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// Hits recorded against one armed point (None if it is not armed).
pub fn point_hits(name: &str) -> Option<u64> {
    lock_points().get(name).map(|s| s.hits)
}

fn scope_serial() -> &'static Mutex<()> {
    static SCOPE: OnceLock<Mutex<()>> = OnceLock::new();
    SCOPE.get_or_init(|| Mutex::new(()))
}

/// RAII guard for failpoint tests: serializes against every other scope in
/// the process, arms on construction, and resets the registry on drop —
/// including the panic-unwind exit a `Panic`-mode test takes.
pub struct FailScope {
    _serial: MutexGuard<'static, ()>,
}

impl FailScope {
    /// Take the scope lock, reset any leftover state, and arm one point.
    ///
    /// # Panics
    /// Panics if `name` is not declared in [`catalog::ALL`].
    pub fn new(name: &str, mode: FailMode) -> FailScope {
        let serial = scope_serial().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        reset();
        arm(name, mode).expect("FailScope requires a cataloged failpoint name");
        FailScope { _serial: serial }
    }

    /// Take the scope lock without arming anything — for tests that need
    /// isolation from failpoint tests but run fully disarmed.
    pub fn disarmed() -> FailScope {
        let serial = scope_serial().lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        reset();
        FailScope { _serial: serial }
    }

    /// Arm an additional point under the same scope.
    pub fn also(&self, name: &str, mode: FailMode) {
        arm(name, mode).expect("FailScope requires a cataloged failpoint name");
    }
}

impl Drop for FailScope {
    fn drop(&mut self) {
        reset();
    }
}

/// Parse one `FSDM_FAILPOINTS` mode token.
fn parse_mode(spec: &str) -> Result<FailMode, String> {
    let spec = spec.trim();
    let call = |prefix: &str| -> Option<&str> {
        spec.strip_prefix(prefix).and_then(|rest| rest.strip_prefix('(')).and_then(|rest| {
            let rest = rest.strip_suffix(')')?;
            Some(rest.trim())
        })
    };
    match spec {
        "off" => return Ok(FailMode::Off),
        "error" => return Ok(FailMode::Error),
        "panic" => return Ok(FailMode::Panic),
        _ => {}
    }
    if let Some(ms) = call("delay") {
        let ms = ms.parse::<u64>().map_err(|_| format!("delay wants milliseconds, got `{ms}`"))?;
        return Ok(FailMode::Delay(ms));
    }
    if let Some(n) = call("after") {
        let n = n.parse::<u64>().map_err(|_| format!("after wants a hit count, got `{n}`"))?;
        return Ok(FailMode::ErrorAfter(n));
    }
    if let Some(args) = call("prob") {
        let (p, seed) = args
            .split_once(',')
            .ok_or_else(|| format!("prob wants `prob(P,SEED)`, got `prob({args})`"))?;
        let p = p
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("prob wants a probability, got `{}`", p.trim()))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} is outside [0, 1]"));
        }
        let seed = seed
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("prob wants a u64 seed, got `{}`", seed.trim()))?;
        return Ok(FailMode::ErrorWithProbability(p, seed));
    }
    Err(format!("unknown failpoint mode `{spec}`"))
}

/// Arm failpoints from the `FSDM_FAILPOINTS` environment variable:
/// `name=mode` pairs separated by `;` (for example
/// `exec.morsel=error;exec.join.build=prob(0.5,42)`). Returns the number
/// of points armed; an unset or empty variable arms nothing.
pub fn init_from_env() -> Result<usize, String> {
    let Ok(spec) = std::env::var("FSDM_FAILPOINTS") else {
        return Ok(0);
    };
    let mut armed = 0;
    for pair in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
        let (name, mode) =
            pair.split_once('=').ok_or_else(|| format!("expected name=mode, got `{pair}`"))?;
        arm(name.trim(), parse_mode(mode)?)?;
        armed += 1;
    }
    Ok(armed)
}

/// Install a process-wide panic hook that swallows the default backtrace
/// print for `failpoint`-injected panics (they are expected and caught by
/// the executor) while forwarding every other panic to the previous hook.
/// Idempotent; intended for the chaos harness and failpoint tests.
pub fn silence_failpoint_panics() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    if INSTALLED.set(()).is_err() {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        if message.is_some_and(|m| m.starts_with("failpoint `")) {
            return;
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_fire_is_free_and_unhit() {
        let _scope = FailScope::disarmed();
        for _ in 0..100 {
            assert_eq!(fire(catalog::FP_EXEC_MORSEL), Ok(()));
        }
        assert_eq!(total_hits(), 0);
    }

    #[test]
    fn error_mode_injects_a_typed_error() {
        let scope = FailScope::new(catalog::FP_EXEC_JOIN_BUILD, FailMode::Error);
        let err = fire(catalog::FP_EXEC_JOIN_BUILD).unwrap_err();
        assert_eq!(err.point, catalog::FP_EXEC_JOIN_BUILD);
        assert_eq!(err.to_string(), "failpoint `exec.join.build` injected error");
        // Other points pass, but the armed-path counter sees them.
        assert_eq!(fire(catalog::FP_EXEC_MORSEL), Ok(()));
        assert_eq!(point_hits(catalog::FP_EXEC_JOIN_BUILD), Some(1));
        drop(scope);
        assert_eq!(total_hits(), 0);
    }

    #[test]
    fn after_n_passes_then_fails() {
        let _scope = FailScope::new(catalog::FP_EXEC_SORT_PERMUTE, FailMode::ErrorAfter(3));
        for _ in 0..3 {
            assert_eq!(fire(catalog::FP_EXEC_SORT_PERMUTE), Ok(()));
        }
        assert!(fire(catalog::FP_EXEC_SORT_PERMUTE).is_err());
        assert!(fire(catalog::FP_EXEC_SORT_PERMUTE).is_err());
    }

    #[test]
    fn probability_mode_is_seed_deterministic() {
        let draw = |seed: u64| -> Vec<bool> {
            let _scope =
                FailScope::new(catalog::FP_EXPR_EVAL, FailMode::ErrorWithProbability(0.5, seed));
            (0..32).map(|_| fire(catalog::FP_EXPR_EVAL).is_err()).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "distinct seeds should give distinct hit sequences");
        let hits = draw(7).iter().filter(|&&h| h).count();
        assert!((4..=28).contains(&hits), "p=0.5 over 32 draws hit {hits} times");
    }

    #[test]
    fn panic_mode_panics_with_the_failpoint_payload() {
        let _scope = FailScope::new(catalog::FP_VECTOR_BATCH, FailMode::Panic);
        let caught = std::panic::catch_unwind(|| fire(catalog::FP_VECTOR_BATCH)).unwrap_err();
        let msg = caught.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "failpoint `vector.batch` injected panic");
    }

    #[test]
    fn arming_an_uncataloged_name_is_rejected() {
        let _scope = FailScope::disarmed();
        let err = arm("exec.nonsense", FailMode::Error).unwrap_err();
        assert!(err.contains("unknown failpoint"), "{err}");
        assert_eq!(fire(catalog::FP_EXEC_MORSEL), Ok(()));
    }

    #[test]
    fn mode_specs_parse() {
        assert_eq!(parse_mode("off"), Ok(FailMode::Off));
        assert_eq!(parse_mode("error"), Ok(FailMode::Error));
        assert_eq!(parse_mode("panic"), Ok(FailMode::Panic));
        assert_eq!(parse_mode("delay(25)"), Ok(FailMode::Delay(25)));
        assert_eq!(parse_mode("after(4)"), Ok(FailMode::ErrorAfter(4)));
        assert_eq!(parse_mode("prob(0.25, 99)"), Ok(FailMode::ErrorWithProbability(0.25, 99)));
        assert!(parse_mode("maybe").is_err());
        assert!(parse_mode("prob(1.5,1)").is_err());
        assert!(parse_mode("delay(soon)").is_err());
    }

    #[test]
    fn delay_mode_sleeps_then_succeeds() {
        let _scope = FailScope::new(catalog::FP_EXEC_JSONTABLE_ROW, FailMode::Delay(5));
        let t0 = std::time::Instant::now();
        assert_eq!(fire(catalog::FP_EXEC_JSONTABLE_ROW), Ok(()));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
    }
}

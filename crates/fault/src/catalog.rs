//! The failpoint name catalog: every name the workspace may pass to
//! [`crate::fire`] is declared here as a `pub const`, mirrored in [`ALL`].
//!
//! The same discipline the obs crate applies to metric and span names
//! applies here: names are dotted `lower_snake_case`, the constants are
//! declared in ascending name order, and `ALL` lists them in declaration
//! order. fsdm-sentinel cross-checks this file (diagnostic SN008): a
//! `fire` call site outside `crates/fault` must pass one of these
//! constants — a string literal or an undeclared identifier is flagged,
//! and a constant missing from `ALL` (or a duplicate) is a catalog bug.
//! Arming (`crate::arm`) rejects names not present in `ALL` at runtime,
//! so a typo in an `FSDM_FAILPOINTS` schedule fails loudly instead of
//! silently never firing.

/// Per-partial group-by accumulation inside the morsel closure.
pub const FP_EXEC_GROUPBY_PARTIAL: &str = "exec.groupby.partial";
/// Hash-join build side, once per build morsel.
pub const FP_EXEC_JOIN_BUILD: &str = "exec.join.build";
/// JSON_TABLE row-buffer production, once per output morsel.
pub const FP_EXEC_JSONTABLE_ROW: &str = "exec.jsontable.row";
/// Generic scan/filter morsel body — the highest-traffic point.
pub const FP_EXEC_MORSEL: &str = "exec.morsel";
/// Sort permutation apply, once per sort.
pub const FP_EXEC_SORT_PERMUTE: &str = "exec.sort.permute";
/// Row-predicate evaluation (`Expr::matches_with`), once per row.
pub const FP_EXPR_EVAL: &str = "expr.eval";
/// Vectorized columnar gather (`Batch::gather`), once per batch.
pub const FP_VECTOR_BATCH: &str = "vector.batch";

/// Every declared failpoint name, in declaration (= ascending) order.
pub const ALL: &[&str] = &[
    FP_EXEC_GROUPBY_PARTIAL,
    FP_EXEC_JOIN_BUILD,
    FP_EXEC_JSONTABLE_ROW,
    FP_EXEC_MORSEL,
    FP_EXEC_SORT_PERMUTE,
    FP_EXPR_EVAL,
    FP_VECTOR_BATCH,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate failpoint name {name}");
        }
    }

    #[test]
    fn names_are_sorted() {
        for pair in ALL.windows(2) {
            assert!(pair[0] < pair[1], "{} must sort before {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn names_follow_the_dotted_convention() {
        for name in ALL {
            let parts: Vec<&str> = name.split('.').collect();
            assert!(parts.len() >= 2, "{name} needs at least two dotted parts");
            for part in parts {
                assert!(!part.is_empty(), "{name} has an empty dotted part");
                assert!(
                    part.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "{name} must be dotted lower_snake_case"
                );
            }
        }
    }
}

//! `fsdm-sqljson`: the SQL/JSON path language and its two evaluation
//! engines, plus the SQL/JSON operators (§5.1 of the paper).
//!
//! * [`path`] — the path language (`$.a.b[2 to 4].c?(@.x > 1)`) with
//!   compile-time pre-hashing of every field name reference, so execution
//!   never hashes a name (§4.2.1).
//! * [`engine`] — the DOM path engine, generic over
//!   [`fsdm_json::JsonDom`]: the same evaluator runs over an in-memory
//!   tree, a serialized OSON instance (jump navigation), or a BSON buffer
//!   (skip navigation). It carries the cross-instance field-id look-back
//!   cache.
//! * [`streaming`] — the streaming engine over text parse events, used for
//!   simple paths on textual storage; complex operators fall back to a
//!   DOM, exactly the trade-off §5.1 describes.
//! * [`ops`] — `JSON_VALUE`, `JSON_QUERY`, `JSON_EXISTS` with RETURNING
//!   types and ON ERROR semantics.
//! * [`json_table`] — the `JSON_TABLE()` virtual-table row source with
//!   NESTED PATH: left-outer-join un-nesting for child hierarchies and
//!   union joins for sibling hierarchies (§3.3.2), implemented with the
//!   start/fetch/close row-source shape of §5.1.

pub mod datum;
pub mod engine;
pub mod json_table;
pub mod ops;
pub mod path;
pub mod streaming;

pub use datum::{Datum, SqlType};
pub use engine::{PathEvaluator, PathOutput};
pub use json_table::{ColumnDef, JsonTableCursor, JsonTableDef, JsonTableExec, NestedDef};
pub use ops::{json_exists, json_query, json_value, OnError, WrapperMode};
pub use path::{parse_path, JsonPath, PathError, Predicate, Span, Step};

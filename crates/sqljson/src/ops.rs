//! The SQL/JSON operators: `JSON_VALUE`, `JSON_QUERY`, `JSON_EXISTS`.

use fsdm_json::{JsonDom, JsonValue, NodeKind};

use crate::datum::{Datum, SqlType};
use crate::engine::{PathEvaluator, PathOutput};

/// ON ERROR / ON EMPTY behaviour for `JSON_VALUE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnError {
    /// `NULL ON ERROR` (Oracle's default).
    #[default]
    Null,
    /// `ERROR ON ERROR`: surface the failure.
    Error,
}

/// Wrapper behaviour for `JSON_QUERY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WrapperMode {
    /// `WITHOUT WRAPPER`: the single matched container is returned as-is.
    #[default]
    Without,
    /// `WITH WRAPPER`: all matches are wrapped in an array.
    With,
    /// `WITH CONDITIONAL WRAPPER`: wrap unless exactly one container
    /// matched.
    Conditional,
}

/// Operator evaluation error (only surfaced under `ERROR ON ERROR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for OpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL/JSON error: {}", self.message)
    }
}

impl std::error::Error for OpsError {}

fn err(message: &str) -> OpsError {
    OpsError { message: message.to_string() }
}

/// `JSON_EXISTS(doc, path)`.
pub fn json_exists<D: JsonDom>(dom: &D, ev: &mut PathEvaluator) -> bool {
    ev.exists(dom)
}

/// `JSON_VALUE(doc, path RETURNING ty … ON ERROR)`: the path must select
/// exactly one scalar; the scalar is coerced to the requested SQL type.
pub fn json_value<D: JsonDom>(
    dom: &D,
    ev: &mut PathEvaluator,
    ty: SqlType,
    on_error: OnError,
) -> Result<Datum, OpsError> {
    let outs = ev.evaluate(dom);
    let fail = |m: &str| -> Result<Datum, OpsError> {
        match on_error {
            OnError::Null => Ok(Datum::Null),
            OnError::Error => Err(err(m)),
        }
    };
    match outs.as_slice() {
        [] => Ok(Datum::Null), // ON EMPTY default
        [single] => {
            let scalar: Option<Datum> = match single {
                PathOutput::Node(n) => match dom.kind(*n) {
                    NodeKind::Scalar => Datum::from_json_scalar(&dom.scalar(*n).to_value()),
                    _ => None,
                },
                PathOutput::Computed(v) => Datum::from_json_scalar(v),
            };
            match scalar {
                None => fail("JSON_VALUE selected a non-scalar"),
                Some(d) => match d.coerce(ty) {
                    Some(c) => Ok(c),
                    None => fail("RETURNING type conversion failed"),
                },
            }
        }
        _ => fail("JSON_VALUE matched more than one item"),
    }
}

/// `JSON_QUERY(doc, path … WRAPPER)`: returns a JSON fragment.
pub fn json_query<D: JsonDom>(
    dom: &D,
    ev: &mut PathEvaluator,
    wrapper: WrapperMode,
    on_error: OnError,
) -> Result<Option<JsonValue>, OpsError> {
    let outs = ev.evaluate(dom);
    let materialize = |o: &PathOutput| -> JsonValue {
        match o {
            PathOutput::Node(n) => dom.materialize(*n),
            PathOutput::Computed(v) => v.clone(),
        }
    };
    let fail = |m: &str| -> Result<Option<JsonValue>, OpsError> {
        match on_error {
            OnError::Null => Ok(None),
            OnError::Error => Err(err(m)),
        }
    };
    match wrapper {
        WrapperMode::With => {
            if outs.is_empty() {
                return Ok(None);
            }
            Ok(Some(JsonValue::Array(outs.iter().map(materialize).collect())))
        }
        WrapperMode::Conditional => match outs.as_slice() {
            [] => Ok(None),
            [single] => {
                let v = materialize(single);
                if v.is_scalar() {
                    Ok(Some(JsonValue::Array(vec![v])))
                } else {
                    Ok(Some(v))
                }
            }
            _ => Ok(Some(JsonValue::Array(outs.iter().map(materialize).collect()))),
        },
        WrapperMode::Without => match outs.as_slice() {
            [] => Ok(None),
            [single] => {
                let v = materialize(single);
                if v.is_scalar() {
                    fail("JSON_QUERY selected a scalar without a wrapper")
                } else {
                    Ok(Some(v))
                }
            }
            _ => fail("JSON_QUERY matched more than one item without a wrapper"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;
    use fsdm_json::{parse, ValueDom};

    const PO: &str = r#"{"purchaseOrder":{"id":7,"podate":"2014-09-08","items":[
        {"name":"phone","price":100},{"name":"ipad","price":350.86}]}}"#;

    fn ev(path: &str) -> PathEvaluator {
        PathEvaluator::new(parse_path(path).unwrap())
    }

    #[test]
    fn json_value_scalar() {
        let v = parse(PO).unwrap();
        let dom = ValueDom::new(&v);
        let d = json_value(&dom, &mut ev("$.purchaseOrder.id"), SqlType::Number, OnError::Null)
            .unwrap();
        assert_eq!(d, Datum::from(7i64));
        let s = json_value(
            &dom,
            &mut ev("$.purchaseOrder.podate"),
            SqlType::Varchar2(16),
            OnError::Null,
        )
        .unwrap();
        assert_eq!(s, Datum::from("2014-09-08"));
    }

    #[test]
    fn json_value_empty_is_null() {
        let v = parse(PO).unwrap();
        let dom = ValueDom::new(&v);
        let d = json_value(&dom, &mut ev("$.nothing"), SqlType::Any, OnError::Error).unwrap();
        assert!(d.is_null());
    }

    #[test]
    fn json_value_multi_match_error_modes() {
        let v = parse(PO).unwrap();
        let dom = ValueDom::new(&v);
        let p = "$.purchaseOrder.items[*].price";
        assert!(json_value(&dom, &mut ev(p), SqlType::Number, OnError::Null).unwrap().is_null());
        assert!(json_value(&dom, &mut ev(p), SqlType::Number, OnError::Error).is_err());
    }

    #[test]
    fn json_value_non_scalar_errors() {
        let v = parse(PO).unwrap();
        let dom = ValueDom::new(&v);
        assert!(json_value(&dom, &mut ev("$.purchaseOrder.items"), SqlType::Any, OnError::Error)
            .is_err());
    }

    #[test]
    fn json_value_conversion_failure() {
        let v = parse(PO).unwrap();
        let dom = ValueDom::new(&v);
        let p = "$.purchaseOrder.podate";
        assert!(json_value(&dom, &mut ev(p), SqlType::Number, OnError::Null).unwrap().is_null());
        assert!(json_value(&dom, &mut ev(p), SqlType::Number, OnError::Error).is_err());
    }

    #[test]
    fn json_query_fragments() {
        let v = parse(PO).unwrap();
        let dom = ValueDom::new(&v);
        let frag =
            json_query(&dom, &mut ev("$.purchaseOrder.items"), WrapperMode::Without, OnError::Null)
                .unwrap()
                .unwrap();
        assert_eq!(frag.as_array().unwrap().len(), 2);
        // scalar without wrapper: error → None
        assert!(json_query(
            &dom,
            &mut ev("$.purchaseOrder.id"),
            WrapperMode::Without,
            OnError::Null
        )
        .unwrap()
        .is_none());
        // with wrapper: all prices in one array
        let w = json_query(
            &dom,
            &mut ev("$.purchaseOrder.items[*].price"),
            WrapperMode::With,
            OnError::Null,
        )
        .unwrap()
        .unwrap();
        assert_eq!(w.as_array().unwrap().len(), 2);
        // conditional: single container unwrapped, single scalar wrapped
        let c = json_query(
            &dom,
            &mut ev("$.purchaseOrder.id"),
            WrapperMode::Conditional,
            OnError::Null,
        )
        .unwrap()
        .unwrap();
        assert_eq!(c, parse("[7]").unwrap());
    }

    #[test]
    fn json_exists_basic() {
        let v = parse(PO).unwrap();
        let dom = ValueDom::new(&v);
        assert!(json_exists(&dom, &mut ev("$.purchaseOrder.items[*]?(@.price > 300)")));
        assert!(!json_exists(&dom, &mut ev("$.purchaseOrder.items[*]?(@.price > 999)")));
    }
}

//! The SQL/JSON path language: AST and parser.
//!
//! Supported grammar (lax mode by default, as in Oracle):
//!
//! ```text
//! path      := mode? '$' step*
//! mode      := 'lax' | 'strict'
//! step      := '.' name | '.' '"' any '"' | '.*'
//!            | '[' selector (',' selector)* ']' | '[*]'
//!            | '?(' predicate ')'
//!            | '.' method '()'
//! selector  := index | index 'to' index
//! index     := uint | 'last' | 'last' '-' uint
//! predicate := pred '||' pred | pred '&&' pred | '!' '(' pred ')'
//!            | '(' pred ')' | 'exists' '(' relpath ')'
//!            | operand cmp operand | operand 'starts' 'with' operand
//! operand   := relpath | literal
//! relpath   := '@' step*
//! cmp       := '==' | '!=' | '<' | '<=' | '>' | '>='
//! method    := type|size|length|number|string|upper|lower|abs|ceiling|floor|double
//! ```
//!
//! Every field name reference — in ordinary steps *and* inside filter
//! predicates — is hashed at parse time with the shared
//! [`fsdm_json::field_hash`], implementing the §4.2.1 optimization of
//! storing pre-computed hash ids in the compiled execution plan.

use std::fmt;

use fsdm_json::{field_hash, JsonNumber, JsonValue};

/// A half-open byte range into a source text. Shared position type of
/// the path parser and the `fsdm-analyze` diagnostics layer, so both
/// report locations the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered (`start == end` for a
    /// point span).
    pub end: usize,
}

impl Span {
    /// Span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end: end.max(start) }
    }

    /// Zero-width span at `offset`.
    pub fn point(offset: usize) -> Span {
        Span { start: offset, end: offset }
    }

    /// The covered slice of `source`, clamped to char boundaries so a
    /// span that lands inside a multi-byte character never slices out
    /// of bounds or panics.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        let start = floor_char_boundary(source, self.start);
        let end = ceil_char_boundary(source, self.end.max(self.start));
        source.get(start..end).unwrap_or_default()
    }
}

fn floor_char_boundary(s: &str, offset: usize) -> usize {
    let mut i = offset.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn ceil_char_boundary(s: &str, offset: usize) -> usize {
    let mut i = offset.min(s.len());
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

/// A short char-boundary-safe excerpt of `source` around byte `offset`,
/// for rendered messages.
pub fn snippet_at(source: &str, offset: usize) -> String {
    const WINDOW: usize = 12;
    let mid = floor_char_boundary(source, offset);
    let start = floor_char_boundary(source, mid.saturating_sub(WINDOW));
    let end = ceil_char_boundary(source, mid.saturating_add(WINDOW));
    let mut out = String::new();
    if start > 0 {
        out.push('…');
    }
    out.push_str(source.get(start..end).unwrap_or_default());
    if end < source.len() {
        out.push('…');
    }
    out
}

/// Path parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    /// Description of the failure.
    pub message: String,
    /// Location of the failure in the path text.
    pub span: Span,
    /// Excerpt of the path text around the failure.
    pub snippet: String,
}

impl PathError {
    /// Build an error pointing at byte `offset` of `source`, capturing
    /// the offending snippet.
    pub fn at(message: &str, source: &str, offset: usize) -> PathError {
        PathError {
            message: message.to_string(),
            span: Span::point(offset.min(source.len())),
            snippet: snippet_at(source, offset),
        }
    }

    /// Byte offset of the failure (start of [`PathError::span`]).
    pub fn offset(&self) -> usize {
        self.span.start
    }
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path error at {}: {}", self.span.start, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, " (near `{}`)", self.snippet)?;
        }
        Ok(())
    }
}

impl std::error::Error for PathError {}

/// Evaluation mode. Lax (the default) wraps/unwraps arrays implicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Implicit array unwrapping/wrapping; structural errors yield empty.
    #[default]
    Lax,
    /// Structural mismatches yield empty results (no implicit unwrap).
    Strict,
}

/// An array index expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexExpr {
    /// 0-based absolute position.
    At(usize),
    /// `last - n` (n = 0 for `last`).
    FromLast(usize),
}

impl IndexExpr {
    /// Resolve against an array length; `None` when out of range.
    pub fn resolve(&self, len: usize) -> Option<usize> {
        match self {
            IndexExpr::At(i) => (*i < len).then_some(*i),
            IndexExpr::FromLast(back) => len.checked_sub(back + 1),
        }
    }
}

/// One `[…]` selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArraySel {
    /// Single element.
    Index(IndexExpr),
    /// Inclusive range `a to b`.
    Range(IndexExpr, IndexExpr),
}

/// Item methods applicable as a final path step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// JSON type name ("object", "array", "string", "number", "boolean",
    /// "null").
    Type,
    /// Container size (1 for scalars, object member count, array length).
    Size,
    /// String length.
    Length,
    /// Convert to number.
    Number,
    /// Convert to string.
    StringM,
    /// Uppercase a string.
    Upper,
    /// Lowercase a string.
    Lower,
    /// Absolute value.
    Abs,
    /// Ceiling.
    Ceiling,
    /// Floor.
    Floor,
    /// Convert to IEEE double.
    Double,
}

impl Method {
    /// Method name as written in path text.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Type => "type",
            Method::Size => "size",
            Method::Length => "length",
            Method::Number => "number",
            Method::StringM => "string",
            Method::Upper => "upper",
            Method::Lower => "lower",
            Method::Abs => "abs",
            Method::Ceiling => "ceiling",
            Method::Floor => "floor",
            Method::Double => "double",
        }
    }
}

/// One step of a compiled path.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `.name` — the hash is pre-computed at compile time.
    Field {
        /// Member name.
        name: String,
        /// `field_hash(name)`, computed once at parse.
        hash: u32,
    },
    /// `.*`
    FieldWildcard,
    /// `[sel, sel, …]`
    Array(Vec<ArraySel>),
    /// `[*]`
    ArrayWildcard,
    /// `?( … )`
    Filter(Predicate),
    /// `.method()` — only valid as the final step.
    Method(Method),
}

/// A comparison operator inside a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `starts with`
    StartsWith,
    /// `has substring`
    HasSubstring,
}

/// A filter operand: a relative path or a scalar literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `@.…` relative to the filter's context item.
    Path(Vec<Step>),
    /// Scalar literal.
    Lit(JsonValue),
}

/// A filter predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Comparison with SQL/JSON existential semantics.
    Cmp(Operand, CmpOp, Operand),
    /// `exists(@.…)`.
    Exists(Vec<Step>),
}

/// A compiled SQL/JSON path.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonPath {
    /// Evaluation mode.
    pub mode: Mode,
    /// Compiled steps.
    pub steps: Vec<Step>,
    step_spans: Vec<Span>,
    text: String,
}

impl JsonPath {
    /// The original path text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Source location of top-level step `i` within [`JsonPath::text`].
    /// Parsing records one span per step; out-of-range indexes yield an
    /// empty span.
    pub fn step_span(&self, i: usize) -> Span {
        self.step_spans.get(i).copied().unwrap_or_default()
    }

    /// True when every step is a plain field/array step — the class the
    /// streaming engine can evaluate without building a DOM (§5.1).
    /// `last`-relative selectors need the array length up front, so they
    /// are excluded.
    pub fn is_streamable(&self) -> bool {
        self.steps.iter().all(|s| match s {
            Step::Field { .. } | Step::ArrayWildcard => true,
            Step::Array(sels) => sels.iter().all(|x| {
                matches!(
                    x,
                    ArraySel::Index(IndexExpr::At(_))
                        | ArraySel::Range(IndexExpr::At(_), IndexExpr::At(_))
                )
            }),
            _ => false,
        })
    }

    /// Field names referenced by top-level steps, in order (used by the
    /// DataGuide's view generator).
    pub fn field_names(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| match s {
                Step::Field { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for JsonPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Parse a SQL/JSON path expression.
pub fn parse_path(text: &str) -> Result<JsonPath, PathError> {
    let mut p = P { b: text.as_bytes(), i: 0 };
    p.ws();
    let mode = if p.eat_kw("lax") {
        Mode::Lax
    } else if p.eat_kw("strict") {
        Mode::Strict
    } else {
        Mode::Lax
    };
    p.ws();
    if !p.eat(b'$') {
        return Err(p.err("path must start with '$'"));
    }
    let (steps, step_spans) = p.steps_spanned()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters in path"));
    }
    // methods may only appear last
    for (i, s) in steps.iter().enumerate() {
        if matches!(s, Step::Method(_)) && i + 1 != steps.len() {
            return Err(PathError::at(
                "item method must be the final step",
                text,
                step_spans.get(i).map(|sp| sp.start).unwrap_or(text.len()),
            ));
        }
    }
    Ok(JsonPath { mode, steps, step_spans, text: text.to_string() })
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn err(&self, m: &str) -> PathError {
        PathError::at(m, std::str::from_utf8(self.b).unwrap_or_default(), self.i)
    }

    fn ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        let k = kw.as_bytes();
        if self.b[self.i..].starts_with(k) {
            let after = self.b.get(self.i + k.len());
            let boundary = match after {
                None => true,
                Some(c) => !c.is_ascii_alphanumeric() && *c != b'_',
            };
            if boundary {
                self.i += k.len();
                return true;
            }
        }
        false
    }

    fn steps(&mut self) -> Result<Vec<Step>, PathError> {
        Ok(self.steps_spanned()?.0)
    }

    /// Parse a step sequence, recording the source span of each step.
    fn steps_spanned(&mut self) -> Result<(Vec<Step>, Vec<Span>), PathError> {
        let mut steps = Vec::new();
        let mut spans = Vec::new();
        loop {
            self.ws();
            let start = self.i;
            match self.one_step()? {
                Some(step) => {
                    steps.push(step);
                    spans.push(Span::new(start, self.i));
                }
                None => break,
            }
        }
        Ok((steps, spans))
    }

    /// Parse one step, or `None` when the next byte starts no step.
    fn one_step(&mut self) -> Result<Option<Step>, PathError> {
        match self.peek() {
            Some(b'.') => {
                self.i += 1;
                if self.eat(b'*') {
                    return Ok(Some(Step::FieldWildcard));
                }
                let name = self.name()?;
                // method call?
                if self.peek() == Some(b'(') {
                    self.i += 1;
                    self.ws();
                    if !self.eat(b')') {
                        return Err(self.err("expected ')' after method"));
                    }
                    let m = match name.as_str() {
                        "type" => Method::Type,
                        "size" => Method::Size,
                        "length" => Method::Length,
                        "number" => Method::Number,
                        "string" => Method::StringM,
                        "upper" => Method::Upper,
                        "lower" => Method::Lower,
                        "abs" => Method::Abs,
                        "ceiling" => Method::Ceiling,
                        "floor" => Method::Floor,
                        "double" => Method::Double,
                        _ => return Err(self.err("unknown item method")),
                    };
                    return Ok(Some(Step::Method(m)));
                }
                let hash = field_hash(&name);
                Ok(Some(Step::Field { name, hash }))
            }
            Some(b'[') => {
                self.i += 1;
                self.ws();
                if self.eat(b'*') {
                    self.ws();
                    if !self.eat(b']') {
                        return Err(self.err("expected ']'"));
                    }
                    return Ok(Some(Step::ArrayWildcard));
                }
                let mut sels = Vec::new();
                loop {
                    self.ws();
                    let a = self.index_expr()?;
                    self.ws();
                    if self.eat_kw("to") {
                        self.ws();
                        let b = self.index_expr()?;
                        sels.push(ArraySel::Range(a, b));
                    } else {
                        sels.push(ArraySel::Index(a));
                    }
                    self.ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b']') {
                        break;
                    }
                    return Err(self.err("expected ',' or ']'"));
                }
                Ok(Some(Step::Array(sels)))
            }
            Some(b'?') => {
                self.i += 1;
                self.ws();
                if !self.eat(b'(') {
                    return Err(self.err("expected '(' after '?'"));
                }
                let pred = self.pred_or()?;
                self.ws();
                if !self.eat(b')') {
                    return Err(self.err("expected ')' closing filter"));
                }
                Ok(Some(Step::Filter(pred)))
            }
            _ => Ok(None),
        }
    }

    fn name(&mut self) -> Result<String, PathError> {
        self.ws();
        if self.eat(b'"') {
            let start = self.i;
            while let Some(c) = self.peek() {
                if c == b'"' {
                    let s = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| self.err("invalid UTF-8 in name"))?
                        .to_string();
                    self.i += 1;
                    return Ok(s);
                }
                self.i += 1;
            }
            return Err(self.err("unterminated quoted name"));
        }
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' || c >= 0x80 {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            return Err(self.err("expected field name"));
        }
        Ok(std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| self.err("invalid UTF-8 in name"))?
            .to_string())
    }

    fn index_expr(&mut self) -> Result<IndexExpr, PathError> {
        if self.eat_kw("last") {
            self.ws();
            if self.eat(b'-') {
                self.ws();
                let n = self.uint()?;
                return Ok(IndexExpr::FromLast(n));
            }
            return Ok(IndexExpr::FromLast(0));
        }
        Ok(IndexExpr::At(self.uint()?))
    }

    fn uint(&mut self) -> Result<usize, PathError> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    fn pred_or(&mut self) -> Result<Predicate, PathError> {
        let mut lhs = self.pred_and()?;
        loop {
            self.ws();
            if self.b[self.i..].starts_with(b"||") {
                self.i += 2;
                let rhs = self.pred_and()?;
                lhs = Predicate::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn pred_and(&mut self) -> Result<Predicate, PathError> {
        let mut lhs = self.pred_unary()?;
        loop {
            self.ws();
            if self.b[self.i..].starts_with(b"&&") {
                self.i += 2;
                let rhs = self.pred_unary()?;
                lhs = Predicate::And(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn pred_unary(&mut self) -> Result<Predicate, PathError> {
        self.ws();
        if self.eat(b'!') {
            self.ws();
            if !self.eat(b'(') {
                return Err(self.err("expected '(' after '!'"));
            }
            let inner = self.pred_or()?;
            self.ws();
            if !self.eat(b')') {
                return Err(self.err("expected ')'"));
            }
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat_kw("exists") {
            self.ws();
            if !self.eat(b'(') {
                return Err(self.err("expected '(' after exists"));
            }
            self.ws();
            if !self.eat(b'@') {
                return Err(self.err("exists path must start with '@'"));
            }
            let steps = self.steps()?;
            self.ws();
            if !self.eat(b')') {
                return Err(self.err("expected ')'"));
            }
            return Ok(Predicate::Exists(steps));
        }
        if self.peek() == Some(b'(') {
            // could be a parenthesized predicate
            let save = self.i;
            self.i += 1;
            if let Ok(inner) = self.pred_or() {
                self.ws();
                if self.eat(b')') {
                    return Ok(inner);
                }
            }
            self.i = save;
        }
        // comparison
        let lhs = self.operand()?;
        self.ws();
        let op = if self.b[self.i..].starts_with(b"==") {
            self.i += 2;
            CmpOp::Eq
        } else if self.b[self.i..].starts_with(b"!=") || self.b[self.i..].starts_with(b"<>") {
            self.i += 2;
            CmpOp::Ne
        } else if self.b[self.i..].starts_with(b"<=") {
            self.i += 2;
            CmpOp::Le
        } else if self.b[self.i..].starts_with(b">=") {
            self.i += 2;
            CmpOp::Ge
        } else if self.eat(b'<') {
            CmpOp::Lt
        } else if self.eat(b'>') {
            CmpOp::Gt
        } else if self.eat_kw("starts") {
            self.ws();
            if !self.eat_kw("with") {
                return Err(self.err("expected 'with' after 'starts'"));
            }
            CmpOp::StartsWith
        } else if self.eat_kw("has") {
            self.ws();
            if !self.eat_kw("substring") {
                return Err(self.err("expected 'substring' after 'has'"));
            }
            CmpOp::HasSubstring
        } else {
            return Err(self.err("expected comparison operator"));
        };
        let rhs = self.operand()?;
        Ok(Predicate::Cmp(lhs, op, rhs))
    }

    fn operand(&mut self) -> Result<Operand, PathError> {
        self.ws();
        match self.peek() {
            Some(b'@') => {
                self.i += 1;
                Ok(Operand::Path(self.steps()?))
            }
            Some(b'\'') | Some(b'"') => {
                let quote = self.peek().unwrap();
                self.i += 1;
                let start = self.i;
                while let Some(c) = self.peek() {
                    if c == quote {
                        let s = std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| self.err("invalid UTF-8"))?
                            .to_string();
                        self.i += 1;
                        return Ok(Operand::Lit(JsonValue::String(s)));
                    }
                    self.i += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                if c == b'-' {
                    self.i += 1;
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit() || d == b'.' || d == b'e' || d == b'E' || d == b'+' || d == b'-')
                {
                    self.i += 1;
                }
                let lit = std::str::from_utf8(&self.b[start..self.i]).unwrap();
                let n = JsonNumber::from_literal(lit)
                    .map_err(|_| self.err("invalid numeric literal"))?;
                Ok(Operand::Lit(JsonValue::Number(n)))
            }
            _ if self.eat_kw("true") => Ok(Operand::Lit(JsonValue::Bool(true))),
            _ if self.eat_kw("false") => Ok(Operand::Lit(JsonValue::Bool(false))),
            _ if self.eat_kw("null") => Ok(Operand::Lit(JsonValue::Null)),
            _ => Err(self.err("expected operand")),
        }
    }
}

/// Escape a field name for path text (quotes names that are not simple
/// identifiers). Used by the DataGuide when synthesizing paths.
pub fn path_step_text(name: &str) -> String {
    let simple = !name.is_empty()
        && name.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'$')
        && !name.as_bytes()[0].is_ascii_digit();
    if simple {
        format!(".{name}")
    } else {
        format!(".\"{}\"", name.replace('"', ""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_paths() {
        let p = parse_path("$.purchaseOrder.items").unwrap();
        assert_eq!(p.mode, Mode::Lax);
        assert_eq!(p.steps.len(), 2);
        assert!(matches!(&p.steps[0], Step::Field { name, hash }
            if name == "purchaseOrder" && *hash == field_hash("purchaseOrder")));
        assert!(p.is_streamable());
    }

    #[test]
    fn parses_modes() {
        assert_eq!(parse_path("strict $.a").unwrap().mode, Mode::Strict);
        assert_eq!(parse_path("lax $.a").unwrap().mode, Mode::Lax);
    }

    #[test]
    fn parses_array_selectors() {
        let p = parse_path("$.items[0,2,4 to 6,last,last-2]").unwrap();
        match &p.steps[1] {
            Step::Array(sels) => {
                assert_eq!(sels.len(), 5);
                assert_eq!(sels[0], ArraySel::Index(IndexExpr::At(0)));
                assert_eq!(sels[2], ArraySel::Range(IndexExpr::At(4), IndexExpr::At(6)));
                assert_eq!(sels[3], ArraySel::Index(IndexExpr::FromLast(0)));
                assert_eq!(sels[4], ArraySel::Index(IndexExpr::FromLast(2)));
            }
            other => panic!("expected array step, got {other:?}"),
        }
    }

    #[test]
    fn parses_wildcards() {
        let p = parse_path("$.a[*].*").unwrap();
        assert!(matches!(p.steps[1], Step::ArrayWildcard));
        assert!(matches!(p.steps[2], Step::FieldWildcard));
    }

    #[test]
    fn parses_filters() {
        let p = parse_path(r#"$.items[*]?(@.price > 100 && @.name == 'phone')"#).unwrap();
        match &p.steps[2] {
            Step::Filter(Predicate::And(l, r)) => {
                assert!(matches!(**l, Predicate::Cmp(_, CmpOp::Gt, _)));
                assert!(matches!(**r, Predicate::Cmp(_, CmpOp::Eq, _)));
            }
            other => panic!("expected filter, got {other:?}"),
        }
        assert!(!p.is_streamable());
    }

    #[test]
    fn parses_exists_and_not() {
        let p = parse_path(r#"$?(exists(@.a) || !(@.b == 1))"#).unwrap();
        match &p.steps[0] {
            Step::Filter(Predicate::Or(l, r)) => {
                assert!(matches!(**l, Predicate::Exists(_)));
                assert!(matches!(**r, Predicate::Not(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_methods() {
        let p = parse_path("$.a.type()").unwrap();
        assert!(matches!(p.steps[1], Step::Method(Method::Type)));
        assert!(parse_path("$.type().a").is_err(), "method must be last");
    }

    #[test]
    fn parses_quoted_names() {
        let p = parse_path(r#"$."foreign id"."x""#).unwrap();
        assert!(matches!(&p.steps[0], Step::Field { name, .. } if name == "foreign id"));
    }

    #[test]
    fn parses_starts_with() {
        let p = parse_path(r#"$.items[*]?(@.name starts with 'ph')"#).unwrap();
        match &p.steps[2] {
            Step::Filter(Predicate::Cmp(_, CmpOp::StartsWith, _)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn index_expr_resolution() {
        assert_eq!(IndexExpr::At(2).resolve(5), Some(2));
        assert_eq!(IndexExpr::At(5).resolve(5), None);
        assert_eq!(IndexExpr::FromLast(0).resolve(5), Some(4));
        assert_eq!(IndexExpr::FromLast(2).resolve(5), Some(2));
        assert_eq!(IndexExpr::FromLast(5).resolve(5), None);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "a.b",
            "$.",
            "$[",
            "$[1",
            "$[1 to]",
            "$?(",
            "$?(@.a ==)",
            "$?(@.a)",
            "$.a b",
            "$.unknown()",
        ] {
            assert!(parse_path(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrip_text() {
        let text = "$.purchaseOrder.items[*].price";
        assert_eq!(parse_path(text).unwrap().to_string(), text);
    }

    #[test]
    fn step_spans_cover_source_text() {
        let text = "$.purchaseOrder.items[*]?(@.price > 1)";
        let p = parse_path(text).unwrap();
        assert_eq!(p.step_span(0).slice(text), ".purchaseOrder");
        assert_eq!(p.step_span(1).slice(text), ".items");
        assert_eq!(p.step_span(2).slice(text), "[*]");
        assert_eq!(p.step_span(3).slice(text), "?(@.price > 1)");
        assert_eq!(p.step_span(99), Span::default(), "out of range is empty");
    }

    #[test]
    fn errors_carry_span_and_snippet() {
        let e = parse_path("$.items[1 to]").unwrap_err();
        assert_eq!(e.offset(), e.span.start);
        assert!(e.snippet.contains("to]"), "snippet {:?}", e.snippet);
        let rendered = e.to_string();
        assert!(rendered.contains("near"), "{rendered}");
        // a method misplacement points at the offending step
        let e = parse_path("$.a.type().b").unwrap_err();
        assert_eq!(e.span.start, 3);
        assert!(e.snippet.contains("type()"), "snippet {:?}", e.snippet);
    }

    #[test]
    fn multi_byte_offsets_stay_on_char_boundaries() {
        for bad in ["$.héllo[", "$.日本.", "$.a?(@.日本 ==)", "$.\"日 本", "$.x?(@ == '日本"]
        {
            let e = parse_path(bad).unwrap_err();
            assert!(
                bad.is_char_boundary(e.span.start),
                "offset {} of {bad:?} is inside a char",
                e.span.start
            );
            // snippet extraction must not panic or split a char
            assert!(e.snippet.chars().count() <= 26, "snippet {:?}", e.snippet);
        }
        let text = "$.日本[0]";
        let p = parse_path(text).unwrap();
        assert_eq!(p.step_span(0).slice(text), ".日本");
        assert_eq!(p.step_span(1).slice(text), "[0]");
    }

    #[test]
    fn span_slice_is_boundary_safe() {
        let s = "aé日b";
        // deliberately mid-char offsets
        assert_eq!(Span::new(2, 4).slice(s), "é日");
        assert_eq!(Span::new(1, 2).slice(s), "é");
        assert_eq!(Span::new(0, 100).slice(s), s);
        assert_eq!(Span::point(4).slice(s), "日", "mid-char point widens to the char");
        assert_eq!(Span::point(6).slice(s), "");
        assert_eq!(snippet_at("é", 1), "é");
    }

    #[test]
    fn step_text_quoting() {
        assert_eq!(path_step_text("abc"), ".abc");
        assert_eq!(path_step_text("foreign id"), ".\"foreign id\"");
        assert_eq!(path_step_text("9lives"), ".\"9lives\"");
    }
}

//! `JSON_TABLE()`: the virtual table that projects relational rows out of
//! a JSON document (§3.3.2, §5.1).
//!
//! A definition has a row path, a list of columns, and nested
//! definitions. Semantics follow the paper exactly:
//!
//! * a **child** NESTED PATH un-nests its array with *left-outer-join*
//!   semantics — the parent row appears (with NULL child columns) even if
//!   the nested path matches nothing;
//! * **sibling** NESTED PATHs at the same level combine with *union join*
//!   semantics — "a full outer join with an impossible condition": each
//!   sibling's rows appear with every other sibling's columns NULL, never
//!   as a cross product.
//!
//! Execution is exposed through the row-source shape of §5.1
//! (`start()`, `fetch_next_batch()`, `close()`), as a built-in SQL
//! iterator would be.

use fsdm_json::{JsonDom, NodeRef};

use crate::datum::{Datum, SqlType};
use crate::engine::PathEvaluator;
use crate::ops::{json_value, OnError};
use crate::path::JsonPath;

/// Column kinds of a JSON_TABLE definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// Ordinary `PATH` column: JSON_VALUE semantics.
    Value,
    /// `EXISTS PATH` column: 1/0.
    Exists,
    /// `FOR ORDINALITY`: 1-based row number within the row set of this
    /// nesting level.
    Ordinality,
}

/// One output column.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name in the produced row.
    pub name: String,
    /// SQL type the value is coerced to.
    pub ty: SqlType,
    /// Column path, relative to the row node (ignored for Ordinality).
    pub path: JsonPath,
    /// Column kind.
    pub kind: ColKind,
}

impl ColumnDef {
    /// Ordinary value column.
    pub fn value(name: impl Into<String>, ty: SqlType, path: JsonPath) -> Self {
        ColumnDef { name: name.into(), ty, path, kind: ColKind::Value }
    }

    /// EXISTS column.
    pub fn exists(name: impl Into<String>, path: JsonPath) -> Self {
        ColumnDef { name: name.into(), ty: SqlType::Number, path, kind: ColKind::Exists }
    }

    /// FOR ORDINALITY column.
    pub fn ordinality(name: impl Into<String>) -> Self {
        let path = crate::path::parse_path("$").expect("static path");
        ColumnDef { name: name.into(), ty: SqlType::Number, path, kind: ColKind::Ordinality }
    }
}

/// A NESTED PATH block.
#[derive(Debug, Clone)]
pub struct NestedDef {
    /// Row path relative to the parent row node.
    pub path: JsonPath,
    /// Columns of this block.
    pub columns: Vec<ColumnDef>,
    /// Child blocks (outer-joined below this block's rows).
    pub nested: Vec<NestedDef>,
}

/// A complete JSON_TABLE definition.
#[derive(Debug, Clone)]
pub struct JsonTableDef {
    /// Root row path (evaluated against the document root).
    pub row_path: JsonPath,
    /// Columns at the root level.
    pub columns: Vec<ColumnDef>,
    /// NESTED PATH blocks (siblings union-join; each child outer-joins).
    pub nested: Vec<NestedDef>,
}

impl JsonTableDef {
    /// All output column names in positional order (this level's columns,
    /// then each nested block's, depth-first — matching the generated
    /// view's SELECT list).
    pub fn column_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk_cols(cols: &[ColumnDef], nested: &[NestedDef], out: &mut Vec<String>) {
            for c in cols {
                out.push(c.name.clone());
            }
            for n in nested {
                walk_cols(&n.columns, &n.nested, out);
            }
        }
        walk_cols(&self.columns, &self.nested, &mut out);
        out
    }

    /// Total output width.
    pub fn width(&self) -> usize {
        fn w(cols: &[ColumnDef], nested: &[NestedDef]) -> usize {
            cols.len() + nested.iter().map(|n| w(&n.columns, &n.nested)).sum::<usize>()
        }
        w(&self.columns, &self.nested)
    }

    /// Compute all rows for one document. Convenience wrapper building a
    /// fresh cursor; hot loops over many documents should build one
    /// [`JsonTableCursor`] and reuse it so path evaluators (and their
    /// field-id look-back caches, §4.2.1) persist across documents.
    pub fn rows<D: JsonDom>(&self, dom: &D) -> Vec<Vec<Datum>> {
        JsonTableCursor::new(self).rows(dom)
    }

    /// Open a row-source cursor over one document (§5.1's start()).
    pub fn start<D: JsonDom>(&self, dom: &D) -> JsonTableExec {
        JsonTableExec { rows: self.rows(dom), pos: 0, closed: false }
    }
}

/// Reusable execution state for one JSON_TABLE definition: one compiled
/// evaluator per path, kept across documents.
pub struct JsonTableCursor {
    width: usize,
    root_cols: usize,
    row_ev: PathEvaluator,
    cols: Vec<ColCursor>,
    nested: Vec<NestedCursor>,
}

struct ColCursor {
    kind: ColKind,
    ty: SqlType,
    ev: PathEvaluator,
}

struct NestedCursor {
    width: usize,
    cols_len: usize,
    path_ev: PathEvaluator,
    cols: Vec<ColCursor>,
    nested: Vec<NestedCursor>,
}

fn build_cols(cols: &[ColumnDef]) -> Vec<ColCursor> {
    cols.iter()
        .map(|c| ColCursor { kind: c.kind, ty: c.ty, ev: PathEvaluator::new(c.path.clone()) })
        .collect()
}

fn build_nested(defs: &[NestedDef]) -> Vec<NestedCursor> {
    defs.iter()
        .map(|n| NestedCursor {
            width: block_total_width(n),
            cols_len: n.columns.len(),
            path_ev: PathEvaluator::new(n.path.clone()),
            cols: build_cols(&n.columns),
            nested: build_nested(&n.nested),
        })
        .collect()
}

impl JsonTableCursor {
    /// Compile the definition's paths once.
    pub fn new(def: &JsonTableDef) -> Self {
        JsonTableCursor {
            width: def.width(),
            root_cols: def.columns.len(),
            row_ev: PathEvaluator::new(def.row_path.clone()),
            cols: build_cols(&def.columns),
            nested: build_nested(&def.nested),
        }
    }

    /// Compute all rows for one document.
    pub fn rows<D: JsonDom>(&mut self, dom: &D) -> Vec<Vec<Datum>> {
        let width = self.width;
        let mut out = Vec::new();
        let row_nodes = node_outputs(self.row_ev.evaluate(dom));
        for (ord, row_node) in row_nodes.iter().enumerate() {
            let mut base = vec![Datum::Null; width];
            fill_columns(dom, *row_node, &mut self.cols, 0, ord + 1, &mut base);
            expand_nested(dom, *row_node, &mut self.nested, self.root_cols, &base, &mut out);
        }
        out
    }
}

/// Recursively expand nested blocks below one parent row.
fn expand_nested<D: JsonDom>(
    dom: &D,
    row_node: NodeRef,
    nested: &mut [NestedCursor],
    col_base: usize,
    base: &[Datum],
    out: &mut Vec<Vec<Datum>>,
) {
    if nested.is_empty() {
        out.push(base.to_vec());
        return;
    }
    // compute each sibling block's rows independently (union join)
    let mut any = false;
    let mut offset = col_base;
    for block in nested {
        let block_width = block.width;
        let rows = block_rows(dom, row_node, block, base.len(), offset);
        if !rows.is_empty() {
            any = true;
            for r in rows {
                // merge block cells over the base row
                let mut row = base.to_vec();
                for (i, cell) in r.into_iter().enumerate().skip(offset) {
                    if !cell.is_null() {
                        row[i] = cell;
                    }
                }
                out.push(row);
            }
        }
        offset += block_width;
    }
    if !any {
        // left outer join: parent row survives with NULL nested columns
        out.push(base.to_vec());
    }
}

fn block_total_width(b: &NestedDef) -> usize {
    b.columns.len() + b.nested.iter().map(block_total_width).sum::<usize>()
}

/// Rows contributed by one nested block under one parent row node. Each
/// returned row is full-width with only this block's region populated.
fn block_rows<D: JsonDom>(
    dom: &D,
    parent: NodeRef,
    block: &mut NestedCursor,
    width: usize,
    offset: usize,
) -> Vec<Vec<Datum>> {
    let nodes = node_outputs(block.path_ev.evaluate_from(dom, parent));
    let mut out = Vec::new();
    let cols_len = block.cols_len;
    for (ord, node) in nodes.iter().enumerate() {
        let mut row = vec![Datum::Null; width];
        fill_columns(dom, *node, &mut block.cols, offset, ord + 1, &mut row);
        let mut expanded = Vec::new();
        expand_nested(dom, *node, &mut block.nested, offset + cols_len, &row, &mut expanded);
        out.extend(expanded);
    }
    out
}

fn fill_columns<D: JsonDom>(
    dom: &D,
    node: NodeRef,
    cols: &mut [ColCursor],
    offset: usize,
    ordinality: usize,
    row: &mut [Datum],
) {
    for (i, col) in cols.iter_mut().enumerate() {
        let cell = match col.kind {
            ColKind::Ordinality => Datum::from(ordinality as i64),
            ColKind::Exists => Datum::from(i64::from(!col.ev.evaluate_from(dom, node).is_empty())),
            ColKind::Value => json_value_from(dom, node, &mut col.ev, col.ty),
        };
        row[offset + i] = cell;
    }
}

/// JSON_VALUE semantics (NULL ON ERROR) evaluated from a context node.
fn json_value_from<D: JsonDom>(
    dom: &D,
    node: NodeRef,
    ev: &mut PathEvaluator,
    ty: SqlType,
) -> Datum {
    // reuse the operator by substituting the start node
    struct Rooted<'a, D: JsonDom> {
        inner: &'a D,
        root: NodeRef,
    }
    impl<D: JsonDom> JsonDom for Rooted<'_, D> {
        fn root(&self) -> NodeRef {
            self.root
        }
        fn kind(&self, n: NodeRef) -> fsdm_json::NodeKind {
            self.inner.kind(n)
        }
        fn object_len(&self, n: NodeRef) -> usize {
            self.inner.object_len(n)
        }
        fn object_entry(&self, n: NodeRef, i: usize) -> (&str, NodeRef) {
            self.inner.object_entry(n, i)
        }
        fn array_len(&self, n: NodeRef) -> usize {
            self.inner.array_len(n)
        }
        fn array_element(&self, n: NodeRef, i: usize) -> NodeRef {
            self.inner.array_element(n, i)
        }
        fn scalar(&self, n: NodeRef) -> fsdm_json::ScalarRef<'_> {
            self.inner.scalar(n)
        }
        fn get_field(&self, n: NodeRef, name: &str, hash: u32) -> Option<NodeRef> {
            self.inner.get_field(n, name, hash)
        }
        fn field_id(&self, name: &str, hash: u32) -> Option<fsdm_json::FieldId> {
            self.inner.field_id(name, hash)
        }
        fn get_field_by_id(&self, n: NodeRef, id: fsdm_json::FieldId) -> Option<NodeRef> {
            self.inner.get_field_by_id(n, id)
        }
        fn dict_fingerprint(&self) -> u64 {
            self.inner.dict_fingerprint()
        }
    }
    let rooted = Rooted { inner: dom, root: node };
    json_value(&rooted, ev, ty, OnError::Null).unwrap_or(Datum::Null)
}

fn node_outputs(outs: Vec<crate::engine::PathOutput>) -> Vec<NodeRef> {
    outs.into_iter()
        .filter_map(|o| match o {
            crate::engine::PathOutput::Node(n) => Some(n),
            crate::engine::PathOutput::Computed(_) => None,
        })
        .collect()
}

/// The open row source: `fetch_next_batch()` until empty, then `close()`.
pub struct JsonTableExec {
    rows: Vec<Vec<Datum>>,
    pos: usize,
    closed: bool,
}

impl JsonTableExec {
    /// Fetch up to `n` rows; an empty slice signals end of data.
    pub fn fetch_next_batch(&mut self, n: usize) -> &[Vec<Datum>] {
        assert!(!self.closed, "fetch after close");
        let start = self.pos;
        let end = (self.pos + n).min(self.rows.len());
        self.pos = end;
        &self.rows[start..end]
    }

    /// Rows remaining.
    pub fn remaining(&self) -> usize {
        self.rows.len() - self.pos
    }

    /// Close the row source.
    pub fn close(&mut self) {
        self.closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;
    use fsdm_json::{parse, ValueDom};

    fn p(s: &str) -> JsonPath {
        parse_path(s).unwrap()
    }

    /// The Table 8 document shape: items with nested parts, plus sibling
    /// discount_items.
    const DOC: &str = r#"{"purchaseOrder":{"id":3,"podate":"2015-06-03","foreign_id":"CDEG35",
      "items":[
        {"name":"TV","price":345.55,"quantity":1,
         "parts":[{"partName":"remoteCon","partQuantity":"1"},
                  {"partName":"power cord","partQuantity":"1"}]},
        {"name":"PC","price":546.78,"quantity":10,
         "parts":[{"partName":"mouse","partQuantity":"2"},
                  {"partName":"keyboard","partQuantity":"1"}]}],
      "discount_items":[
        {"dis_itemName":"lamp","dis_itemPrice":10.5,
         "dis_parts":[{"dis_partName":"bulb","dis_partQuantity":2}]}]}}"#;

    fn table8_def() -> JsonTableDef {
        JsonTableDef {
            row_path: p("$"),
            columns: vec![
                ColumnDef::value("id", SqlType::Number, p("$.purchaseOrder.id")),
                ColumnDef::value("podate", SqlType::Varchar2(16), p("$.purchaseOrder.podate")),
                ColumnDef::value(
                    "foreign_id",
                    SqlType::Varchar2(8),
                    p("$.purchaseOrder.foreign_id"),
                ),
            ],
            nested: vec![
                NestedDef {
                    path: p("$.purchaseOrder.items[*]"),
                    columns: vec![
                        ColumnDef::value("name", SqlType::Varchar2(8), p("$.name")),
                        ColumnDef::value("price", SqlType::Number, p("$.price")),
                        ColumnDef::value("quantity", SqlType::Number, p("$.quantity")),
                    ],
                    nested: vec![NestedDef {
                        path: p("$.parts[*]"),
                        columns: vec![
                            ColumnDef::value("partName", SqlType::Varchar2(16), p("$.partName")),
                            ColumnDef::value(
                                "partQuantity",
                                SqlType::Varchar2(4),
                                p("$.partQuantity"),
                            ),
                        ],
                        nested: vec![],
                    }],
                },
                NestedDef {
                    path: p("$.purchaseOrder.discount_items[*]"),
                    columns: vec![
                        ColumnDef::value("dis_itemName", SqlType::Varchar2(8), p("$.dis_itemName")),
                        ColumnDef::value("dis_itemPrice", SqlType::Number, p("$.dis_itemPrice")),
                    ],
                    nested: vec![NestedDef {
                        path: p("$.dis_parts[*]"),
                        columns: vec![ColumnDef::value(
                            "dis_partName",
                            SqlType::Varchar2(16),
                            p("$.dis_partName"),
                        )],
                        nested: vec![],
                    }],
                },
            ],
        }
    }

    #[test]
    fn column_layout() {
        let def = table8_def();
        assert_eq!(
            def.column_names(),
            vec![
                "id",
                "podate",
                "foreign_id",
                "name",
                "price",
                "quantity",
                "partName",
                "partQuantity",
                "dis_itemName",
                "dis_itemPrice",
                "dis_partName"
            ]
        );
        assert_eq!(def.width(), 11);
    }

    #[test]
    fn dmdv_expansion_child_outer_and_sibling_union() {
        let v = parse(DOC).unwrap();
        let dom = ValueDom::new(&v);
        let rows = table8_def().rows(&dom);
        // items block: 2 items × 2 parts = 4 rows; discount block: 1 item ×
        // 1 part = 1 row; union join → 5 rows total
        assert_eq!(rows.len(), 5);
        // master fields repeat on every row
        for r in &rows {
            assert_eq!(r[0], Datum::from(3i64));
            assert_eq!(r[2], Datum::from("CDEG35"));
        }
        // item rows have NULL discount columns and vice versa (union join)
        let item_rows: Vec<_> = rows.iter().filter(|r| !r[3].is_null()).collect();
        let disc_rows: Vec<_> = rows.iter().filter(|r| !r[8].is_null()).collect();
        assert_eq!(item_rows.len(), 4);
        assert_eq!(disc_rows.len(), 1);
        for r in &item_rows {
            assert!(r[8].is_null() && r[9].is_null() && r[10].is_null());
        }
        for r in &disc_rows {
            assert!(r[3].is_null() && r[4].is_null());
            assert_eq!(r[10], Datum::from("bulb"));
        }
    }

    #[test]
    fn outer_join_keeps_parent_without_details() {
        let doc = r#"{"purchaseOrder":{"id":9,"podate":"2016-01-01","items":[]}}"#;
        let v = parse(doc).unwrap();
        let dom = ValueDom::new(&v);
        let rows = table8_def().rows(&dom);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Datum::from(9i64));
        assert!(rows[0][3].is_null(), "no item columns");
    }

    #[test]
    fn items_without_parts_outer_join() {
        let doc = r#"{"purchaseOrder":{"id":1,"items":[{"name":"x","price":5,"quantity":1}]}}"#;
        let v = parse(doc).unwrap();
        let dom = ValueDom::new(&v);
        let rows = table8_def().rows(&dom);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][3], Datum::from("x"));
        assert!(rows[0][6].is_null(), "partName is NULL");
    }

    #[test]
    fn ordinality_and_exists_columns() {
        let def = JsonTableDef {
            row_path: p("$.purchaseOrder.items[*]"),
            columns: vec![
                ColumnDef::ordinality("seq"),
                ColumnDef::value("name", SqlType::Varchar2(8), p("$.name")),
                ColumnDef::exists("has_parts", p("$.parts")),
            ],
            nested: vec![],
        };
        let v = parse(DOC).unwrap();
        let dom = ValueDom::new(&v);
        let rows = def.rows(&dom);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Datum::from(1i64));
        assert_eq!(rows[1][0], Datum::from(2i64));
        assert_eq!(rows[0][2], Datum::from(1i64));
    }

    #[test]
    fn row_source_batching() {
        let v = parse(DOC).unwrap();
        let dom = ValueDom::new(&v);
        let def = table8_def();
        let mut exec = def.start(&dom);
        assert_eq!(exec.remaining(), 5);
        assert_eq!(exec.fetch_next_batch(2).len(), 2);
        assert_eq!(exec.fetch_next_batch(10).len(), 3);
        assert!(exec.fetch_next_batch(10).is_empty());
        exec.close();
    }

    #[test]
    fn value_coercion_in_columns() {
        // price exceeds varchar2(2): NULL ON ERROR per JSON_VALUE defaults
        let def = JsonTableDef {
            row_path: p("$.purchaseOrder.items[*]"),
            columns: vec![ColumnDef::value("price", SqlType::Varchar2(2), p("$.price"))],
            nested: vec![],
        };
        let v = parse(DOC).unwrap();
        let dom = ValueDom::new(&v);
        let rows = def.rows(&dom);
        assert!(rows.iter().all(|r| r[0].is_null()));
    }
}

//! The DOM path engine (§5.1): one generic evaluator over
//! [`fsdm_json::JsonDom`], so the identical engine runs against an
//! in-memory DOM, a serialized OSON instance, or a BSON buffer.
//!
//! The evaluator is a stateful cursor: it owns the compiled path and a
//! per-field-step **look-back cache** of `(dictionary fingerprint → field
//! id)` mappings. When a collection is structurally homogeneous,
//! consecutive OSON instances share a dictionary fingerprint, and field-id
//! resolution (hash binary search + name compare) is skipped entirely —
//! the "single-row look-back" optimization of §4.2.1.

use fsdm_json::{FieldId, JsonDom, JsonNumber, JsonValue, NodeKind, NodeRef, ScalarRef};

use crate::path::{ArraySel, CmpOp, IndexExpr, JsonPath, Method, Mode, Operand, Predicate, Step};

/// One result item of a path evaluation: a reference into the document, or
/// a value computed by a final item method.
#[derive(Debug, Clone, PartialEq)]
pub enum PathOutput {
    /// A node of the evaluated document.
    Node(NodeRef),
    /// A synthesized value (e.g. from `.type()` or `.size()`).
    Computed(JsonValue),
}

/// Per-field-step look-back cache entry: the id the name resolved to in
/// the previous document (validated per instance in O(1)).
#[derive(Debug, Clone, Copy)]
enum LookBack {
    /// Nothing cached yet.
    Empty,
    /// Resolved to this id last time.
    Id(FieldId),
    /// Name was absent from the previous instance's dictionary.
    Absent,
}

/// A reusable evaluation cursor for one compiled path.
pub struct PathEvaluator {
    path: JsonPath,
    /// One slot per top-level `Step::Field`, indexed by position among the
    /// field steps.
    lookback: Vec<LookBack>,
    /// Count of field resolutions skipped thanks to the look-back cache
    /// (observability for tests/benches).
    pub lookback_hits: u64,
    /// Count of field resolutions that had to consult the instance
    /// dictionary (cache empty, stale, or the field absent).
    pub lookback_misses: u64,
}

impl PathEvaluator {
    /// Build a cursor for a compiled path.
    pub fn new(path: JsonPath) -> Self {
        let nfields = path.steps.iter().filter(|s| matches!(s, Step::Field { .. })).count();
        PathEvaluator {
            path,
            lookback: vec![LookBack::Empty; nfields],
            lookback_hits: 0,
            lookback_misses: 0,
        }
    }

    /// The compiled path.
    pub fn path(&self) -> &JsonPath {
        &self.path
    }

    /// Evaluate against one document, producing all matching items.
    pub fn evaluate<D: JsonDom>(&mut self, dom: &D) -> Vec<PathOutput> {
        self.evaluate_from(dom, dom.root())
    }

    /// Evaluate with `$` bound to an arbitrary context node (JSON_TABLE
    /// nested paths are evaluated relative to their parent row node).
    pub fn evaluate_from<D: JsonDom>(&mut self, dom: &D, start: NodeRef) -> Vec<PathOutput> {
        let mode = self.path.mode;
        let mut current: Vec<NodeRef> = vec![start];
        let mut field_idx = 0usize;
        let steps = std::mem::take(&mut self.path.steps);
        let mut computed: Option<Vec<PathOutput>> = None;
        fsdm_obs::counter!(fsdm_obs::catalog::SQLJSON_EVAL_PATHS).inc();
        let mut eval_span = fsdm_obs::trace::span(fsdm_obs::catalog::SPAN_SQLJSON_EVAL);
        let (hits0, misses0) = (self.lookback_hits, self.lookback_misses);
        for step in &steps {
            fsdm_obs::counter!(fsdm_obs::catalog::SQLJSON_EVAL_NODES_VISITED)
                .add(current.len() as u64);
            match step {
                Step::Field { name, hash } => {
                    let slot = field_idx;
                    field_idx += 1;
                    current = self.apply_field(dom, &current, name, *hash, slot, mode);
                }
                Step::FieldWildcard => {
                    current = apply_field_wildcard(dom, &current, mode);
                }
                Step::ArrayWildcard => {
                    current = apply_array_wildcard(dom, &current, mode);
                }
                Step::Array(sels) => {
                    current = apply_array_sel(dom, &current, sels, mode);
                }
                Step::Filter(pred) => {
                    current = apply_filter(dom, &current, pred, mode);
                }
                Step::Method(m) => {
                    computed = Some(
                        current
                            .iter()
                            .filter_map(|&n| apply_method(dom, n, *m))
                            .map(PathOutput::Computed)
                            .collect(),
                    );
                }
            }
            if current.is_empty() && computed.is_none() {
                break;
            }
        }
        self.path.steps = steps;
        if eval_span.is_recording() {
            let (hits, misses) = (self.lookback_hits - hits0, self.lookback_misses - misses0);
            eval_span.record_args(|| format!("lookback hit={hits} miss={misses}"));
        }
        match computed {
            Some(c) => c,
            None => current.into_iter().map(PathOutput::Node).collect(),
        }
    }

    /// Evaluate and materialize every match as an owned value.
    pub fn evaluate_values<D: JsonDom>(&mut self, dom: &D) -> Vec<JsonValue> {
        self.evaluate(dom)
            .into_iter()
            .map(|o| match o {
                PathOutput::Node(n) => dom.materialize(n),
                PathOutput::Computed(v) => v,
            })
            .collect()
    }

    /// True when the path matches at least one item in the document.
    pub fn exists<D: JsonDom>(&mut self, dom: &D) -> bool {
        !self.evaluate(dom).is_empty()
    }

    /// Field step with look-back-cached id resolution.
    fn apply_field<D: JsonDom>(
        &mut self,
        dom: &D,
        nodes: &[NodeRef],
        name: &str,
        hash: u32,
        slot: usize,
        mode: Mode,
    ) -> Vec<NodeRef> {
        // Resolve the instance field id once per field step per document,
        // reusing the previous document's id when this instance's
        // dictionary validates it (the §4.2.1 single-row look-back).
        let cached = self.lookback.get(slot).copied().unwrap_or(LookBack::Empty);
        let resolved: Option<Option<FieldId>> = if dom.has_field_ids() {
            match cached {
                LookBack::Id(id) if dom.verify_field_id(id, name, hash) => {
                    self.lookback_hits += 1;
                    fsdm_obs::counter!(fsdm_obs::catalog::SQLJSON_LOOKBACK_HIT).inc();
                    Some(Some(id))
                }
                _ => {
                    let id = dom.field_id(name, hash);
                    self.lookback_misses += 1;
                    fsdm_obs::counter!(fsdm_obs::catalog::SQLJSON_LOOKBACK_MISS).inc();
                    if let Some(entry) = self.lookback.get_mut(slot) {
                        *entry = match id {
                            Some(i) => LookBack::Id(i),
                            None => {
                                fsdm_obs::counter!(fsdm_obs::catalog::SQLJSON_LOOKBACK_ABSENT)
                                    .inc();
                                LookBack::Absent
                            }
                        };
                    }
                    Some(id)
                }
            }
        } else {
            None // no instance dictionary: fall back to by-name lookup
        };
        let mut out = Vec::with_capacity(nodes.len());
        for &n in nodes {
            match dom.kind(n) {
                NodeKind::Object => {
                    let child = match resolved {
                        Some(Some(id)) => dom.get_field_by_id(n, id),
                        Some(None) => None,
                        None => dom.get_field(n, name, hash),
                    };
                    if let Some(c) = child {
                        out.push(c);
                    }
                }
                NodeKind::Array if mode == Mode::Lax => {
                    // lax implicit unwrap: apply the field step to object
                    // elements one level down
                    for i in 0..dom.array_len(n) {
                        let e = dom.array_element(n, i);
                        if dom.kind(e) == NodeKind::Object {
                            let child = match resolved {
                                Some(Some(id)) => dom.get_field_by_id(e, id),
                                Some(None) => None,
                                None => dom.get_field(e, name, hash),
                            };
                            if let Some(c) = child {
                                out.push(c);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }
}

fn apply_field_wildcard<D: JsonDom>(dom: &D, nodes: &[NodeRef], mode: Mode) -> Vec<NodeRef> {
    let mut out = Vec::new();
    let push_children = |n: NodeRef, out: &mut Vec<NodeRef>| {
        for i in 0..dom.object_len(n) {
            out.push(dom.object_entry(n, i).1);
        }
    };
    for &n in nodes {
        match dom.kind(n) {
            NodeKind::Object => push_children(n, &mut out),
            NodeKind::Array if mode == Mode::Lax => {
                for i in 0..dom.array_len(n) {
                    let e = dom.array_element(n, i);
                    if dom.kind(e) == NodeKind::Object {
                        push_children(e, &mut out);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn apply_array_wildcard<D: JsonDom>(dom: &D, nodes: &[NodeRef], mode: Mode) -> Vec<NodeRef> {
    let mut out = Vec::new();
    for &n in nodes {
        match dom.kind(n) {
            NodeKind::Array => {
                for i in 0..dom.array_len(n) {
                    out.push(dom.array_element(n, i));
                }
            }
            // lax implicit wrap: a non-array is a one-element array
            _ if mode == Mode::Lax => out.push(n),
            _ => {}
        }
    }
    out
}

fn apply_array_sel<D: JsonDom>(
    dom: &D,
    nodes: &[NodeRef],
    sels: &[ArraySel],
    mode: Mode,
) -> Vec<NodeRef> {
    let mut out = Vec::new();
    for &n in nodes {
        let is_array = dom.kind(n) == NodeKind::Array;
        if !is_array && mode != Mode::Lax {
            continue;
        }
        let len = if is_array { dom.array_len(n) } else { 1 };
        let get = |i: usize| -> NodeRef {
            if is_array {
                dom.array_element(n, i)
            } else {
                n
            }
        };
        for sel in sels {
            match sel {
                ArraySel::Index(ix) => {
                    if let Some(i) = ix.resolve(len) {
                        out.push(get(i));
                    }
                }
                ArraySel::Range(a, b) => {
                    // lax: a range reaching past the end selects the
                    // existing prefix (`$[0 to 2]` over one element yields
                    // that element)
                    let lo = a.resolve(len);
                    let hi = match b {
                        IndexExpr::At(i) => Some((*i).min(len.saturating_sub(1))),
                        other => other.resolve(len),
                    };
                    if let (Some(lo), Some(hi)) = (lo, hi) {
                        for i in lo..=hi.min(len.saturating_sub(1)) {
                            out.push(get(i));
                        }
                    }
                }
            }
        }
    }
    out
}

fn apply_filter<D: JsonDom>(
    dom: &D,
    nodes: &[NodeRef],
    pred: &Predicate,
    mode: Mode,
) -> Vec<NodeRef> {
    let mut out = Vec::new();
    for &n in nodes {
        // lax: filters over an array apply to its elements
        if mode == Mode::Lax && dom.kind(n) == NodeKind::Array {
            for i in 0..dom.array_len(n) {
                let e = dom.array_element(n, i);
                if eval_pred(dom, e, pred) {
                    out.push(e);
                }
            }
        } else if eval_pred(dom, n, pred) {
            out.push(n);
        }
    }
    out
}

/// Evaluate a relative (`@`) path without look-back caching (filter paths
/// are usually one or two steps; their per-document resolution cost is the
/// hash binary search, which is already cheap).
fn eval_rel_path<D: JsonDom>(dom: &D, ctx: NodeRef, steps: &[Step]) -> Vec<PathOutput> {
    let mut current = vec![ctx];
    for step in steps {
        match step {
            Step::Field { name, hash } => {
                let mut next = Vec::new();
                for &n in &current {
                    match dom.kind(n) {
                        NodeKind::Object => {
                            if let Some(c) = dom.get_field(n, name, *hash) {
                                next.push(c);
                            }
                        }
                        NodeKind::Array => {
                            for i in 0..dom.array_len(n) {
                                let e = dom.array_element(n, i);
                                if dom.kind(e) == NodeKind::Object {
                                    if let Some(c) = dom.get_field(e, name, *hash) {
                                        next.push(c);
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                current = next;
            }
            Step::FieldWildcard => current = apply_field_wildcard(dom, &current, Mode::Lax),
            Step::ArrayWildcard => current = apply_array_wildcard(dom, &current, Mode::Lax),
            Step::Array(sels) => current = apply_array_sel(dom, &current, sels, Mode::Lax),
            Step::Filter(p) => current = apply_filter(dom, &current, p, Mode::Lax),
            Step::Method(m) => {
                return current
                    .iter()
                    .filter_map(|&n| apply_method(dom, n, *m))
                    .map(PathOutput::Computed)
                    .collect()
            }
        }
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().map(PathOutput::Node).collect()
}

fn eval_pred<D: JsonDom>(dom: &D, ctx: NodeRef, pred: &Predicate) -> bool {
    match pred {
        Predicate::And(a, b) => eval_pred(dom, ctx, a) && eval_pred(dom, ctx, b),
        Predicate::Or(a, b) => eval_pred(dom, ctx, a) || eval_pred(dom, ctx, b),
        Predicate::Not(p) => !eval_pred(dom, ctx, p),
        Predicate::Exists(steps) => !eval_rel_path(dom, ctx, steps).is_empty(),
        Predicate::Cmp(lhs, op, rhs) => {
            let lv = operand_scalars(dom, ctx, lhs);
            let rv = operand_scalars(dom, ctx, rhs);
            // SQL/JSON existential comparison: true if any pair satisfies
            lv.iter().any(|a| rv.iter().any(|b| cmp_values(a, *op, b)))
        }
    }
}

/// Scalar values an operand denotes for the given context item.
fn operand_scalars<D: JsonDom>(dom: &D, ctx: NodeRef, op: &Operand) -> Vec<JsonValue> {
    match op {
        Operand::Lit(v) => vec![v.clone()],
        Operand::Path(steps) => eval_rel_path(dom, ctx, steps)
            .into_iter()
            .filter_map(|o| match o {
                PathOutput::Node(n) => match dom.kind(n) {
                    NodeKind::Scalar => Some(dom.scalar(n).to_value()),
                    // lax: unwrap an array of scalars for comparison
                    NodeKind::Array => None,
                    NodeKind::Object => None,
                },
                PathOutput::Computed(v) => Some(v),
            })
            .collect(),
    }
}

fn cmp_values(a: &JsonValue, op: CmpOp, b: &JsonValue) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::StartsWith => match (a, b) {
            (JsonValue::String(x), JsonValue::String(y)) => x.starts_with(y.as_str()),
            _ => false,
        },
        CmpOp::HasSubstring => match (a, b) {
            (JsonValue::String(x), JsonValue::String(y)) => x.contains(y.as_str()),
            _ => false,
        },
        _ => {
            let ord = match (a, b) {
                (JsonValue::Number(x), JsonValue::Number(y)) => Some(x.total_cmp(y)),
                (JsonValue::String(x), JsonValue::String(y)) => Some(x.cmp(y)),
                (JsonValue::Bool(x), JsonValue::Bool(y)) => Some(x.cmp(y)),
                (JsonValue::Null, JsonValue::Null) => Some(Equal),
                _ => None,
            };
            match (ord, op) {
                (None, CmpOp::Ne) => false, // type mismatch is not "not equal", it is unknown
                (None, _) => false,
                (Some(o), CmpOp::Eq) => o == Equal,
                (Some(o), CmpOp::Ne) => o != Equal,
                (Some(o), CmpOp::Lt) => o == Less,
                (Some(o), CmpOp::Le) => o != Greater,
                (Some(o), CmpOp::Gt) => o == Greater,
                (Some(o), CmpOp::Ge) => o != Less,
                _ => false,
            }
        }
    }
}

fn apply_method<D: JsonDom>(dom: &D, n: NodeRef, m: Method) -> Option<JsonValue> {
    let scalar = || -> Option<JsonValue> {
        (dom.kind(n) == NodeKind::Scalar).then(|| dom.scalar(n).to_value())
    };
    match m {
        Method::Type => {
            let t = match dom.kind(n) {
                NodeKind::Object => "object",
                NodeKind::Array => "array",
                NodeKind::Scalar => match dom.scalar(n) {
                    ScalarRef::Str(_) => "string",
                    ScalarRef::Num(_) => "number",
                    ScalarRef::Bool(_) => "boolean",
                    ScalarRef::Null => "null",
                },
            };
            Some(JsonValue::String(t.to_string()))
        }
        Method::Size => {
            let s = match dom.kind(n) {
                NodeKind::Array => dom.array_len(n),
                _ => 1,
            };
            Some(JsonValue::from(s))
        }
        Method::Length => match scalar()? {
            JsonValue::String(s) => Some(JsonValue::from(s.chars().count())),
            _ => None,
        },
        Method::Number => match scalar()? {
            v @ JsonValue::Number(_) => Some(v),
            JsonValue::String(s) => JsonNumber::from_literal(s.trim()).ok().map(JsonValue::Number),
            _ => None,
        },
        Method::StringM => match scalar()? {
            JsonValue::String(s) => Some(JsonValue::String(s)),
            JsonValue::Number(x) => Some(JsonValue::String(x.to_literal())),
            JsonValue::Bool(b) => Some(JsonValue::String(b.to_string())),
            _ => None,
        },
        Method::Upper => match scalar()? {
            JsonValue::String(s) => Some(JsonValue::String(s.to_uppercase())),
            _ => None,
        },
        Method::Lower => match scalar()? {
            JsonValue::String(s) => Some(JsonValue::String(s.to_lowercase())),
            _ => None,
        },
        Method::Abs => num_method(scalar()?, f64::abs),
        Method::Ceiling => num_method(scalar()?, f64::ceil),
        Method::Floor => num_method(scalar()?, f64::floor),
        Method::Double => match scalar()? {
            JsonValue::Number(x) => Some(JsonValue::Number(JsonNumber::Dbl(x.to_f64()))),
            JsonValue::String(s) => {
                s.trim().parse::<f64>().ok().map(|v| JsonValue::Number(JsonNumber::Dbl(v)))
            }
            _ => None,
        },
    }
}

fn num_method(v: JsonValue, f: fn(f64) -> f64) -> Option<JsonValue> {
    match v {
        JsonValue::Number(x) => Some(JsonValue::from(f(x.to_f64()))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;
    use fsdm_json::{parse, ValueDom};

    fn eval(doc: &str, path: &str) -> Vec<JsonValue> {
        let v = parse(doc).unwrap();
        let dom = ValueDom::new(&v);
        let mut ev = PathEvaluator::new(parse_path(path).unwrap());
        ev.evaluate_values(&dom)
    }

    const PO: &str = r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
        {"name":"phone","price":100,"quantity":2},
        {"name":"ipad","price":350.86,"quantity":3},
        {"name":"case","price":15,"quantity":10}]}}"#;

    #[test]
    fn simple_field_chain() {
        assert_eq!(eval(PO, "$.purchaseOrder.id"), vec![parse("1").unwrap()]);
        assert!(eval(PO, "$.purchaseOrder.missing").is_empty());
    }

    #[test]
    fn array_wildcard_and_unwrap() {
        let names = eval(PO, "$.purchaseOrder.items[*].name");
        assert_eq!(names.len(), 3);
        // lax: field step over the array without [*] unwraps implicitly
        let names2 = eval(PO, "$.purchaseOrder.items.name");
        assert_eq!(names, names2);
    }

    #[test]
    fn array_selectors() {
        assert_eq!(eval(PO, "$.purchaseOrder.items[1].name"), vec![parse("\"ipad\"").unwrap()]);
        assert_eq!(eval(PO, "$.purchaseOrder.items[last].name"), vec![parse("\"case\"").unwrap()]);
        assert_eq!(eval(PO, "$.purchaseOrder.items[0 to 1].name").len(), 2);
        assert_eq!(
            eval(PO, "$.purchaseOrder.items[last - 2].name"),
            vec![parse("\"phone\"").unwrap()]
        );
        assert!(eval(PO, "$.purchaseOrder.items[9].name").is_empty());
    }

    #[test]
    fn lax_wraps_scalars_for_array_steps() {
        assert_eq!(eval(PO, "$.purchaseOrder.id[0]"), vec![parse("1").unwrap()]);
        assert_eq!(eval(PO, "$.purchaseOrder.id[*]"), vec![parse("1").unwrap()]);
        assert!(eval("{\"a\":1}", "strict $.a[0]").is_empty());
    }

    #[test]
    fn filters() {
        let cheap = eval(PO, "$.purchaseOrder.items[*]?(@.price < 200).name");
        assert_eq!(cheap.len(), 2);
        let and = eval(PO, "$.purchaseOrder.items[*]?(@.price < 200 && @.quantity > 5).name");
        assert_eq!(and, vec![parse("\"case\"").unwrap()]);
        let or = eval(PO, "$.purchaseOrder.items[*]?(@.name == 'phone' || @.name == 'ipad')");
        assert_eq!(or.len(), 2);
        let exists = eval(PO, "$.purchaseOrder?(exists(@.items)).id");
        assert_eq!(exists, vec![parse("1").unwrap()]);
        let not = eval(PO, "$.purchaseOrder.items[*]?(!(@.name == 'case')).name");
        assert_eq!(not.len(), 2);
    }

    #[test]
    fn filter_without_explicit_wildcard_unwraps_in_lax() {
        let r = eval(PO, "$.purchaseOrder.items?(@.price > 300).name");
        assert_eq!(r, vec![parse("\"ipad\"").unwrap()]);
    }

    #[test]
    fn starts_with_and_substring() {
        assert_eq!(
            eval(PO, "$.purchaseOrder.items[*]?(@.name starts with 'ph').price"),
            vec![parse("100").unwrap()]
        );
        assert_eq!(
            eval(PO, "$.purchaseOrder.items[*]?(@.name has substring 'pa').name"),
            vec![parse("\"ipad\"").unwrap()]
        );
    }

    #[test]
    fn field_wildcard() {
        let all = eval(PO, "$.purchaseOrder.*");
        assert_eq!(all.len(), 3); // id, podate, items
    }

    #[test]
    fn methods() {
        assert_eq!(eval(PO, "$.purchaseOrder.items.type()"), vec![parse("\"array\"").unwrap()]);
        assert_eq!(eval(PO, "$.purchaseOrder.items.size()"), vec![parse("3").unwrap()]);
        assert_eq!(eval(PO, "$.purchaseOrder.podate.length()"), vec![parse("10").unwrap()]);
        assert_eq!(
            eval(PO, "$.purchaseOrder.items[0].name.upper()"),
            vec![parse("\"PHONE\"").unwrap()]
        );
        assert_eq!(eval("{\"x\":\"12.5\"}", "$.x.number()"), vec![parse("12.5").unwrap()]);
        assert_eq!(eval("{\"x\":-3}", "$.x.abs()"), vec![parse("3").unwrap()]);
        assert_eq!(eval("{\"x\":2.3}", "$.x.ceiling()"), vec![parse("3").unwrap()]);
        assert_eq!(eval("{\"x\":2.3}", "$.x.floor()"), vec![parse("2").unwrap()]);
    }

    #[test]
    fn literal_comparisons_against_numbers_and_strings() {
        assert_eq!(eval(PO, "$.purchaseOrder?(@.podate == '2014-09-08').id").len(), 1);
        assert_eq!(eval(PO, "$.purchaseOrder?(@.id >= 1).id").len(), 1);
        assert!(eval(PO, "$.purchaseOrder?(@.id == '1').id").is_empty(), "no cross-type eq");
    }

    #[test]
    fn lookback_cache_hits_on_oson_collections() {
        let mk = |name: &str, price: i64| {
            let text = format!(r#"{{"name":"{name}","price":{price}}}"#);
            fsdm_oson::encode(&parse(&text).unwrap()).unwrap()
        };
        let docs: Vec<Vec<u8>> = (0..10).map(|i| mk("x", i)).collect();
        let mut ev = PathEvaluator::new(parse_path("$.price").unwrap());
        let mut total = 0i64;
        for d in &docs {
            let doc = fsdm_oson::OsonDoc::new(d).unwrap();
            for o in ev.evaluate(&doc) {
                if let PathOutput::Node(n) = o {
                    if let ScalarRef::Num(num) = doc.scalar(n) {
                        total += num.to_i64().unwrap();
                    }
                }
            }
        }
        assert_eq!(total, 45);
        // 10 documents, same dictionary: 9 of the 10 resolutions are cached
        assert_eq!(ev.lookback_hits, 9);
    }

    #[test]
    fn engine_agrees_across_backends() {
        let v = parse(PO).unwrap();
        let oson_bytes = fsdm_oson::encode(&v).unwrap();
        let bson_bytes = fsdm_bson::encode(&v).unwrap();
        let paths = [
            "$.purchaseOrder.id",
            "$.purchaseOrder.items[*].price",
            "$.purchaseOrder.items[*]?(@.quantity > 2).name",
            "$.purchaseOrder.items[last].price",
        ];
        for p in paths {
            let dom = ValueDom::new(&v);
            let mut e1 = PathEvaluator::new(parse_path(p).unwrap());
            let r1 = e1.evaluate_values(&dom);
            let od = fsdm_oson::OsonDoc::new(&oson_bytes).unwrap();
            let mut e2 = PathEvaluator::new(parse_path(p).unwrap());
            let r2 = e2.evaluate_values(&od);
            let bd = fsdm_bson::BsonDoc::new(&bson_bytes).unwrap();
            let mut e3 = PathEvaluator::new(parse_path(p).unwrap());
            let r3 = e3.evaluate_values(&bd);
            assert_eq!(r1.len(), r2.len(), "{p}: dom vs oson");
            assert_eq!(r1.len(), r3.len(), "{p}: dom vs bson");
            for (a, b) in r1.iter().zip(&r2) {
                assert!(a.eq_unordered(b), "{p}: {a} vs {b}");
            }
            for (a, b) in r1.iter().zip(&r3) {
                assert!(a.eq_unordered(b), "{p}: {a} vs {b}");
            }
        }
    }
}

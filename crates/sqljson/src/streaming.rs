//! The streaming path engine over text parse events (§5.1).
//!
//! For *simple* paths — chains of field steps, array index selectors and
//! array wildcards — SQL/JSON operators on textual JSON are evaluated in
//! one pass over the event stream without materializing a DOM. Complex
//! operators (filters, `last`, item methods, JSON_TABLE) "require the
//! engine to memorize event sequences, in effect partially or completely
//! negating the benefit of avoiding DOM construction" — those fall back to
//! parsing the document into a DOM and running the [`crate::engine`]
//! evaluator, exactly the trade-off the paper describes.

use fsdm_json::{Event, EventParser, JsonError, JsonValue, Object, ValueDom};

use crate::engine::PathEvaluator;
use crate::path::{ArraySel, IndexExpr, JsonPath, Step};

/// Evaluate a path over JSON text. Uses the streaming engine when the path
/// is streamable; otherwise parses a DOM and runs the DOM engine.
pub fn eval_text(text: &str, path: &JsonPath) -> Result<Vec<JsonValue>, JsonError> {
    if path.is_streamable() {
        stream_values(text, path)
    } else {
        let v = fsdm_json::parse(text)?;
        let dom = ValueDom::new(&v);
        let mut ev = PathEvaluator::new(path.clone());
        Ok(ev.evaluate_values(&dom))
    }
}

/// Existence test over JSON text, short-circuiting on the first match when
/// streaming applies.
pub fn exists_text(text: &str, path: &JsonPath) -> Result<bool, JsonError> {
    if path.is_streamable() {
        stream_exists(text, path)
    } else {
        let v = fsdm_json::parse(text)?;
        let dom = ValueDom::new(&v);
        let mut ev = PathEvaluator::new(path.clone());
        Ok(ev.exists(&dom))
    }
}

/// Streaming evaluation of a streamable path, materializing every match.
pub fn stream_values(text: &str, path: &JsonPath) -> Result<Vec<JsonValue>, JsonError> {
    debug_assert!(path.is_streamable());
    let mut m = Matcher::new(path, false);
    m.run(text)?;
    Ok(m.results)
}

/// Streaming existence test: stops at the first match.
pub fn stream_exists(text: &str, path: &JsonPath) -> Result<bool, JsonError> {
    debug_assert!(path.is_streamable());
    let mut m = Matcher::new(path, true);
    m.run(text)?;
    Ok(m.found)
}

/// A pending step index plus whether it was already carried through one
/// lax array unwrap. Lax mode unwraps a single array level per field step
/// (ISO SQL/JSON; matching the DOM engine), so a field step that already
/// crossed into an array's elements must not cross into a nested array.
type Pos = (usize, bool);

/// Positions are indices into `path.steps`; a value holding position
/// `len(steps)` is a match.
struct Matcher<'p> {
    steps: &'p [Step],
    exists_only: bool,
    results: Vec<JsonValue>,
    found: bool,
    /// Stack frame per open container.
    frames: Vec<Frame>,
    /// In-flight capture builders (rarely more than one).
    builders: Vec<Builder>,
}

struct Frame {
    /// True for arrays (drives element indexing), false for objects.
    is_array: bool,
    /// Positions applicable to values directly inside this container.
    /// For objects these are filtered per key at each `Key` event.
    positions: Vec<Pos>,
    /// Positions for the *next* value inside an object (set by `Key`).
    value_positions: Vec<Pos>,
    /// Next element index (arrays).
    next_index: usize,
}

impl<'p> Matcher<'p> {
    fn new(path: &'p JsonPath, exists_only: bool) -> Self {
        Matcher {
            steps: &path.steps,
            exists_only,
            results: Vec::new(),
            found: false,
            frames: Vec::new(),
            builders: Vec::new(),
        }
    }

    fn run(&mut self, text: &str) -> Result<(), JsonError> {
        let mut parser = EventParser::new(text);
        // the root value carries position 0
        let mut pending: Vec<Pos> = vec![(0, false)];
        while let Some(event) = parser.next_event()? {
            if self.exists_only && self.found {
                // drain the parser cheaply to validate the document? No —
                // exists can return immediately; the caller only needed a
                // verdict on well-formed prefixes.
                return Ok(());
            }
            match event {
                Event::Key(k) => {
                    // the event parser only emits keys inside an open object
                    let Some(frame) = self.frames.last_mut() else {
                        debug_assert!(false, "key event outside any container");
                        continue;
                    };
                    let mut next = Vec::new();
                    for &(p, _) in &frame.positions {
                        if let Some(Step::Field { name, .. }) = self.steps.get(p) {
                            if name == &k {
                                next.push((p + 1, false));
                            }
                        }
                    }
                    frame.value_positions = next;
                    for b in &mut self.builders {
                        b.key(k.clone());
                    }
                }
                Event::StartObject | Event::StartArray => {
                    let is_array = matches!(event, Event::StartArray);
                    let positions = self.value_positions(&mut pending, is_array);
                    // feed the container start to builders already open
                    // *before* opening a capture rooted at this container
                    for b in &mut self.builders {
                        b.start_container(is_array);
                    }
                    self.begin_value_captures(&positions, is_array);
                    // positions that apply to the container's *children*:
                    let child_positions = if is_array {
                        let mut cp = Vec::new();
                        for &(p, unwrapped) in &positions {
                            match self.steps.get(p) {
                                Some(Step::ArrayWildcard) | Some(Step::Array(_)) => {
                                    cp.push((p, unwrapped))
                                }
                                // lax implicit unwrap: a field step over an
                                // array applies to its (object) elements —
                                // one level only, so a position that already
                                // crossed an array does not cross another
                                Some(Step::Field { .. }) if !unwrapped => cp.push((p, true)),
                                _ => {}
                            }
                        }
                        cp
                    } else {
                        positions.clone()
                    };
                    self.frames.push(Frame {
                        is_array,
                        positions: child_positions,
                        value_positions: Vec::new(),
                        next_index: 0,
                    });
                }
                Event::EndObject | Event::EndArray => {
                    self.frames.pop();
                    let mut finished = Vec::new();
                    for (i, b) in self.builders.iter_mut().enumerate() {
                        if b.end_container() {
                            finished.push(i);
                        }
                    }
                    // pop finished builders (outermost may finish only after
                    // inner ones; indices are removed back-to-front)
                    for &i in finished.iter().rev() {
                        let b = self.builders.remove(i);
                        self.results.push(b.into_value());
                    }
                }
                scalar => {
                    let positions = self.value_positions(&mut pending, false);
                    let v = scalar_value(&scalar);
                    let is_match = positions.iter().any(|&(p, _)| p == self.steps.len());
                    if is_match {
                        self.found = true;
                        if !self.exists_only {
                            self.results.push(v.clone());
                        }
                    }
                    for b in &mut self.builders {
                        b.scalar(v.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Positions applicable to the value that is starting now, including
    /// lax array-wrapping expansion (an array step applied to a non-array
    /// selects the value itself when index 0 is in the selector).
    fn value_positions(&mut self, pending: &mut Vec<Pos>, value_is_array: bool) -> Vec<Pos> {
        let mut positions = match self.frames.last_mut() {
            None => std::mem::take(pending),
            Some(f) if f.is_array => {
                let idx = f.next_index;
                f.next_index += 1;
                let mut out = Vec::new();
                for &(p, unwrapped) in &f.positions {
                    match self.steps.get(p) {
                        Some(Step::ArrayWildcard) => out.push((p + 1, false)),
                        Some(Step::Array(sels)) if sels.iter().any(|s| sel_matches(s, idx)) => {
                            out.push((p + 1, false))
                        }
                        // lax unwrap: the element re-tries the field step
                        Some(Step::Field { .. }) => out.push((p, unwrapped)),
                        _ => {}
                    }
                }
                out
            }
            Some(f) => std::mem::take(&mut f.value_positions),
        };
        if !value_is_array {
            // lax wrap: array steps treat a non-array as [value]
            let mut i = 0;
            while let Some(&(p, _)) = positions.get(i) {
                let wrap = match self.steps.get(p) {
                    Some(Step::ArrayWildcard) => true,
                    Some(Step::Array(sels)) => sels.iter().any(|s| sel_matches(s, 0)),
                    _ => false,
                };
                if wrap && !positions.iter().any(|q| q.0 == p + 1) {
                    positions.push((p + 1, false));
                }
                i += 1;
            }
        }
        positions.sort_unstable();
        positions.dedup();
        positions
    }

    fn begin_value_captures(&mut self, positions: &[Pos], is_array: bool) {
        if positions.iter().any(|&(p, _)| p == self.steps.len()) {
            self.found = true;
            if !self.exists_only {
                self.builders.push(Builder::new_container(is_array));
            }
        }
    }
}

fn sel_matches(sel: &ArraySel, idx: usize) -> bool {
    match sel {
        ArraySel::Index(IndexExpr::At(i)) => *i == idx,
        ArraySel::Range(IndexExpr::At(a), IndexExpr::At(b)) => idx >= *a && idx <= *b,
        // `last` selectors are rejected by is_streamable
        _ => false,
    }
}

fn scalar_value(e: &Event) -> JsonValue {
    match e {
        Event::String(s) => JsonValue::String(s.clone()),
        Event::Number(n) => JsonValue::Number(*n),
        Event::Bool(b) => JsonValue::Bool(*b),
        Event::Null => JsonValue::Null,
        _ => {
            // `run` only routes scalar events here
            debug_assert!(false, "container event in scalar position");
            JsonValue::Null
        }
    }
}

/// Incremental DOM builder fed by the event stream while a capture is
/// open. Tracks its own depth; `end_container` returns true when the
/// captured subtree is complete.
struct Builder {
    stack: Vec<JsonValue>,
    keys: Vec<Option<String>>,
    pending_key: Option<String>,
    done: Option<JsonValue>,
}

impl Builder {
    fn new_container(is_array: bool) -> Self {
        let root =
            if is_array { JsonValue::Array(Vec::new()) } else { JsonValue::Object(Object::new()) };
        Builder { stack: vec![root], keys: vec![None], pending_key: None, done: None }
    }

    fn key(&mut self, k: String) {
        self.pending_key = Some(k);
    }

    fn start_container(&mut self, is_array: bool) {
        let v =
            if is_array { JsonValue::Array(Vec::new()) } else { JsonValue::Object(Object::new()) };
        self.keys.push(self.pending_key.take());
        self.stack.push(v);
    }

    fn scalar(&mut self, v: JsonValue) {
        let key = self.pending_key.take();
        self.attach(key, v);
    }

    /// Returns true when the capture root has closed.
    fn end_container(&mut self) -> bool {
        let Some(v) = self.stack.pop() else {
            // a builder is removed as soon as its root closes, so every
            // end event delivered here has a matching open container
            debug_assert!(false, "end event on a finished builder");
            return true;
        };
        let key = self.keys.pop().flatten();
        if self.stack.is_empty() {
            self.done = Some(v);
            true
        } else {
            self.attach(key, v);
            false
        }
    }

    fn attach(&mut self, key: Option<String>, v: JsonValue) {
        match self.stack.last_mut() {
            Some(JsonValue::Array(a)) => a.push(v),
            Some(JsonValue::Object(o)) => {
                if let Some(k) = key {
                    o.push(k, v);
                } else {
                    // the parser emits a key before every object member
                    debug_assert!(false, "object member without a key");
                }
            }
            _ => debug_assert!(false, "attach without an open container"),
        }
    }

    fn into_value(self) -> JsonValue {
        debug_assert!(self.done.is_some(), "capture root has not closed");
        self.done.unwrap_or(JsonValue::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;
    use fsdm_json::parse;

    const PO: &str = r#"{"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[
        {"name":"phone","price":100,"quantity":2},
        {"name":"ipad","price":350.86,"quantity":3},
        {"name":"case","price":15,"quantity":10}]}}"#;

    fn stream(doc: &str, path: &str) -> Vec<JsonValue> {
        let p = parse_path(path).unwrap();
        assert!(p.is_streamable(), "{path} must be streamable");
        stream_values(doc, &p).unwrap()
    }

    #[test]
    fn streams_scalars() {
        assert_eq!(stream(PO, "$.purchaseOrder.id"), vec![parse("1").unwrap()]);
        assert_eq!(stream(PO, "$.purchaseOrder.items[1].price"), vec![parse("350.86").unwrap()]);
        assert_eq!(stream(PO, "$.purchaseOrder.items[*].name").len(), 3);
        assert!(stream(PO, "$.purchaseOrder.nothing").is_empty());
    }

    #[test]
    fn streams_containers() {
        let items = stream(PO, "$.purchaseOrder.items");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].as_array().unwrap().len(), 3);
        let first = stream(PO, "$.purchaseOrder.items[0]");
        assert_eq!(first[0].get("name").unwrap().as_str(), Some("phone"));
    }

    #[test]
    fn lax_unwrap_in_stream() {
        assert_eq!(stream(PO, "$.purchaseOrder.items.name").len(), 3);
    }

    #[test]
    fn lax_wrap_in_stream() {
        assert_eq!(stream(PO, "$.purchaseOrder.id[0]"), vec![parse("1").unwrap()]);
        assert_eq!(stream(PO, "$.purchaseOrder.id[*]"), vec![parse("1").unwrap()]);
        assert!(stream(PO, "$.purchaseOrder.id[1]").is_empty());
    }

    #[test]
    fn range_selectors() {
        assert_eq!(stream(PO, "$.purchaseOrder.items[0 to 1].price").len(), 2);
        assert_eq!(stream(PO, "$.purchaseOrder.items[0,2].price").len(), 2);
    }

    #[test]
    fn exists_short_circuits() {
        let p = parse_path("$.purchaseOrder.items[*].price").unwrap();
        assert!(stream_exists(PO, &p).unwrap());
        let p2 = parse_path("$.zz").unwrap();
        assert!(!stream_exists(PO, &p2).unwrap());
    }

    #[test]
    fn agrees_with_dom_engine() {
        let paths = [
            "$.purchaseOrder.id",
            "$.purchaseOrder.items",
            "$.purchaseOrder.items[*]",
            "$.purchaseOrder.items[1 to 2].name",
            "$.purchaseOrder.items.quantity",
            "$.purchaseOrder.id[0]",
        ];
        let v = parse(PO).unwrap();
        for p in paths {
            let jp = parse_path(p).unwrap();
            let streamed = stream_values(PO, &jp).unwrap();
            let dom = ValueDom::new(&v);
            let mut ev = PathEvaluator::new(jp.clone());
            let via_dom = ev.evaluate_values(&dom);
            assert_eq!(streamed.len(), via_dom.len(), "{p}");
            for (a, b) in streamed.iter().zip(&via_dom) {
                assert!(a.eq_unordered(b), "{p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn eval_text_falls_back_for_filters() {
        let p = parse_path("$.purchaseOrder.items[*]?(@.price > 100).name").unwrap();
        assert!(!p.is_streamable());
        let r = eval_text(PO, &p).unwrap();
        assert_eq!(r, vec![parse("\"ipad\"").unwrap()]);
        assert!(exists_text(PO, &p).unwrap());
    }

    #[test]
    fn nested_capture_regions() {
        // the array itself and one of its elements both match
        let doc = r#"{"a":[[5],[6]]}"#;
        let p = parse_path("$.a[*]").unwrap();
        let r = stream_values(doc, &p).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], parse("[5]").unwrap());
    }
}

//! SQL scalar values exchanged between the JSON world and the SQL world.
//!
//! `JSON_VALUE` and `JSON_TABLE` columns produce typed SQL scalars; the
//! relational engine consumes and compares them. Numbers ride on
//! [`JsonNumber`] (whose exact decimal form is the Oracle NUMBER encoding
//! shared with OSON leaves — design criterion 3 of §4.1).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use fsdm_json::{JsonNumber, JsonValue};

/// SQL column types available to `RETURNING` clauses and view columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlType {
    /// Variable-length string with a maximum byte length.
    Varchar2(usize),
    /// Oracle-style NUMBER.
    Number,
    /// Boolean.
    Boolean,
    /// Pass-through: whatever scalar the path produced.
    Any,
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Varchar2(n) => write!(f, "varchar2({n})"),
            SqlType::Number => write!(f, "number"),
            SqlType::Boolean => write!(f, "boolean"),
            SqlType::Any => write!(f, "any"),
        }
    }
}

/// A (nullable) SQL scalar.
#[derive(Debug, Clone)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// Numeric value.
    Num(JsonNumber),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Datum {
    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Numeric view (with string→number coercion as Oracle would apply in
    /// numeric context).
    pub fn as_num(&self) -> Option<JsonNumber> {
        match self {
            Datum::Num(n) => Some(*n),
            Datum::Str(s) => JsonNumber::from_literal(s.trim()).ok(),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as text (for display and string context).
    pub fn to_text(&self) -> String {
        match self {
            Datum::Null => String::new(),
            Datum::Num(n) => n.to_literal(),
            Datum::Str(s) => s.clone(),
            Datum::Bool(b) => b.to_string(),
        }
    }

    /// Convert a JSON scalar value into a datum (containers are not SQL
    /// scalars and yield `None`).
    pub fn from_json_scalar(v: &JsonValue) -> Option<Datum> {
        match v {
            JsonValue::Null => Some(Datum::Null),
            JsonValue::Bool(b) => Some(Datum::Bool(*b)),
            JsonValue::Number(n) => Some(Datum::Num(*n)),
            JsonValue::String(s) => Some(Datum::Str(s.clone())),
            _ => None,
        }
    }

    /// Coerce to a SQL type per RETURNING semantics. `None` = conversion
    /// error (caller applies ON ERROR handling).
    pub fn coerce(self, ty: SqlType) -> Option<Datum> {
        if self.is_null() {
            return Some(Datum::Null);
        }
        match ty {
            SqlType::Any => Some(self),
            SqlType::Number => self.as_num().map(Datum::Num),
            SqlType::Boolean => match self {
                Datum::Bool(b) => Some(Datum::Bool(b)),
                Datum::Str(s) => match s.to_ascii_lowercase().as_str() {
                    "true" => Some(Datum::Bool(true)),
                    "false" => Some(Datum::Bool(false)),
                    _ => None,
                },
                _ => None,
            },
            SqlType::Varchar2(maxlen) => {
                let s = self.to_text();
                if s.len() > maxlen {
                    None // exceeds declared length: conversion error
                } else {
                    Some(Datum::Str(s))
                }
            }
        }
    }

    /// SQL comparison: NULL compares as unknown (`None`); cross-type
    /// numeric/string comparisons coerce strings to numbers when the other
    /// side is numeric.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Num(a), Datum::Num(b)) => Some(a.total_cmp(b)),
            (Datum::Str(a), Datum::Str(b)) => Some(a.cmp(b)),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Num(a), Datum::Str(_)) => other.as_num().map(|b| a.total_cmp(&b)),
            (Datum::Str(_), Datum::Num(b)) => self.as_num().map(|a| a.total_cmp(b)),
            _ => None,
        }
    }

    /// Total order for ORDER BY / grouping: NULLs sort last, then by kind.
    pub fn order_key_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Bool(_) => 0,
                Datum::Num(_) => 1,
                Datum::Str(_) => 2,
                Datum::Null => 3,
            }
        }
        match (self, other) {
            (Datum::Num(a), Datum::Num(b)) => a.total_cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.cmp(b),
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        // group-by equality: NULL groups with NULL (unlike predicate
        // equality, which callers express through sql_cmp)
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            (Datum::Num(a), Datum::Num(b)) => a == b,
            (Datum::Str(a), Datum::Str(b)) => a == b,
            (Datum::Bool(a), Datum::Bool(b)) => a == b,
            _ => false,
        }
    }
}
impl Eq for Datum {}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => 0u8.hash(state),
            Datum::Num(n) => {
                1u8.hash(state);
                n.hash(state);
            }
            Datum::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Datum::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            other => f.write_str(&other.to_text()),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Num(JsonNumber::Int(v))
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Num(JsonNumber::from(v))
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Str(v.to_string())
    }
}
impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Str(v)
    }
}
impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercion_rules() {
        assert_eq!(Datum::from("42").coerce(SqlType::Number), Some(Datum::from(42i64)));
        assert_eq!(Datum::from("x").coerce(SqlType::Number), None);
        assert_eq!(Datum::from(7i64).coerce(SqlType::Varchar2(10)), Some(Datum::from("7")));
        assert_eq!(Datum::from("too long!!").coerce(SqlType::Varchar2(3)), None);
        assert_eq!(Datum::from("TRUE").coerce(SqlType::Boolean), Some(Datum::Bool(true)));
        assert_eq!(Datum::Null.coerce(SqlType::Number), Some(Datum::Null));
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::from(1i64)), None);
        assert_eq!(Datum::from(1i64).sql_cmp(&Datum::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_string_coercion() {
        assert_eq!(Datum::from("10").sql_cmp(&Datum::from(9i64)), Some(Ordering::Greater));
        assert_eq!(Datum::from("abc").sql_cmp(&Datum::from(9i64)), None);
    }

    #[test]
    fn group_equality_includes_null() {
        assert_eq!(Datum::Null, Datum::Null);
        assert_ne!(Datum::Null, Datum::from(0i64));
    }

    #[test]
    fn order_key_total() {
        let mut v = vec![
            Datum::Null,
            Datum::from("b"),
            Datum::from(2i64),
            Datum::from("a"),
            Datum::from(1i64),
            Datum::Bool(false),
        ];
        v.sort_by(|a, b| a.order_key_cmp(b));
        assert_eq!(
            v,
            vec![
                Datum::Bool(false),
                Datum::from(1i64),
                Datum::from(2i64),
                Datum::from("a"),
                Datum::from("b"),
                Datum::Null,
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Datum::Null.to_string(), "NULL");
        assert_eq!(Datum::from(2.5).to_string(), "2.5");
    }
}

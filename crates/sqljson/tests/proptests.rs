//! Property-based tests for the SQL/JSON layer: streaming/DOM engine
//! agreement, OSON/BSON backend agreement, and parser totality.

use fsdm_json::{JsonNumber, JsonValue, Object, ValueDom};
use fsdm_sqljson::streaming;
use fsdm_sqljson::{parse_path, PathEvaluator};
use proptest::prelude::*;

/// Documents shaped like realistic collections: bounded depth, fields
/// drawn from a small vocabulary so paths actually hit.
fn arb_doc() -> impl Strategy<Value = JsonValue> {
    let field = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("items".to_string()),
        Just("name".to_string()),
        Just("price".to_string()),
    ];
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        (-100i64..100).prop_map(|v| JsonValue::Number(JsonNumber::Int(v))),
        "[a-z]{0,6}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(3, 40, 5, move |inner| {
        let field = field.clone();
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(JsonValue::Array),
            prop::collection::vec((field, inner), 0..5).prop_map(|pairs| {
                let mut o = Object::new();
                let mut seen = std::collections::HashSet::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        o.push(k, v);
                    }
                }
                JsonValue::Object(o)
            }),
        ]
    })
}

/// Streamable paths over the same vocabulary.
fn arb_streamable_path() -> impl Strategy<Value = String> {
    let step = prop_oneof![
        Just(".a".to_string()),
        Just(".b".to_string()),
        Just(".items".to_string()),
        Just(".name".to_string()),
        Just(".price".to_string()),
        Just("[*]".to_string()),
        Just("[0]".to_string()),
        Just("[1]".to_string()),
        Just("[0 to 2]".to_string()),
    ];
    prop::collection::vec(step, 1..5).prop_map(|steps| format!("${}", steps.concat()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Streaming evaluation over text == DOM evaluation, for every
    /// streamable path on every document.
    #[test]
    fn streaming_agrees_with_dom(doc in arb_doc(), path in arb_streamable_path()) {
        let jp = parse_path(&path).unwrap();
        prop_assume!(jp.is_streamable());
        let text = fsdm_json::to_string(&doc);
        let streamed = streaming::stream_values(&text, &jp).unwrap();
        let dom = ValueDom::new(&doc);
        let mut ev = PathEvaluator::new(jp.clone());
        let via_dom = ev.evaluate_values(&dom);
        prop_assert_eq!(streamed.len(), via_dom.len(), "path {} on {}", path, text);
        for (a, b) in streamed.iter().zip(&via_dom) {
            prop_assert!(a.eq_unordered(b), "{}: {} vs {}", path, a, b);
        }
        // existence agrees too
        prop_assert_eq!(
            streaming::stream_exists(&text, &jp).unwrap(),
            !via_dom.is_empty()
        );
    }

    /// OSON and BSON backends agree with the in-memory DOM for all paths,
    /// including filters.
    #[test]
    fn binary_backends_agree(doc in arb_doc(), path in arb_streamable_path()) {
        // only object-rooted docs encode to BSON
        prop_assume!(doc.is_object());
        let full = format!("{path}?(@.price >= 0)");
        for p in [path.as_str(), full.as_str()] {
            let jp = parse_path(p).unwrap();
            let dom = ValueDom::new(&doc);
            let mut e0 = PathEvaluator::new(jp.clone());
            let expected = e0.evaluate_values(&dom);

            let oson = fsdm_oson::encode(&doc).unwrap();
            let od = fsdm_oson::OsonDoc::new(&oson).unwrap();
            let mut e1 = PathEvaluator::new(jp.clone());
            let got = e1.evaluate_values(&od);
            prop_assert_eq!(expected.len(), got.len(), "oson {}", p);
            for (a, b) in expected.iter().zip(&got) {
                prop_assert!(a.eq_unordered(b), "oson {}: {} vs {}", p, a, b);
            }

            let bson = fsdm_bson::encode(&doc).unwrap();
            let bd = fsdm_bson::BsonDoc::new(&bson).unwrap();
            let mut e2 = PathEvaluator::new(jp.clone());
            let got_b = e2.evaluate_values(&bd);
            prop_assert_eq!(expected.len(), got_b.len(), "bson {}", p);
        }
    }

    /// The path parser is total (never panics) on arbitrary input.
    #[test]
    fn path_parser_total(input in "\\PC{0,40}") {
        let _ = parse_path(&input);
    }

    /// Any parsed path's text round-trips through Display.
    #[test]
    fn path_text_roundtrip(path in arb_streamable_path()) {
        let jp = parse_path(&path).unwrap();
        let again = parse_path(jp.text()).unwrap();
        prop_assert_eq!(jp.steps, again.steps);
    }
}

//! Regression test for the §4.2.1 cross-document look-back cache.
//!
//! Over a homogeneous NoBench-style collection (every document encoded
//! from the same shape, hence the same OSON field-id dictionary) the
//! evaluator must resolve nearly every field step from the cached field
//! id: ≥ 90% `sqljson.lookback.hit` rate. Over a heterogeneous
//! collection alternating between two unrelated shapes, consecutive
//! documents invalidate the cache and misses must dominate.
//!
//! This file holds a single test on purpose: it asserts exact deltas of
//! the process-global metrics registry, so it must not share its test
//! binary (= process) with other metric-recording tests.

use fsdm_oson::OsonDoc;
use fsdm_sqljson::{parse_path, PathEvaluator};

fn encode(text: &str) -> Vec<u8> {
    fsdm_oson::encode(&fsdm_json::parse(text).unwrap()).unwrap()
}

#[test]
fn lookback_hits_on_homogeneous_misses_on_heterogeneous() {
    let path = parse_path("$.nested_obj.num").unwrap();

    // -- homogeneous: 100 docs, one shape (NoBench-style field names) --
    let homo: Vec<Vec<u8>> = (0..100)
        .map(|i| {
            encode(&format!(
                r#"{{"str1":"s{i}","num":{i},"bool":true,
                    "nested_obj":{{"str":"x","num":{i}}}}}"#
            ))
        })
        .collect();
    let before = fsdm_obs::snapshot();
    let mut ev = PathEvaluator::new(path.clone());
    let mut matched = 0usize;
    for bytes in &homo {
        let doc = OsonDoc::new(bytes).unwrap();
        matched += ev.evaluate_values(&doc).len();
    }
    assert_eq!(matched, 100, "every document has $.nested_obj.num");
    // instance counters: 2 field steps; only the first document resolves
    // against the dictionary, the other 99 reuse the cached field ids
    assert_eq!(ev.lookback_hits, 198);
    assert_eq!(ev.lookback_misses, 2);
    // the same numbers must flow into the global registry
    let delta = fsdm_obs::snapshot().diff(&before);
    assert_eq!(delta.counter("sqljson.lookback.hit"), 198);
    assert_eq!(delta.counter("sqljson.lookback.miss"), 2);
    let hit = delta.counter("sqljson.lookback.hit") as f64;
    let total = hit + delta.counter("sqljson.lookback.miss") as f64;
    assert!(
        hit / total >= 0.90,
        "homogeneous look-back hit rate {:.1}% < 90%",
        100.0 * hit / total
    );
    assert_eq!(delta.counter("sqljson.eval.paths"), 100);

    // -- heterogeneous: alternating shapes => different dictionaries --
    let hetero: Vec<Vec<u8>> = (0..100)
        .map(|i| {
            if i % 2 == 0 {
                encode(&format!(r#"{{"str1":"a","num":{i},"nested_obj":{{"str":"x","num":{i}}}}}"#))
            } else {
                encode(&format!(
                    r#"{{"extra_a":1,"extra_b":2,"extra_c":3,"zz":9,
                        "nested_obj":{{"num":{i},"other":1,"deep":{{"w":0}}}}}}"#
                ))
            }
        })
        .collect();
    let before = fsdm_obs::snapshot();
    let mut ev = PathEvaluator::new(path);
    let mut matched = 0usize;
    for bytes in &hetero {
        let doc = OsonDoc::new(bytes).unwrap();
        matched += ev.evaluate_values(&doc).len();
    }
    assert_eq!(matched, 100);
    let delta = fsdm_obs::snapshot().diff(&before);
    assert_eq!(delta.counter("sqljson.lookback.hit"), ev.lookback_hits);
    assert_eq!(delta.counter("sqljson.lookback.miss"), ev.lookback_misses);
    assert!(
        ev.lookback_misses > ev.lookback_hits,
        "heterogeneous collection must be miss-dominated: {} hits vs {} misses",
        ev.lookback_hits,
        ev.lookback_misses
    );
}

//! Strict-mode path semantics: no implicit array wrapping/unwrapping.

use fsdm_json::{parse, JsonValue, ValueDom};
use fsdm_sqljson::{parse_path, PathEvaluator};

fn eval(doc: &str, path: &str) -> Vec<JsonValue> {
    let v = parse(doc).unwrap();
    let dom = ValueDom::new(&v);
    let mut ev = PathEvaluator::new(parse_path(path).unwrap());
    ev.evaluate_values(&dom)
}

const DOC: &str = r#"{"a":{"b":1},"items":[{"p":1},{"p":2}],"s":5}"#;

#[test]
fn strict_no_unwrap_for_field_steps() {
    // lax: field step over an array unwraps; strict: empty
    assert_eq!(eval(DOC, "$.items.p").len(), 2);
    assert_eq!(eval(DOC, "strict $.items.p").len(), 0);
    assert_eq!(eval(DOC, "strict $.items[*].p").len(), 2);
}

#[test]
fn strict_no_wrap_for_array_steps() {
    assert_eq!(eval(DOC, "$.s[0]").len(), 1);
    assert_eq!(eval(DOC, "strict $.s[0]").len(), 0);
    assert_eq!(eval(DOC, "$.s[*]").len(), 1);
    assert_eq!(eval(DOC, "strict $.s[*]").len(), 0);
}

#[test]
fn strict_plain_navigation_still_works() {
    assert_eq!(eval(DOC, "strict $.a.b"), vec![parse("1").unwrap()]);
    assert_eq!(eval(DOC, "strict $.items[1].p"), vec![parse("2").unwrap()]);
    assert_eq!(eval(DOC, "strict $.items[0 to 1].p").len(), 2);
}

#[test]
fn strict_wildcards_on_matching_kinds() {
    assert_eq!(eval(DOC, "strict $.*").len(), 3);
    assert_eq!(eval(DOC, "strict $.items[*]").len(), 2);
}

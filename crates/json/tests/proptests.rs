//! Property-based tests for the JSON substrate: text round-tripping,
//! OraNum order preservation, and parser/event-stream agreement.

use fsdm_json::{parse, to_string, Event, EventParser, JsonNumber, JsonValue, Object, OraNum};
use proptest::prelude::*;

/// Generator for arbitrary JSON values of bounded depth/size.
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<i64>().prop_map(|v| JsonValue::Number(JsonNumber::Int(v))),
        (-1_000_000i64..1_000_000, 0u32..10_000).prop_map(|(i, f)| JsonValue::Number(
            JsonNumber::from_literal(&format!("{i}.{f:04}")).unwrap()
        )),
        "[a-zA-Z0-9 _\\-\u{e9}\u{1F600}]{0,20}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(JsonValue::Array),
            prop::collection::vec(("[a-zA-Z_][a-zA-Z0-9_]{0,12}", inner), 0..8).prop_map(|pairs| {
                let mut o = Object::new();
                let mut seen = std::collections::HashSet::new();
                for (k, v) in pairs {
                    if seen.insert(k.clone()) {
                        o.push(k, v);
                    }
                }
                JsonValue::Object(o)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// serialize → parse is the identity on the value model.
    #[test]
    fn text_roundtrip(v in arb_json()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// The event stream is balanced and contains one scalar/Start event per
    /// value node of the DOM.
    #[test]
    fn event_stream_agrees_with_dom(v in arb_json()) {
        let text = to_string(&v);
        let events = EventParser::new(&text).collect_events().unwrap();
        let mut depth: i64 = 0;
        let mut value_nodes = 0usize;
        for e in &events {
            match e {
                Event::StartObject | Event::StartArray => { value_nodes += 1; depth += 1; }
                Event::EndObject | Event::EndArray => { depth -= 1; prop_assert!(depth >= 0); }
                Event::Key(_) => {}
                _ => value_nodes += 1,
            }
        }
        prop_assert_eq!(depth, 0);
        prop_assert_eq!(value_nodes, v.node_count());
    }

    /// OraNum byte order equals numeric order over random i64 pairs.
    #[test]
    fn oranum_i64_order(a in any::<i64>(), b in any::<i64>()) {
        let (na, nb) = (OraNum::from_i64(a), OraNum::from_i64(b));
        prop_assert_eq!(na.cmp(&nb), a.cmp(&b));
    }

    /// OraNum i64 encoding round-trips exactly.
    #[test]
    fn oranum_i64_roundtrip(a in any::<i64>()) {
        prop_assert_eq!(OraNum::from_i64(a).to_i64(), Some(a));
    }

    /// OraNum byte order equals numeric order over random decimals.
    #[test]
    fn oranum_decimal_order(
        (ai, af) in (-1_000_000i64..1_000_000, 0u32..1_000_000),
        (bi, bf) in (-1_000_000i64..1_000_000, 0u32..1_000_000),
    ) {
        // build decimals with explicit sign handling: value = i + sign*0.f
        let mk = |i: i64, f: u32| -> (f64, OraNum) {
            let s = if i < 0 {
                format!("-{}.{:06}", i.unsigned_abs(), f)
            } else {
                format!("{i}.{f:06}")
            };
            (s.parse::<f64>().unwrap(), OraNum::from_decimal_str(&s).unwrap())
        };
        let (fa, na) = mk(ai, af);
        let (fb, nb) = mk(bi, bf);
        prop_assert_eq!(na.cmp(&nb), fa.partial_cmp(&fb).unwrap());
    }

    /// Canonical decimal strings re-parse to an equal OraNum.
    #[test]
    fn oranum_string_roundtrip(i in -10_000_000i64..10_000_000, f in 0u32..100_000) {
        let s = if i < 0 {
            format!("-{}.{:05}", i.unsigned_abs(), f)
        } else {
            format!("{i}.{f:05}")
        };
        let n = OraNum::from_decimal_str(&s).unwrap();
        let n2 = OraNum::from_decimal_str(&n.to_decimal_string()).unwrap();
        prop_assert_eq!(n, n2);
    }

    /// from_bytes accepts exactly what as_bytes produced.
    #[test]
    fn oranum_bytes_roundtrip(a in any::<i64>()) {
        let n = OraNum::from_i64(a);
        prop_assert_eq!(OraNum::from_bytes(n.as_bytes()).unwrap(), n);
    }

    /// Parser never panics on arbitrary input bytes.
    #[test]
    fn parser_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = fsdm_json::parse_bytes(&bytes);
        let mut ev = EventParser::from_bytes(&bytes);
        for _ in 0..10_000 {
            match ev.next_event() {
                Ok(Some(_)) => {}
                _ => break,
            }
        }
    }
}

//! Error type shared by the JSON parser and serializer.

use std::fmt;

/// Error produced while parsing or encoding JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected, if known.
    pub offset: Option<usize>,
}

impl JsonError {
    /// Create an error with a byte offset into the input.
    pub fn at(message: impl Into<String>, offset: usize) -> Self {
        JsonError { message: message.into(), offset: Some(offset) }
    }

    /// Create an error with no positional information.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError { message: message.into(), offset: None }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "JSON error at byte {}: {}", off, self.message),
            None => write!(f, "JSON error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, JsonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_offset() {
        let e = JsonError::at("bad token", 17);
        assert_eq!(e.to_string(), "JSON error at byte 17: bad token");
    }

    #[test]
    fn display_without_offset() {
        let e = JsonError::new("truncated");
        assert_eq!(e.to_string(), "JSON error: truncated");
    }
}

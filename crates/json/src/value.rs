//! The in-memory JSON document object model.

use std::fmt;

use crate::number::JsonNumber;

/// A JSON object: an ordered list of key/value pairs. Insertion order is
/// preserved (it matters for round-tripping and for OSON encoding tests);
/// lookup is linear, which is fine for the small fan-outs JSON objects have
/// in practice — the binary formats provide the fast lookup paths.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Object {
    entries: Vec<(String, JsonValue)>,
}

impl Object {
    /// Empty object.
    pub fn new() -> Self {
        Object { entries: Vec::new() }
    }

    /// Empty object with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Object { entries: Vec::with_capacity(n) }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append or replace the member `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) {
        let key = key.into();
        let value = value.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Append a member without checking for duplicates (parser fast path;
    /// JSON permits duplicate keys, and lookups return the first).
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) {
        self.entries.push((key.into(), value.into()));
    }

    /// First member with the given key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the first member with the given key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut JsonValue> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Remove (all) members with the given key; returns the first removed
    /// value if any.
    pub fn remove(&mut self, key: &str) -> Option<JsonValue> {
        let mut removed = None;
        self.entries.retain_mut(|(k, v)| {
            if k == key {
                if removed.is_none() {
                    removed = Some(std::mem::replace(v, JsonValue::Null));
                }
                false
            } else {
                true
            }
        });
        removed
    }

    /// Iterate members in document order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &JsonValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterate members mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut JsonValue)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Member at a document-order position.
    pub fn entry_at(&self, idx: usize) -> Option<(&str, &JsonValue)> {
        self.entries.get(idx).map(|(k, v)| (k.as_str(), v))
    }

    /// True when a member with this key exists.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

impl FromIterator<(String, JsonValue)> for Object {
    fn from_iter<T: IntoIterator<Item = (String, JsonValue)>>(iter: T) -> Self {
        Object { entries: iter.into_iter().collect() }
    }
}

/// A JSON value: one of the three node kinds of the paper's data model
/// (object, array, scalar), with scalars split into the four JSON scalar
/// types.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum JsonValue {
    /// JSON object node.
    Object(Object),
    /// JSON array node.
    Array(Vec<JsonValue>),
    /// String scalar.
    String(String),
    /// Numeric scalar.
    Number(JsonNumber),
    /// Boolean scalar.
    Bool(bool),
    /// Null scalar.
    #[default]
    Null,
}

impl JsonValue {
    /// Shorthand for an object built from pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        let mut o = Object::new();
        for (k, v) in pairs {
            o.push(k, v);
        }
        JsonValue::Object(o)
    }

    /// Shorthand for an array.
    pub fn array(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// True for object nodes.
    pub fn is_object(&self) -> bool {
        matches!(self, JsonValue::Object(_))
    }

    /// True for array nodes.
    pub fn is_array(&self) -> bool {
        matches!(self, JsonValue::Array(_))
    }

    /// True for any scalar (string, number, boolean, null).
    pub fn is_scalar(&self) -> bool {
        !self.is_object() && !self.is_array()
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable object view.
    pub fn as_object_mut(&mut self) -> Option<&mut Object> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array view.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<JsonValue>> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String scalar view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number scalar view.
    pub fn as_number(&self) -> Option<&JsonNumber> {
        match self {
            JsonValue::Number(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `f64` (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(|n| n.to_f64())
    }

    /// Numeric value as `i64` when integral.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_number().and_then(|n| n.to_i64())
    }

    /// Boolean scalar view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for the null scalar.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Member access for objects (None for other kinds).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Element access for arrays (None for other kinds).
    pub fn at(&self, idx: usize) -> Option<&JsonValue> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Total number of nodes in the tree rooted here (used by statistics).
    pub fn node_count(&self) -> usize {
        match self {
            JsonValue::Object(o) => 1 + o.iter().map(|(_, v)| v.node_count()).sum::<usize>(),
            JsonValue::Array(a) => 1 + a.iter().map(|v| v.node_count()).sum::<usize>(),
            _ => 1,
        }
    }

    /// Structural equality that ignores object member order (arrays stay
    /// ordered). Binary formats such as OSON store object members sorted
    /// by field id, so a decode returns the same *JSON data model* value
    /// with a possibly different member order; this is the right equality
    /// for such round-trips. Objects with duplicate keys compare by the
    /// multiset of (key, value) pairs.
    pub fn eq_unordered(&self, other: &JsonValue) -> bool {
        match (self, other) {
            (JsonValue::Object(a), JsonValue::Object(b)) => {
                if a.len() != b.len() {
                    return false;
                }
                let mut used = vec![false; b.len()];
                'outer: for (k, v) in a.iter() {
                    for (i, (k2, v2)) in b.iter().enumerate() {
                        if !used[i] && k == k2 && v.eq_unordered(v2) {
                            used[i] = true;
                            continue 'outer;
                        }
                    }
                    return false;
                }
                true
            }
            (JsonValue::Array(a), JsonValue::Array(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.eq_unordered(y))
            }
            (x, y) => x == y,
        }
    }

    /// Maximum depth of the tree (a scalar has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            JsonValue::Object(o) => 1 + o.iter().map(|(_, v)| v.depth()).max().unwrap_or(0),
            JsonValue::Array(a) => 1 + a.iter().map(|v| v.depth()).max().unwrap_or(0),
            _ => 1,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::to_string(self))
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Number(JsonNumber::Int(v))
    }
}
impl From<i32> for JsonValue {
    fn from(v: i32) -> Self {
        JsonValue::Number(JsonNumber::Int(v as i64))
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::Number(JsonNumber::Int(v as i64))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(JsonNumber::Int(v as i64))
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(JsonNumber::from(v))
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<JsonNumber> for JsonValue {
    fn from(v: JsonNumber) -> Self {
        JsonValue::Number(v)
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => JsonValue::Null,
        }
    }
}
impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}
impl From<Object> for JsonValue {
    fn from(o: Object) -> Self {
        JsonValue::Object(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        JsonValue::object([
            ("id", 1.into()),
            ("name", "phone".into()),
            ("tags", JsonValue::array(["a".into(), "b".into()])),
            ("price", 99.5.into()),
            ("active", true.into()),
            ("notes", JsonValue::Null),
        ])
    }

    #[test]
    fn object_insert_replaces() {
        let mut o = Object::new();
        o.insert("a", 1);
        o.insert("a", 2);
        assert_eq!(o.len(), 1);
        assert_eq!(o.get("a").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn object_preserves_order() {
        let v = sample();
        let o = v.as_object().unwrap();
        let keys: Vec<&str> = o.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["id", "name", "tags", "price", "active", "notes"]);
    }

    #[test]
    fn object_remove() {
        let mut o = Object::new();
        o.push("x", 1);
        o.push("y", 2);
        assert_eq!(o.remove("x").unwrap().as_i64(), Some(1));
        assert!(o.remove("x").is_none());
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn duplicate_keys_first_wins_on_get() {
        let mut o = Object::new();
        o.push("k", 1);
        o.push("k", 2);
        assert_eq!(o.get("k").unwrap().as_i64(), Some(1));
        assert_eq!(o.len(), 2);
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert!(v.is_object());
        assert_eq!(v.get("name").unwrap().as_str(), Some("phone"));
        assert_eq!(v.get("tags").unwrap().at(1).unwrap().as_str(), Some("b"));
        assert_eq!(v.get("id").unwrap().as_i64(), Some(1));
        assert_eq!(v.get("active").unwrap().as_bool(), Some(true));
        assert!(v.get("notes").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn node_count_and_depth() {
        let v = sample();
        // root + 6 members + 2 array elements = 9
        assert_eq!(v.node_count(), 9);
        assert_eq!(v.depth(), 3);
        assert_eq!(JsonValue::Null.depth(), 1);
    }

    #[test]
    fn scalar_classification() {
        assert!(JsonValue::Null.is_scalar());
        assert!(JsonValue::from(3).is_scalar());
        assert!(!JsonValue::array([]).is_scalar());
    }
}

//! The abstract JSON DOM interface of §5.1.
//!
//! The paper's DOM path engine evaluates SQL/JSON path steps through four
//! read operations (`JsonDomGetNodeType`, `JsonDomGetFieldValue`,
//! `JsonDomGetArrayElement`, `JsonDomGetScalarInfo`) so the same engine can
//! run over an in-memory DOM tree or directly over a serialized OSON
//! instance, where node addresses are byte offsets instead of machine
//! pointers. [`JsonDom`] is that interface; [`ValueDom`] adapts the
//! in-memory [`JsonValue`] tree to it, and `fsdm-oson` implements it over
//! serialized bytes.

use crate::number::JsonNumber;
use crate::value::JsonValue;

/// Abstract tree-node address. For [`ValueDom`] this is a dense node index;
/// for OSON it is the byte offset of the node within the tree-node
/// navigation segment.
pub type NodeRef = u64;

/// Instance-scoped field name identifier (OSON: ordinal in the hash-sorted
/// field-id-name dictionary).
pub type FieldId = u32;

/// The three JSON tree-node kinds of the paper's data model (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Key/value structure.
    Object,
    /// Ordered list.
    Array,
    /// Leaf value.
    Scalar,
}

/// A borrowed view of a scalar leaf (what `JsonDomGetScalarInfo` returns).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarRef<'a> {
    /// String leaf.
    Str(&'a str),
    /// Numeric leaf.
    Num(JsonNumber),
    /// Boolean leaf.
    Bool(bool),
    /// Null leaf.
    Null,
}

impl ScalarRef<'_> {
    /// Materialize as an owned [`JsonValue`].
    pub fn to_value(&self) -> JsonValue {
        match self {
            ScalarRef::Str(s) => JsonValue::String((*s).to_string()),
            ScalarRef::Num(n) => JsonValue::Number(*n),
            ScalarRef::Bool(b) => JsonValue::Bool(*b),
            ScalarRef::Null => JsonValue::Null,
        }
    }
}

/// The shared 32-bit FNV-1a hash used for field names. SQL/JSON path
/// compilation pre-computes this per path step (§4.2.1) so execution never
/// re-hashes names; the OSON encoder uses the identical function to build
/// its field-id-name dictionary.
pub fn field_hash(name: &str) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in name.as_bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Read-only DOM access, implementable over in-memory trees and serialized
/// binary instances alike.
pub trait JsonDom {
    /// Address of the document root node.
    fn root(&self) -> NodeRef;

    /// `JsonDomGetNodeType`.
    fn kind(&self, node: NodeRef) -> NodeKind;

    /// Number of members of an object node.
    fn object_len(&self, node: NodeRef) -> usize;

    /// Member at position `i` of an object node, in storage order.
    /// (Wildcard steps iterate with this.)
    fn object_entry(&self, node: NodeRef, i: usize) -> (&str, NodeRef);

    /// Number of elements of an array node.
    fn array_len(&self, node: NodeRef) -> usize;

    /// `JsonDomGetArrayElement` for one index.
    fn array_element(&self, node: NodeRef, i: usize) -> NodeRef;

    /// `JsonDomGetScalarInfo`.
    fn scalar(&self, node: NodeRef) -> ScalarRef<'_>;

    /// `JsonDomGetFieldValue` by name: find the child of an object node.
    /// `hash` is the pre-computed [`field_hash`] of `name`.
    fn get_field(&self, node: NodeRef, name: &str, hash: u32) -> Option<NodeRef>;

    /// Resolve a field name to this instance's [`FieldId`], if the
    /// implementation has an instance dictionary (OSON does; a plain DOM
    /// does not). Enables the cross-instance look-back cache of §4.2.1.
    fn field_id(&self, name: &str, hash: u32) -> Option<FieldId> {
        let _ = (name, hash);
        None
    }

    /// Child lookup by a [`FieldId`] previously returned by
    /// [`JsonDom::field_id`] *for this same fingerprint*.
    fn get_field_by_id(&self, node: NodeRef, id: FieldId) -> Option<NodeRef> {
        let _ = (node, id);
        None
    }

    /// A fingerprint of the instance's field dictionary. Two instances with
    /// equal fingerprints are guaranteed to share field-id assignments, so
    /// a cached (name → id) mapping from the previous document may be
    /// reused without re-resolution (the "single-row look-back").
    fn dict_fingerprint(&self) -> u64 {
        0
    }

    /// True when this implementation resolves fields through an instance
    /// dictionary (i.e. [`JsonDom::field_id`] is meaningful).
    fn has_field_ids(&self) -> bool {
        false
    }

    /// O(1) validation that `id` maps to `name` *in this instance's*
    /// dictionary — the cheap form of the §4.2.1 single-row look-back: a
    /// field id cached from the previous document is reused iff this
    /// document's dictionary assigns the same name to it.
    fn verify_field_id(&self, id: FieldId, name: &str, hash: u32) -> bool {
        let _ = (id, name, hash);
        false
    }

    /// Materialize the subtree at `node` as an owned [`JsonValue`].
    ///
    /// Panics (rather than overflowing the stack) if the structure is
    /// deeper than [`crate::parse::MAX_DEPTH`] — which can only happen on
    /// a corrupt binary instance whose node references form a cycle.
    fn materialize(&self, node: NodeRef) -> JsonValue {
        self.materialize_depth(node, 0)
    }

    /// Depth-tracked materialization (see [`JsonDom::materialize`]).
    fn materialize_depth(&self, node: NodeRef, depth: usize) -> JsonValue {
        assert!(
            depth <= crate::parse::MAX_DEPTH,
            "materialize: structure exceeds maximum depth (corrupt instance?)"
        );
        match self.kind(node) {
            NodeKind::Scalar => self.scalar(node).to_value(),
            NodeKind::Array => {
                let n = self.array_len(node);
                let mut out = Vec::with_capacity(n.min(1024));
                for i in 0..n {
                    out.push(self.materialize_depth(self.array_element(node, i), depth + 1));
                }
                JsonValue::Array(out)
            }
            NodeKind::Object => {
                let n = self.object_len(node);
                let mut o = crate::value::Object::with_capacity(n.min(1024));
                for i in 0..n {
                    let (k, c) = self.object_entry(node, i);
                    let key = k.to_string();
                    let child = self.materialize_depth(c, depth + 1);
                    o.push(key, child);
                }
                JsonValue::Object(o)
            }
        }
    }
}

/// Flattened index over an in-memory [`JsonValue`] tree implementing
/// [`JsonDom`]. Node addresses are dense pre-order indices.
pub struct ValueDom<'a> {
    nodes: Vec<&'a JsonValue>,
    /// (start, len) into `children` for container nodes.
    spans: Vec<(u32, u32)>,
    children: Vec<u32>,
}

impl<'a> ValueDom<'a> {
    /// Build the index (one pass over the tree).
    pub fn new(root: &'a JsonValue) -> Self {
        let n = root.node_count();
        let mut dom = ValueDom {
            nodes: Vec::with_capacity(n),
            spans: Vec::with_capacity(n),
            children: Vec::with_capacity(n.saturating_sub(1)),
        };
        dom.add(root);
        dom
    }

    fn add(&mut self, v: &'a JsonValue) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(v);
        self.spans.push((0, 0));
        let kids: Vec<u32> = match v {
            JsonValue::Object(o) => o.iter().map(|(_, c)| self.add(c)).collect(),
            JsonValue::Array(a) => a.iter().map(|c| self.add(c)).collect(),
            _ => Vec::new(),
        };
        let start = self.children.len() as u32;
        let len = kids.len() as u32;
        self.children.extend_from_slice(&kids);
        self.spans[idx as usize] = (start, len);
        idx
    }

    fn node(&self, r: NodeRef) -> &'a JsonValue {
        self.nodes[r as usize]
    }

    fn kids(&self, r: NodeRef) -> &[u32] {
        let (start, len) = self.spans[r as usize];
        &self.children[start as usize..(start + len) as usize]
    }
}

impl JsonDom for ValueDom<'_> {
    fn root(&self) -> NodeRef {
        0
    }

    fn kind(&self, node: NodeRef) -> NodeKind {
        match self.node(node) {
            JsonValue::Object(_) => NodeKind::Object,
            JsonValue::Array(_) => NodeKind::Array,
            _ => NodeKind::Scalar,
        }
    }

    fn object_len(&self, node: NodeRef) -> usize {
        self.node(node).as_object().map_or(0, |o| o.len())
    }

    fn object_entry(&self, node: NodeRef, i: usize) -> (&str, NodeRef) {
        let o = self.node(node).as_object().expect("object node");
        let (k, _) = o.entry_at(i).expect("in range");
        (k, self.kids(node)[i] as NodeRef)
    }

    fn array_len(&self, node: NodeRef) -> usize {
        self.node(node).as_array().map_or(0, |a| a.len())
    }

    fn array_element(&self, node: NodeRef, i: usize) -> NodeRef {
        self.kids(node)[i] as NodeRef
    }

    fn scalar(&self, node: NodeRef) -> ScalarRef<'_> {
        match self.node(node) {
            JsonValue::String(s) => ScalarRef::Str(s),
            JsonValue::Number(n) => ScalarRef::Num(*n),
            JsonValue::Bool(b) => ScalarRef::Bool(*b),
            JsonValue::Null => ScalarRef::Null,
            _ => panic!("scalar() called on container node"),
        }
    }

    fn get_field(&self, node: NodeRef, name: &str, _hash: u32) -> Option<NodeRef> {
        let o = self.node(node).as_object()?;
        for (i, (k, _)) in o.iter().enumerate() {
            if k == name {
                return Some(self.kids(node)[i] as NodeRef);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn field_hash_is_stable_fnv1a() {
        assert_eq!(field_hash(""), 0x811c9dc5);
        assert_eq!(field_hash("a"), 0xe40c292c);
        assert_ne!(field_hash("name"), field_hash("Name"));
    }

    #[test]
    fn value_dom_navigation() {
        let v = parse(r#"{"a":{"b":[1,"x",true]},"c":null}"#).unwrap();
        let dom = ValueDom::new(&v);
        let root = dom.root();
        assert_eq!(dom.kind(root), NodeKind::Object);
        assert_eq!(dom.object_len(root), 2);

        let a = dom.get_field(root, "a", field_hash("a")).unwrap();
        assert_eq!(dom.kind(a), NodeKind::Object);
        let b = dom.get_field(a, "b", field_hash("b")).unwrap();
        assert_eq!(dom.kind(b), NodeKind::Array);
        assert_eq!(dom.array_len(b), 3);
        assert_eq!(dom.scalar(dom.array_element(b, 0)), ScalarRef::Num(JsonNumber::Int(1)));
        assert_eq!(dom.scalar(dom.array_element(b, 1)), ScalarRef::Str("x"));
        assert_eq!(dom.scalar(dom.array_element(b, 2)), ScalarRef::Bool(true));

        let c = dom.get_field(root, "c", field_hash("c")).unwrap();
        assert_eq!(dom.scalar(c), ScalarRef::Null);
        assert!(dom.get_field(root, "zz", field_hash("zz")).is_none());
    }

    #[test]
    fn object_entry_iteration() {
        let v = parse(r#"{"x":1,"y":2}"#).unwrap();
        let dom = ValueDom::new(&v);
        let (k0, n0) = dom.object_entry(dom.root(), 0);
        let (k1, _) = dom.object_entry(dom.root(), 1);
        assert_eq!((k0, k1), ("x", "y"));
        assert_eq!(dom.scalar(n0), ScalarRef::Num(JsonNumber::Int(1)));
    }

    #[test]
    fn materialize_roundtrip() {
        let v = parse(r#"{"a":[{"b":1},{"b":2}],"s":"t","n":3.5,"f":false,"z":null}"#).unwrap();
        let dom = ValueDom::new(&v);
        assert_eq!(dom.materialize(dom.root()), v);
    }

    #[test]
    fn default_field_id_is_none() {
        let v = parse("{}").unwrap();
        let dom = ValueDom::new(&v);
        assert!(dom.field_id("a", field_hash("a")).is_none());
        assert_eq!(dom.dict_fingerprint(), 0);
    }
}

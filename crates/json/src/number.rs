//! JSON numbers and the Oracle NUMBER–style decimal encoding.
//!
//! The paper's third OSON design criterion (§4.1) is that scalar values
//! are encoded "in the same binary format as our SQL scalar columns" so
//! values pass between the JSON and SQL worlds without conversion. The
//! SQL-native number format here is [`OraNum`], a faithful reimplementation
//! of the Oracle NUMBER wire layout: a variable-length base-100
//! sign/exponent/mantissa encoding whose *byte-wise* unsigned comparison
//! order equals numeric order.
//!
//! Layout (as in Oracle NUMBER):
//! * zero               → the single byte `0x80`
//! * positive value     → exponent byte `0xC1 + e`, then mantissa bytes
//!   `digit + 1` (digits in base 100, first digit non-zero, no trailing
//!   zero digit)
//! * negative value     → exponent byte `0x3E - e`, then mantissa bytes
//!   `101 - digit`, then a terminator byte `102` (which makes shorter
//!   negative mantissas compare *greater*, i.e. closer to zero)
//!
//! where the value is `±0.d1d2… × 100^(e+1)` with `d1 ≥ 1`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use crate::error::JsonError;

/// Maximum number of base-100 mantissa digits retained (40 decimal digits,
/// mirroring Oracle's 38-significant-digit NUMBER with slack for rounding).
pub const MAX_MANTISSA: usize = 20;

const MAX_ENCODED: usize = MAX_MANTISSA + 2; // exponent byte + terminator

/// Oracle NUMBER–style decimal. Stored directly in its encoded wire form;
/// ordering is a plain byte comparison.
#[derive(Clone, Copy)]
pub struct OraNum {
    bytes: [u8; MAX_ENCODED],
    len: u8,
}

impl OraNum {
    /// The canonical encoding of zero.
    pub fn zero() -> Self {
        let mut bytes = [0u8; MAX_ENCODED];
        bytes[0] = 0x80;
        OraNum { bytes, len: 1 }
    }

    /// Encoded byte representation (what OSON stores in its leaf segment).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Reconstruct from encoded bytes (e.g. read back out of an OSON
    /// leaf-scalar-value segment). Validates structural invariants.
    pub fn from_bytes(b: &[u8]) -> Result<Self, JsonError> {
        if b.is_empty() || b.len() > MAX_ENCODED {
            return Err(JsonError::new("OraNum: invalid length"));
        }
        if b[0] == 0x80 {
            if b.len() != 1 {
                return Err(JsonError::new("OraNum: zero must be a single byte"));
            }
            return Ok(Self::zero());
        }
        let positive = b[0] > 0x80;
        if positive {
            if b.len() < 2 {
                return Err(JsonError::new("OraNum: missing mantissa"));
            }
            // digit d (0..=99) encodes as d+1; interior zeros (byte 1) are
            // legal, a trailing zero digit is not (non-canonical).
            for &d in &b[1..] {
                if !(1..=100).contains(&d) {
                    return Err(JsonError::new("OraNum: bad positive mantissa byte"));
                }
            }
            if *b.last().unwrap() == 1 {
                return Err(JsonError::new("OraNum: trailing zero digit"));
            }
        } else {
            // digit d encodes as 101-d (2..=101); terminator byte 102.
            let mant = if *b.last().unwrap() == 102 { &b[1..b.len() - 1] } else { &b[1..] };
            if mant.is_empty() {
                return Err(JsonError::new("OraNum: missing mantissa"));
            }
            for &d in mant {
                if !(2..=101).contains(&d) {
                    return Err(JsonError::new("OraNum: bad negative mantissa byte"));
                }
            }
            if *mant.last().unwrap() == 101 {
                return Err(JsonError::new("OraNum: trailing zero digit"));
            }
        }
        let mut bytes = [0u8; MAX_ENCODED];
        bytes[..b.len()].copy_from_slice(b);
        Ok(OraNum { bytes, len: b.len() as u8 })
    }

    /// Build from sign, base-100 exponent `e` (value = ±0.d… × 100^(e+1))
    /// and base-100 digits (first non-zero, values 0..=99, no trailing zero).
    fn from_parts(negative: bool, exp: i32, digits: &[u8]) -> Result<Self, JsonError> {
        if digits.is_empty() {
            return Ok(Self::zero());
        }
        debug_assert!(digits[0] >= 1 && *digits.last().unwrap() >= 1);
        if !(-65..=62).contains(&exp) {
            return Err(JsonError::new(format!("OraNum: exponent {exp} out of range")));
        }
        let ndig = digits.len().min(MAX_MANTISSA);
        let mut bytes = [0u8; MAX_ENCODED];
        let mut len;
        if !negative {
            bytes[0] = (0xC1_i32 + exp) as u8;
            for (i, &d) in digits[..ndig].iter().enumerate() {
                bytes[1 + i] = d + 1;
            }
            len = 1 + ndig;
            // truncation may leave a trailing zero digit (encoded 1); strip it
            while len > 1 && bytes[len - 1] == 1 {
                len -= 1;
            }
        } else {
            bytes[0] = (0x3E_i32 - exp) as u8;
            for (i, &d) in digits[..ndig].iter().enumerate() {
                bytes[1 + i] = 101 - d;
            }
            len = 1 + ndig;
            // a zero digit encodes as 101 - 0 = 101 for negatives
            while len > 1 && bytes[len - 1] == 101 {
                len -= 1;
            }
            bytes[len] = 102;
            len += 1;
        }
        Ok(OraNum { bytes, len: len as u8 })
    }

    /// Decode into (negative, base-100 exponent, base-100 digits).
    /// Returns `None` for zero.
    fn parts(&self) -> Option<(bool, i32, Vec<u8>)> {
        let b = self.as_bytes();
        if b[0] == 0x80 {
            return None;
        }
        if b[0] > 0x80 {
            let exp = b[0] as i32 - 0xC1;
            let digits = b[1..].iter().map(|&d| d - 1).collect();
            Some((false, exp, digits))
        } else {
            let exp = 0x3E_i32 - b[0] as i32;
            let mant = if *b.last().unwrap() == 102 { &b[1..b.len() - 1] } else { &b[1..] };
            let digits = mant.iter().map(|&d| 101 - d).collect();
            Some((true, exp, digits))
        }
    }

    /// True iff this encodes zero.
    pub fn is_zero(&self) -> bool {
        self.len == 1 && self.bytes[0] == 0x80
    }

    /// True for negative values.
    pub fn is_negative(&self) -> bool {
        self.bytes[0] < 0x80
    }

    /// Encode an `i64` exactly.
    pub fn from_i64(v: i64) -> Self {
        if v == 0 {
            return Self::zero();
        }
        let negative = v < 0;
        // collect base-100 digits least-significant first using magnitude
        let mut mag = if negative { (v as i128).unsigned_abs() } else { v as u128 };
        let mut rev = [0u8; 10];
        let mut n = 0;
        while mag > 0 {
            rev[n] = (mag % 100) as u8;
            mag /= 100;
            n += 1;
        }
        // strip trailing zero base-100 digits (they only shift the exponent)
        let mut lead_zeros = 0;
        while rev[lead_zeros] == 0 {
            lead_zeros += 1;
        }
        let digits: Vec<u8> = rev[lead_zeros..n].iter().rev().copied().collect();
        let exp = n as i32 - 1;
        Self::from_parts(negative, exp, &digits).expect("i64 always in range")
    }

    /// Encode an `f64`. Returns `None` for NaN or infinities.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Self::zero());
        }
        // Rust's Display for f64 is the shortest decimal that round-trips,
        // so parsing it back preserves the value exactly.
        let s = format!("{v:e}");
        Self::from_decimal_str(&s).ok()
    }

    /// Parse from a JSON-style decimal literal (optionally in scientific
    /// notation). Mantissas longer than 40 decimal digits are truncated.
    pub fn from_decimal_str(s: &str) -> Result<Self, JsonError> {
        let b = s.as_bytes();
        let mut i = 0;
        let negative = if b.first() == Some(&b'-') {
            i += 1;
            true
        } else {
            if b.first() == Some(&b'+') {
                i += 1;
            }
            false
        };
        let mut digits10: Vec<u8> = Vec::with_capacity(b.len());
        let mut point_pos: Option<usize> = None;
        let mut saw_digit = false;
        while i < b.len() {
            match b[i] {
                b'0'..=b'9' => {
                    digits10.push(b[i] - b'0');
                    saw_digit = true;
                }
                b'.' if point_pos.is_none() => point_pos = Some(digits10.len()),
                b'e' | b'E' => break,
                _ => return Err(JsonError::new(format!("OraNum: bad decimal literal {s:?}"))),
            }
            i += 1;
        }
        if !saw_digit {
            return Err(JsonError::new(format!("OraNum: bad decimal literal {s:?}")));
        }
        let mut exp10: i64 = 0;
        if i < b.len() {
            // exponent part
            i += 1;
            let estr = std::str::from_utf8(&b[i..]).map_err(|_| JsonError::new("utf8"))?;
            exp10 = i64::from_str(estr)
                .map_err(|_| JsonError::new(format!("OraNum: bad exponent in {s:?}")))?;
        }
        // Position of decimal point within digits10 (digits before the point)
        let int_len = point_pos.unwrap_or(digits10.len()) as i64;
        // value = 0.digits10 × 10^(int_len + exp10)
        let mut e10 = int_len + exp10;
        // strip leading zeros (each reduces e10 by one... no: leading zero in
        // 0.d… form removes a digit but the weight of remaining digits is the
        // same only if we also decrement e10)
        let mut start = 0;
        while start < digits10.len() && digits10[start] == 0 {
            start += 1;
            e10 -= 1;
        }
        let mut end = digits10.len();
        while end > start && digits10[end - 1] == 0 {
            end -= 1;
        }
        let sig = &digits10[start..end];
        if sig.is_empty() {
            return Ok(Self::zero());
        }
        // Align to base 100: ensure e10 is even by left-padding with a zero.
        let mut padded: Vec<u8> = Vec::with_capacity(sig.len() + 2);
        if e10.rem_euclid(2) != 0 {
            padded.push(0);
            e10 += 1;
        }
        padded.extend_from_slice(sig);
        if !padded.len().is_multiple_of(2) {
            padded.push(0);
        }
        let digits100: Vec<u8> = padded.chunks_exact(2).map(|p| p[0] * 10 + p[1]).collect();
        let exp100: i64 = e10 / 2 - 1;
        if exp100 > 62 {
            return Err(JsonError::new(format!("OraNum: magnitude overflow in {s:?}")));
        }
        if exp100 < -65 {
            // underflow to zero, matching Oracle behaviour for sub-1e-130
            return Ok(Self::zero());
        }
        // strip any leading zero base-100 digit created by padding
        let first_nonzero = digits100.iter().position(|&d| d != 0).unwrap_or(0);
        let adj_digits = &digits100[first_nonzero..];
        let adj_exp = exp100 as i32 - first_nonzero as i32;
        let mut trimmed: Vec<u8> = adj_digits.to_vec();
        while trimmed.last() == Some(&0) {
            trimmed.pop();
        }
        Self::from_parts(negative, adj_exp, &trimmed)
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        match self.parts() {
            None => 0.0,
            Some((neg, exp, digits)) => {
                let mut m = 0.0f64;
                for &d in &digits {
                    m = m * 100.0 + d as f64;
                }
                // dividing by a positive power is exact where multiplying
                // by its reciprocal is not (e.g. 10182/100 vs 10182*0.01)
                let e = exp + 1 - digits.len() as i32;
                let v = if e >= 0 { m * 100f64.powi(e) } else { m / 100f64.powi(-e) };
                if neg {
                    -v
                } else {
                    v
                }
            }
        }
    }

    /// Exact conversion to `i64` when this is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        let (neg, exp, digits) = match self.parts() {
            None => return Some(0),
            Some(p) => p,
        };
        if exp < 0 || (digits.len() as i32) > exp + 1 || exp >= 10 {
            return None;
        }
        let mut acc: i128 = 0;
        for i in 0..=(exp as usize) {
            let d = digits.get(i).copied().unwrap_or(0);
            acc = acc * 100 + d as i128;
        }
        let acc = if neg { -acc } else { acc };
        i64::try_from(acc).ok()
    }

    /// Canonical decimal string (no exponent for |exp10| ≤ 40, scientific
    /// beyond that).
    pub fn to_decimal_string(&self) -> String {
        let (neg, exp, digits) = match self.parts() {
            None => return "0".to_string(),
            Some(p) => p,
        };
        let mut ds = String::with_capacity(digits.len() * 2);
        for (i, &d) in digits.iter().enumerate() {
            if i == 0 {
                // no leading zero on the first base-100 digit
                ds.push_str(&d.to_string());
            } else {
                ds.push((b'0' + d / 10) as char);
                ds.push((b'0' + d % 10) as char);
            }
        }
        // value = 0.?? with digit string ds where the decimal point sits
        // after `point` digits of ds:
        let first_len = if digits[0] >= 10 { 2i64 } else { 1i64 };
        let point = exp as i64 * 2 + first_len; // digits of ds left of the point
        let sign = if neg { "-" } else { "" };
        let n = ds.len() as i64;
        if point >= n && point <= 40 {
            let zeros = "0".repeat((point - n) as usize);
            format!("{sign}{ds}{zeros}")
        } else if point > 0 && point < n {
            let frac = ds[point as usize..].trim_end_matches('0');
            if frac.is_empty() {
                format!("{sign}{}", &ds[..point as usize])
            } else {
                format!("{sign}{}.{}", &ds[..point as usize], frac)
            }
        } else if point <= 0 && point > -38 {
            let zeros = "0".repeat((-point) as usize);
            let frac = ds.trim_end_matches('0');
            format!("{sign}0.{zeros}{frac}")
        } else {
            // scientific: d.ddd e (point-1)
            let mut mant = String::new();
            mant.push_str(&ds[..1]);
            if ds.len() > 1 {
                mant.push('.');
                mant.push_str(&ds[1..]);
            }
            format!("{sign}{mant}e{}", point - 1)
        }
    }
}

impl PartialEq for OraNum {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}
impl Eq for OraNum {}

impl PartialOrd for OraNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OraNum {
    /// Numeric order == byte order: the property the encoding is built for.
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

impl Hash for OraNum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state);
    }
}

impl fmt::Debug for OraNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OraNum({})", self.to_decimal_string())
    }
}

impl fmt::Display for OraNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal_string())
    }
}

/// A JSON number. Small integers and common decimals take fast paths; all
/// variants can surface as [`OraNum`] for SQL interchange.
#[derive(Clone, Copy, Debug)]
pub enum JsonNumber {
    /// Integer that fits in an `i64`.
    Int(i64),
    /// Exact decimal in Oracle NUMBER encoding.
    Dec(OraNum),
    /// IEEE double fallback (magnitude beyond NUMBER's exponent range).
    Dbl(f64),
}

impl JsonNumber {
    /// Parse from a JSON numeric literal.
    pub fn from_literal(s: &str) -> Result<Self, JsonError> {
        // fast path: plain integer
        if !s.contains(['.', 'e', 'E']) {
            if let Ok(v) = i64::from_str(s) {
                return Ok(JsonNumber::Int(v));
            }
        }
        match OraNum::from_decimal_str(s) {
            Ok(d) => {
                if let Some(i) = d.to_i64() {
                    Ok(JsonNumber::Int(i))
                } else {
                    Ok(JsonNumber::Dec(d))
                }
            }
            Err(_) => {
                let v = f64::from_str(s)
                    .map_err(|_| JsonError::new(format!("invalid number literal {s:?}")))?;
                Ok(JsonNumber::Dbl(v))
            }
        }
    }

    /// Lossy conversion to `f64` (used by arithmetic in the SQL engine).
    pub fn to_f64(&self) -> f64 {
        match self {
            JsonNumber::Int(v) => *v as f64,
            JsonNumber::Dec(d) => d.to_f64(),
            JsonNumber::Dbl(v) => *v,
        }
    }

    /// Exact `i64` value when integral and in range.
    pub fn to_i64(&self) -> Option<i64> {
        match self {
            JsonNumber::Int(v) => Some(*v),
            JsonNumber::Dec(d) => d.to_i64(),
            JsonNumber::Dbl(v) => {
                if v.fract() == 0.0 && v.abs() < 9.2e18 {
                    Some(*v as i64)
                } else {
                    None
                }
            }
        }
    }

    /// The Oracle NUMBER encoding of this value, when representable.
    pub fn to_oranum(&self) -> Option<OraNum> {
        match self {
            JsonNumber::Int(v) => Some(OraNum::from_i64(*v)),
            JsonNumber::Dec(d) => Some(*d),
            JsonNumber::Dbl(v) => OraNum::from_f64(*v),
        }
    }

    /// Canonical textual form (what the serializer emits).
    pub fn to_literal(&self) -> String {
        match self {
            JsonNumber::Int(v) => v.to_string(),
            JsonNumber::Dec(d) => d.to_decimal_string(),
            JsonNumber::Dbl(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{:.1}", v)
                } else {
                    format!("{v}")
                }
            }
        }
    }

    /// Total order across all variants (exact where both sides are exact).
    pub fn total_cmp(&self, other: &JsonNumber) -> Ordering {
        match (self, other) {
            (JsonNumber::Int(a), JsonNumber::Int(b)) => a.cmp(b),
            (JsonNumber::Dbl(a), JsonNumber::Dbl(b)) => a.total_cmp(b),
            (a, b) => match (a.to_oranum(), b.to_oranum()) {
                (Some(x), Some(y)) => x.cmp(&y),
                _ => a.to_f64().total_cmp(&b.to_f64()),
            },
        }
    }
}

impl PartialEq for JsonNumber {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for JsonNumber {}

impl PartialOrd for JsonNumber {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for JsonNumber {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for JsonNumber {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Values equal under total_cmp must hash identically, so hash the
        // canonical OraNum encoding whenever one exists.
        match self.to_oranum() {
            Some(d) => d.hash(state),
            None => match self {
                JsonNumber::Dbl(v) => v.to_bits().hash(state),
                _ => unreachable!("Int/Dec always convert to OraNum"),
            },
        }
    }
}

impl From<i64> for JsonNumber {
    fn from(v: i64) -> Self {
        JsonNumber::Int(v)
    }
}
impl From<i32> for JsonNumber {
    fn from(v: i32) -> Self {
        JsonNumber::Int(v as i64)
    }
}
impl From<f64> for JsonNumber {
    fn from(v: f64) -> Self {
        if v.fract() == 0.0 && v.abs() < 9.2e18 {
            JsonNumber::Int(v as i64)
        } else {
            match OraNum::from_f64(v) {
                Some(d) => JsonNumber::Dec(d),
                None => JsonNumber::Dbl(v),
            }
        }
    }
}

impl fmt::Display for JsonNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_literal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_0x80() {
        assert_eq!(OraNum::zero().as_bytes(), &[0x80]);
        assert_eq!(OraNum::from_i64(0).as_bytes(), &[0x80]);
    }

    #[test]
    fn encodes_known_oracle_examples() {
        // 1 -> C1 02 ; 100 -> C2 02 ; -1 -> 3E 64 66 (Oracle dump values)
        assert_eq!(OraNum::from_i64(1).as_bytes(), &[0xC1, 0x02]);
        assert_eq!(OraNum::from_i64(100).as_bytes(), &[0xC2, 0x02]);
        assert_eq!(OraNum::from_i64(-1).as_bytes(), &[0x3E, 0x64, 0x66]);
    }

    #[test]
    fn i64_roundtrip() {
        for v in [0i64, 1, -1, 99, 100, 101, 12345, -12345, 9_999_999, i64::MAX, i64::MIN + 1] {
            let n = OraNum::from_i64(v);
            assert_eq!(n.to_i64(), Some(v), "roundtrip {v}");
        }
    }

    #[test]
    fn decimal_string_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "3.14",
            "-3.14",
            "0.5",
            "0.005",
            "100.25",
            "1234567.89",
            "350.86",
            "52.78",
            "35.24",
            "345.55",
            "546.78",
        ] {
            let n = OraNum::from_decimal_str(s).unwrap();
            assert_eq!(n.to_decimal_string(), s, "canonical form of {s}");
        }
    }

    #[test]
    fn scientific_input() {
        assert_eq!(OraNum::from_decimal_str("1e2").unwrap().to_i64(), Some(100));
        assert_eq!(OraNum::from_decimal_str("1.5e3").unwrap().to_i64(), Some(1500));
        assert_eq!(OraNum::from_decimal_str("25e-2").unwrap().to_decimal_string(), "0.25");
    }

    #[test]
    fn byte_order_matches_numeric_order() {
        let vals = [
            -1_000_000.5,
            -999.0,
            -1.5,
            -1.0,
            -0.01,
            0.0,
            0.25,
            1.0,
            1.5,
            2.0,
            99.0,
            100.0,
            101.0,
            12345.678,
            1e10,
        ];
        for a in vals {
            for b in vals {
                let na = OraNum::from_f64(a).unwrap();
                let nb = OraNum::from_f64(b).unwrap();
                assert_eq!(
                    na.cmp(&nb),
                    a.partial_cmp(&b).unwrap(),
                    "order mismatch for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn f64_roundtrip_through_decimal() {
        for v in [0.1, 2.5, 1234.5678, -0.25, 1e-10, 123456789.123] {
            let n = OraNum::from_f64(v).unwrap();
            assert!((n.to_f64() - v).abs() <= v.abs() * 1e-12, "{v} -> {}", n.to_f64());
        }
    }

    #[test]
    fn from_bytes_validates() {
        assert!(OraNum::from_bytes(&[]).is_err());
        assert!(OraNum::from_bytes(&[0x80, 0x01]).is_err());
        assert!(OraNum::from_bytes(&[0xC1, 0x01]).is_err()); // mantissa byte 1 invalid for positive
        let n = OraNum::from_i64(42);
        assert_eq!(OraNum::from_bytes(n.as_bytes()).unwrap(), n);
    }

    #[test]
    fn json_number_literal_classification() {
        assert!(matches!(JsonNumber::from_literal("42").unwrap(), JsonNumber::Int(42)));
        assert!(matches!(JsonNumber::from_literal("4e2").unwrap(), JsonNumber::Int(400)));
        assert!(matches!(JsonNumber::from_literal("3.14").unwrap(), JsonNumber::Dec(_)));
        assert!(matches!(JsonNumber::from_literal("1e300").unwrap(), JsonNumber::Dbl(_)));
        assert!(JsonNumber::from_literal("abc").is_err());
    }

    #[test]
    fn json_number_cross_variant_eq() {
        let a = JsonNumber::Int(100);
        let b = JsonNumber::from_literal("100.0").unwrap();
        assert_eq!(a, b);
        let c = JsonNumber::Dec(OraNum::from_decimal_str("100.5").unwrap());
        assert!(a < c);
    }

    #[test]
    fn underflow_to_zero() {
        let tiny = OraNum::from_decimal_str("1e-200").unwrap();
        assert!(tiny.is_zero());
    }

    #[test]
    fn overflow_is_error() {
        assert!(OraNum::from_decimal_str("1e200").is_err());
    }

    #[test]
    fn display_literals() {
        assert_eq!(JsonNumber::Int(7).to_literal(), "7");
        assert_eq!(JsonNumber::from_literal("2.50").unwrap().to_literal(), "2.5");
    }
}

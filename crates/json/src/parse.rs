//! Recursive-descent DOM parser for JSON text (RFC 8259).
//!
//! This is the "costly text parse" path of the paper's TEXT mode (§5.1):
//! evaluating SQL/JSON over textual storage pays this parse per document
//! per query, which is exactly the overhead OSON eliminates.

use crate::error::{JsonError, Result};
use crate::number::JsonNumber;
use crate::value::{JsonValue, Object};

/// Maximum nesting depth accepted (guards against stack exhaustion on
/// adversarial inputs).
pub const MAX_DEPTH: usize = 512;

/// Parse a complete JSON document from a string slice.
pub fn parse(text: &str) -> Result<JsonValue> {
    parse_bytes(text.as_bytes())
}

/// Parse a complete JSON document from UTF-8 bytes.
pub fn parse_bytes(bytes: &[u8]) -> Result<JsonValue> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(JsonError::at("trailing characters after document", p.pos));
    }
    Ok(v)
}

/// Low-level parser state; exposed so the event parser can share scanning
/// primitives.
pub struct Parser<'a> {
    pub(crate) input: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    /// New parser over raw input bytes.
    pub fn new(input: &'a [u8]) -> Self {
        Parser { input, pos: 0 }
    }

    pub(crate) fn skip_ws(&mut self) {
        while let Some(&c) = self.input.get(self.pos) {
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected {:?}", c as char), self.pos))
        }
    }

    /// Parse one JSON value at the current position.
    pub fn parse_value(&mut self, depth: usize) -> Result<JsonValue> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("maximum nesting depth exceeded", self.pos));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => {
                self.keyword(b"true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.keyword(b"false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.keyword(b"null")?;
                Ok(JsonValue::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                Ok(JsonValue::Number(self.parse_number()?))
            }
            Some(c) => {
                Err(JsonError::at(format!("unexpected character {:?}", c as char), self.pos))
            }
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn keyword(&mut self, kw: &[u8]) -> Result<()> {
        if self.input[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(JsonError::at("invalid literal", self.pos))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue> {
        self.expect(b'{')?;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(obj));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value(depth + 1)?;
            obj.push(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(obj));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue> {
        self.expect(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(arr));
        }
        loop {
            let val = self.parse_value(depth + 1)?;
            arr.push(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(arr));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    /// Parse a quoted string at the current position.
    pub(crate) fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let start = self.pos;
        // Fast path: scan for a string without escapes.
        while let Some(&c) = self.input.get(self.pos) {
            match c {
                b'"' => {
                    let s = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| JsonError::at("invalid UTF-8 in string", start))?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => break,
                0x00..=0x1F => return Err(JsonError::at("unescaped control character", self.pos)),
                _ => self.pos += 1,
            }
        }
        // Slow path: escapes present.
        let mut out = Vec::with_capacity(self.pos - start + 16);
        out.extend_from_slice(&self.input[start..self.pos]);
        loop {
            match self.input.get(self.pos) {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| JsonError::at("invalid UTF-8 in string", start));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .input
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0C),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // high surrogate: require a following \uXXXX low surrogate
                                if self.input.get(self.pos) == Some(&b'\\')
                                    && self.input.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(JsonError::at(
                                            "invalid low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| {
                                        JsonError::at("bad surrogate pair", self.pos)
                                    })?
                                } else {
                                    return Err(JsonError::at("lone high surrogate", self.pos));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(JsonError::at("lone low surrogate", self.pos));
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError::at("bad code point", self.pos))?
                            };
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos - 1)),
                    }
                }
                Some(&c) if c < 0x20 => {
                    return Err(JsonError::at("unescaped control character", self.pos))
                }
                Some(&c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.input.len() {
            return Err(JsonError::at("truncated \\u escape", self.pos));
        }
        let mut v = 0u32;
        for &c in &self.input[self.pos..end] {
            let d = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => return Err(JsonError::at("invalid hex digit", self.pos)),
            };
            v = v * 16 + d as u32;
        }
        self.pos = end;
        Ok(v)
    }

    /// Parse a numeric literal at the current position.
    pub(crate) fn parse_number(&mut self) -> Result<JsonNumber> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // integer part
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::at("invalid number", self.pos)),
        }
        // fraction
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(JsonError::at("digit required after '.'", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // exponent
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(JsonError::at("digit required in exponent", self.pos));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let lit = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        JsonNumber::from_literal(lit).map_err(|e| JsonError::at(e.message, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7.5").unwrap().as_f64(), Some(-7.5));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"purchaseOrder": {"id": 1, "podate": "2014-09-08",
            "items": [{"name":"phone","price":100,"quantity":2},
                      {"name":"ipad","price":350.86,"quantity":3}]}}"#;
        let v = parse(doc).unwrap();
        let po = v.get("purchaseOrder").unwrap();
        assert_eq!(po.get("id").unwrap().as_i64(), Some(1));
        let items = po.get("items").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("price").unwrap().as_f64(), Some(350.86));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse(r#""a\nb""#).unwrap().as_str(), Some("a\nb"));
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse(r#""q\"q""#).unwrap().as_str(), Some("q\"q"));
        assert_eq!(parse(r#""\\\/""#).unwrap().as_str(), Some("\\/"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"a",
            "\"\\q\"",
            "{\"a\":1} extra",
            "[1 2]",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(Object::new()));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(parse(" [ { } , [ ] ] ").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn depth_limit_enforced() {
        let mut s = String::new();
        for _ in 0..(MAX_DEPTH + 2) {
            s.push('[');
        }
        assert!(parse(&s).is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" {\n\t\"a\" :\r 1 } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn duplicate_keys_preserved() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.as_object().unwrap().len(), 2);
        assert_eq!(v.get("k").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn big_numbers() {
        assert!(matches!(
            parse("12345678901234567890123").unwrap(),
            JsonValue::Number(JsonNumber::Dec(_))
        ));
        assert!(matches!(parse("1e308").unwrap(), JsonValue::Number(JsonNumber::Dbl(_))));
    }
}

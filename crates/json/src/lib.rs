//! `fsdm-json`: the JSON substrate for the FSDM stack.
//!
//! Provides the in-memory JSON data model ([`JsonValue`]), an Oracle
//! NUMBER–style decimal encoding ([`OraNum`]) shared with the SQL side of
//! the engine, a DOM text parser, a streaming (SAX-like) event parser used
//! by the text-mode path engine, and compact/pretty serializers.
//!
//! The JSON data model follows the paper (§3.1): three node kinds —
//! objects, arrays, scalars — where scalars are strings, numbers,
//! booleans, or null.

pub mod dom;
pub mod error;
pub mod events;
pub mod number;
pub mod parse;
pub mod ser;
pub mod value;

pub use dom::{field_hash, FieldId, JsonDom, NodeKind, NodeRef, ScalarRef, ValueDom};
pub use error::{JsonError, Result};
pub use events::{Event, EventParser};
pub use number::{JsonNumber, OraNum};
pub use parse::{parse, parse_bytes, Parser};
pub use ser::{to_string, to_string_pretty};
pub use value::{JsonValue, Object};

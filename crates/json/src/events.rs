//! Streaming (SAX-style) event parser.
//!
//! §5.1 of the paper: "we developed a JSON path engine that operates in a
//! streaming fashion, using a series of events produced by the JSON text
//! parser". This module produces that event stream; the streaming path
//! engine in `fsdm-sqljson` consumes it to evaluate simple paths without
//! materializing a DOM.

use crate::error::{JsonError, Result};
use crate::number::JsonNumber;
use crate::parse::Parser;

/// One parse event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `{`
    StartObject,
    /// `}`
    EndObject,
    /// `[`
    StartArray,
    /// `]`
    EndArray,
    /// An object member key (always followed by the member's value events).
    Key(String),
    /// String scalar.
    String(String),
    /// Number scalar.
    Number(JsonNumber),
    /// Boolean scalar.
    Bool(bool),
    /// Null scalar.
    Null,
}

impl Event {
    /// True for the scalar-value events.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Event::String(_) | Event::Number(_) | Event::Bool(_) | Event::Null)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Frame {
    /// In an object; `true` once at least one member has been emitted.
    Object(bool),
    /// In an array; `true` once at least one element has been emitted.
    Array(bool),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Pending {
    Value,    // a value is required next (document start, after ':' or ',')
    KeyOrEnd, // inside object: expecting key or '}'
    CommaOrEnd,
    Done,
}

/// Pull-based streaming parser: call [`EventParser::next_event`] until it
/// returns `Ok(None)`.
pub struct EventParser<'a> {
    p: Parser<'a>,
    stack: Vec<Frame>,
    state: Pending,
}

impl<'a> EventParser<'a> {
    /// Stream events from a JSON text.
    pub fn new(text: &'a str) -> Self {
        Self::from_bytes(text.as_bytes())
    }

    /// Stream events from UTF-8 bytes.
    pub fn from_bytes(bytes: &'a [u8]) -> Self {
        EventParser { p: Parser::new(bytes), stack: Vec::new(), state: Pending::Value }
    }

    /// Current nesting depth (containers currently open).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Byte offset of the parse cursor.
    pub fn offset(&self) -> usize {
        self.p.pos
    }

    /// Produce the next event, `Ok(None)` at end of a well-formed document.
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        loop {
            self.p.skip_ws();
            match self.state {
                Pending::Done => {
                    self.p.skip_ws();
                    if self.p.pos != self.p.input.len() {
                        return Err(JsonError::at("trailing characters", self.p.pos));
                    }
                    return Ok(None);
                }
                Pending::Value => return self.parse_value_event().map(Some),
                Pending::KeyOrEnd => match self.p.input.get(self.p.pos) {
                    Some(b'}') => {
                        self.p.pos += 1;
                        self.pop_container();
                        return Ok(Some(Event::EndObject));
                    }
                    Some(b'"') => {
                        let key = self.p.parse_string()?;
                        self.p.skip_ws();
                        if self.p.input.get(self.p.pos) != Some(&b':') {
                            return Err(JsonError::at("expected ':'", self.p.pos));
                        }
                        self.p.pos += 1;
                        if let Some(Frame::Object(seen)) = self.stack.last_mut() {
                            *seen = true;
                        }
                        self.state = Pending::Value;
                        return Ok(Some(Event::Key(key)));
                    }
                    _ => return Err(JsonError::at("expected key or '}'", self.p.pos)),
                },
                Pending::CommaOrEnd => match (self.stack.last(), self.p.input.get(self.p.pos)) {
                    (Some(Frame::Object(_)), Some(b',')) => {
                        self.p.pos += 1;
                        self.p.skip_ws();
                        if self.p.input.get(self.p.pos) != Some(&b'"') {
                            return Err(JsonError::at("expected key after ','", self.p.pos));
                        }
                        self.state = Pending::KeyOrEnd;
                    }
                    (Some(Frame::Object(_)), Some(b'}')) => {
                        self.p.pos += 1;
                        self.pop_container();
                        return Ok(Some(Event::EndObject));
                    }
                    (Some(Frame::Array(_)), Some(b',')) => {
                        self.p.pos += 1;
                        self.state = Pending::Value;
                    }
                    (Some(Frame::Array(_)), Some(b']')) => {
                        self.p.pos += 1;
                        self.pop_container();
                        return Ok(Some(Event::EndArray));
                    }
                    _ => return Err(JsonError::at("expected ',' or container end", self.p.pos)),
                },
            }
        }
    }

    fn pop_container(&mut self) {
        self.stack.pop();
        self.state = if self.stack.is_empty() { Pending::Done } else { Pending::CommaOrEnd };
    }

    fn parse_value_event(&mut self) -> Result<Event> {
        match self.p.input.get(self.p.pos).copied() {
            Some(b'{') => {
                self.p.pos += 1;
                self.stack.push(Frame::Object(false));
                self.p.skip_ws();
                self.state = Pending::KeyOrEnd;
                Ok(Event::StartObject)
            }
            Some(b'[') => {
                self.p.pos += 1;
                self.stack.push(Frame::Array(false));
                self.p.skip_ws();
                if self.p.input.get(self.p.pos) == Some(&b']') {
                    // defer the ']' to the next call via CommaOrEnd? No:
                    // emit StartArray now; the empty-close is handled by a
                    // special state where the next value position sees ']'.
                    self.state = Pending::Value;
                } else {
                    self.state = Pending::Value;
                }
                Ok(Event::StartArray)
            }
            Some(b']') if matches!(self.stack.last(), Some(Frame::Array(false))) => {
                // empty array close
                self.p.pos += 1;
                self.pop_container();
                Ok(Event::EndArray)
            }
            Some(b'"') => {
                let s = self.p.parse_string()?;
                self.after_scalar();
                Ok(Event::String(s))
            }
            Some(b't') => {
                self.expect_kw(b"true")?;
                self.after_scalar();
                Ok(Event::Bool(true))
            }
            Some(b'f') => {
                self.expect_kw(b"false")?;
                self.after_scalar();
                Ok(Event::Bool(false))
            }
            Some(b'n') => {
                self.expect_kw(b"null")?;
                self.after_scalar();
                Ok(Event::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let n = self.p.parse_number()?;
                self.after_scalar();
                Ok(Event::Number(n))
            }
            Some(c) => {
                Err(JsonError::at(format!("unexpected character {:?}", c as char), self.p.pos))
            }
            None => Err(JsonError::at("unexpected end of input", self.p.pos)),
        }
    }

    fn after_scalar(&mut self) {
        if let Some(Frame::Array(seen)) = self.stack.last_mut() {
            *seen = true;
        }
        self.state = if self.stack.is_empty() { Pending::Done } else { Pending::CommaOrEnd };
    }

    fn expect_kw(&mut self, kw: &[u8]) -> Result<()> {
        if self.p.input[self.p.pos..].starts_with(kw) {
            self.p.pos += kw.len();
            Ok(())
        } else {
            Err(JsonError::at("invalid literal", self.p.pos))
        }
    }

    /// Drain all remaining events (testing / DOM-building convenience).
    pub fn collect_events(mut self) -> Result<Vec<Event>> {
        let mut out = Vec::new();
        while let Some(e) = self.next_event()? {
            out.push(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Vec<Event> {
        EventParser::new(s).collect_events().unwrap()
    }

    #[test]
    fn scalar_document() {
        assert_eq!(events("42"), vec![Event::Number(JsonNumber::Int(42))]);
        assert_eq!(events("\"x\""), vec![Event::String("x".into())]);
        assert_eq!(events("null"), vec![Event::Null]);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(events("{}"), vec![Event::StartObject, Event::EndObject]);
        assert_eq!(events("[]"), vec![Event::StartArray, Event::EndArray]);
        assert_eq!(
            events("[[],{}]"),
            vec![
                Event::StartArray,
                Event::StartArray,
                Event::EndArray,
                Event::StartObject,
                Event::EndObject,
                Event::EndArray
            ]
        );
    }

    #[test]
    fn object_members() {
        assert_eq!(
            events(r#"{"a":1,"b":[true,null]}"#),
            vec![
                Event::StartObject,
                Event::Key("a".into()),
                Event::Number(JsonNumber::Int(1)),
                Event::Key("b".into()),
                Event::StartArray,
                Event::Bool(true),
                Event::Null,
                Event::EndArray,
                Event::EndObject,
            ]
        );
    }

    #[test]
    fn stream_matches_dom_shape() {
        let doc = r#"{"purchaseOrder":{"id":1,"items":[{"name":"phone","price":100}]}}"#;
        let evs = events(doc);
        let starts =
            evs.iter().filter(|e| matches!(e, Event::StartObject | Event::StartArray)).count();
        let ends = evs.iter().filter(|e| matches!(e, Event::EndObject | Event::EndArray)).count();
        assert_eq!(starts, ends);
        assert_eq!(starts, 4);
        let keys: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                Event::Key(k) => Some(k.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(keys, ["purchaseOrder", "id", "items", "name", "price"]);
    }

    #[test]
    fn rejects_malformed_streams() {
        for bad in ["{", "[1,", "{\"a\"}", "{\"a\":1,}", "[1]extra", "{,}"] {
            assert!(EventParser::new(bad).collect_events().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_tracking() {
        let mut p = EventParser::new(r#"{"a":[{"b":1}]}"#);
        let mut max = 0;
        while let Some(_e) = p.next_event().unwrap() {
            max = max.max(p.depth());
        }
        assert_eq!(max, 3);
        assert_eq!(p.depth(), 0);
    }
}

//! JSON text serialization (compact and pretty).
//!
//! The compact form emits no non-significant whitespace — the paper's
//! evaluation (§6) measures JSON text "with all the non-significant white
//! spaces removed so as to get the smallest possible JSON representation".

use crate::value::JsonValue;

/// Serialize to the smallest textual representation (no whitespace).
pub fn to_string(v: &JsonValue) -> String {
    let mut out = String::with_capacity(128);
    write_value(v, &mut out);
    out
}

/// Serialize with two-space indentation for human consumption.
pub fn to_string_pretty(v: &JsonValue) -> String {
    let mut out = String::with_capacity(256);
    write_pretty(v, &mut out, 0);
    out
}

fn write_value(v: &JsonValue, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(n) => out.push_str(&n.to_literal()),
        JsonValue::String(s) => write_escaped(s, out),
        JsonValue::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(o) => {
            out.push('{');
            for (i, (k, val)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &JsonValue, out: &mut String, indent: usize) {
    match v {
        JsonValue::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        JsonValue::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

/// Write a string with JSON escaping.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    let mut start = 0;
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        let esc: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            0x08 => Some("\\b"),
            0x0C => Some("\\f"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            0x00..=0x1F => None, // generic \u00XX below
            _ => continue,
        };
        out.push_str(&s[start..i]);
        match esc {
            Some(e) => out.push_str(e),
            None => {
                out.push_str(&format!("\\u{:04x}", b));
            }
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn compact_roundtrip() {
        let docs = [
            r#"{"a":1,"b":[true,null,"x"],"c":{"d":2.5}}"#,
            r#"[]"#,
            r#"{}"#,
            r#"[1,2,3]"#,
            r#"{"s":"line\nbreak"}"#,
        ];
        for d in docs {
            let v = parse(d).unwrap();
            assert_eq!(to_string(&v), *d, "roundtrip {d}");
        }
    }

    #[test]
    fn escapes_specials() {
        let v = JsonValue::String("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        // and the escaped form parses back to the original
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = JsonValue::String("héllo 😀".to_string());
        assert_eq!(to_string(&v), "\"héllo 😀\"");
    }

    #[test]
    fn pretty_is_reparsable() {
        let v = parse(r#"{"a":[1,{"b":2}],"c":{}}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn number_forms() {
        let v = parse(r#"[1,2.5,350.86,-0.25]"#).unwrap();
        assert_eq!(to_string(&v), "[1,2.5,350.86,-0.25]");
    }
}

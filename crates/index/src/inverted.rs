//! The inverted index and its embedded `$DG` persistent DataGuide.

use std::collections::{BTreeMap, HashMap, HashSet};

use fsdm_dataguide::{structure_signature, DataGuide};
use fsdm_json::{JsonValue, OraNum};

/// Document identifier within an indexed collection.
pub type DocId = u64;

/// Postings maintained for one JSON path.
#[derive(Debug, Default, Clone)]
pub struct PathPostings {
    /// Documents in which the path occurs at all.
    pub presence: Vec<DocId>,
    /// Exact leaf values → documents. Keys are canonical value forms
    /// (numbers via their canonical literal, so `1.0` and `1` collide as
    /// they must).
    pub values: HashMap<String, Vec<DocId>>,
    /// Lowercased keywords of string leaves → documents (full-text).
    pub keywords: HashMap<String, Vec<DocId>>,
}

/// The schema-agnostic JSON search index.
#[derive(Debug, Default)]
pub struct SearchIndex {
    postings: BTreeMap<String, PathPostings>,
    /// Per-document record of posted keys, enabling precise removal.
    doc_keys: HashMap<DocId, Vec<PostedKey>>,
    /// The persistent DataGuide ($DG component of the index).
    guide: DataGuide,
    /// Structure signatures already merged into the guide (fast path).
    seen_signatures: HashSet<u64>,
    /// Count of inserts that skipped guide processing via the signature
    /// fast path (observability for the Figure 7/8 experiments).
    pub guide_fast_path_hits: u64,
}

#[derive(Debug, Clone)]
enum PostedKey {
    Presence(String),
    Value(String, String),
    Keyword(String, String),
}

impl SearchIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index one document. Returns `true` when the DataGuide fast path
    /// applied (structure already known — no `$DG` work done).
    pub fn insert(&mut self, id: DocId, doc: &JsonValue) -> bool {
        let mut keys = Vec::new();
        index_value(doc, "$", id, &mut self.postings, &mut keys);
        fsdm_obs::counter!(fsdm_obs::catalog::INDEX_POSTINGS_ADDED).add(keys.len() as u64);
        fsdm_obs::counter!(fsdm_obs::catalog::INDEX_INSERT_DOCS).inc();
        self.doc_keys.insert(id, keys);
        // §3.2.1: DataGuide maintenance rides on document processing, with
        // a short-circuit when no schema change is possible
        let sig = structure_signature(doc);
        if self.seen_signatures.insert(sig) {
            self.guide.add_document(doc);
            false
        } else {
            // the instance still counts toward frequency statistics
            self.guide.doc_count += 1;
            self.guide_fast_path_hits += 1;
            true
        }
    }

    /// Remove a document from the postings. The DataGuide is additive
    /// (§3.4): paths contributed by removed documents are *not* retracted.
    pub fn remove(&mut self, id: DocId) {
        let Some(keys) = self.doc_keys.remove(&id) else {
            return;
        };
        for key in keys {
            match key {
                PostedKey::Presence(p) => {
                    if let Some(pp) = self.postings.get_mut(&p) {
                        pp.presence.retain(|&d| d != id);
                    }
                }
                PostedKey::Value(p, v) => {
                    if let Some(pp) = self.postings.get_mut(&p) {
                        if let Some(list) = pp.values.get_mut(&v) {
                            list.retain(|&d| d != id);
                        }
                    }
                }
                PostedKey::Keyword(p, w) => {
                    if let Some(pp) = self.postings.get_mut(&p) {
                        if let Some(list) = pp.keywords.get_mut(&w) {
                            list.retain(|&d| d != id);
                        }
                    }
                }
            }
        }
    }

    /// Replace a document in place.
    pub fn replace(&mut self, id: DocId, doc: &JsonValue) -> bool {
        self.remove(id);
        self.insert(id, doc)
    }

    /// Documents containing the given path (`$.a.b`, arrays transparent).
    pub fn docs_with_path(&self, path: &str) -> Vec<DocId> {
        let mut span = fsdm_obs::trace::span(fsdm_obs::catalog::SPAN_INDEX_LOOKUP);
        span.record_args(|| format!("path {path}"));
        fsdm_obs::counter!(fsdm_obs::catalog::INDEX_LOOKUP_PATH).inc();
        self.postings.get(path).map(|p| p.presence.clone()).unwrap_or_default()
    }

    /// Documents where the path holds exactly this scalar value. The
    /// value is given as text, which cannot distinguish the JSON string
    /// `"7"` from the number `7` — so numeric-looking input probes both
    /// the numeric and the string postings (union, document order).
    pub fn docs_with_value(&self, path: &str, value: &str) -> Vec<DocId> {
        let mut span = fsdm_obs::trace::span(fsdm_obs::catalog::SPAN_INDEX_LOOKUP);
        span.record_args(|| format!("value {path}"));
        fsdm_obs::counter!(fsdm_obs::catalog::INDEX_LOOKUP_VALUE).inc();
        let Some(pp) = self.postings.get(path) else {
            return Vec::new();
        };
        let mut out: Vec<DocId> = Vec::new();
        let mut keys = vec![canonical_value_key_from_text(value)];
        let as_string = format!("s:{value}");
        if keys[0] != as_string {
            keys.push(as_string);
        }
        for k in keys {
            if let Some(list) = pp.values.get(&k) {
                out.extend_from_slice(list);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Exact typed lookup (no text ambiguity).
    pub fn docs_with_scalar(&self, path: &str, value: &fsdm_json::JsonValue) -> Vec<DocId> {
        self.postings
            .get(path)
            .and_then(|p| p.values.get(&canonical_value_key(value)))
            .cloned()
            .unwrap_or_default()
    }

    /// `JSON_TEXTCONTAINS`: documents whose string leaf at `path` contains
    /// the keyword (case-insensitive full word).
    pub fn docs_text_contains(&self, path: &str, keyword: &str) -> Vec<DocId> {
        let mut span = fsdm_obs::trace::span(fsdm_obs::catalog::SPAN_INDEX_LOOKUP);
        span.record_args(|| format!("text {path}"));
        fsdm_obs::counter!(fsdm_obs::catalog::INDEX_LOOKUP_TEXT).inc();
        self.postings
            .get(path)
            .and_then(|p| p.keywords.get(&keyword.to_lowercase()))
            .cloned()
            .unwrap_or_default()
    }

    /// The persistent DataGuide hosted by this index.
    pub fn dataguide(&self) -> &DataGuide {
        &self.guide
    }

    /// All indexed paths.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(|s| s.as_str())
    }

    /// Number of distinct (path → postings) entries.
    pub fn path_count(&self) -> usize {
        self.postings.len()
    }
}

/// Canonical key for a scalar value (shared by indexing and lookup).
fn canonical_value_key(v: &JsonValue) -> String {
    match v {
        JsonValue::String(s) => format!("s:{s}"),
        JsonValue::Number(n) => match n.to_oranum() {
            // canonical decimal form merges 1, 1.0, 1e0
            Some(d) => format!("n:{}", d.to_decimal_string()),
            None => format!("n:{}", n.to_f64()),
        },
        JsonValue::Bool(b) => format!("b:{b}"),
        JsonValue::Null => "z:".to_string(),
        _ => unreachable!("scalar expected"),
    }
}

fn canonical_value_key_from_text(text: &str) -> String {
    if let Ok(d) = OraNum::from_decimal_str(text) {
        return format!("n:{}", d.to_decimal_string());
    }
    match text {
        "true" => "b:true".to_string(),
        "false" => "b:false".to_string(),
        "null" => "z:".to_string(),
        s => format!("s:{s}"),
    }
}

/// Tokenize a string leaf into lowercase keywords.
pub fn tokenize(s: &str) -> impl Iterator<Item = String> + '_ {
    s.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()).map(|w| w.to_lowercase())
}

fn index_value(
    v: &JsonValue,
    path: &str,
    id: DocId,
    postings: &mut BTreeMap<String, PathPostings>,
    keys: &mut Vec<PostedKey>,
) {
    match v {
        JsonValue::Object(o) => {
            post_presence(postings, keys, path, id);
            for (k, c) in o.iter() {
                let step = fsdm_sqljson_step(k);
                let child = format!("{path}{step}");
                index_value(c, &child, id, postings, keys);
            }
        }
        JsonValue::Array(a) => {
            post_presence(postings, keys, path, id);
            for e in a {
                index_value(e, path, id, postings, keys);
            }
        }
        scalar => {
            let pp = postings.entry(path.to_string()).or_default();
            push_unique(&mut pp.presence, id);
            keys.push(PostedKey::Presence(path.to_string()));
            let vk = canonical_value_key(scalar);
            push_unique(pp.values.entry(vk.clone()).or_default(), id);
            keys.push(PostedKey::Value(path.to_string(), vk));
            if let JsonValue::String(s) = scalar {
                for w in tokenize(s) {
                    push_unique(pp.keywords.entry(w.clone()).or_default(), id);
                    keys.push(PostedKey::Keyword(path.to_string(), w));
                }
            }
        }
    }
}

fn post_presence(
    postings: &mut BTreeMap<String, PathPostings>,
    keys: &mut Vec<PostedKey>,
    path: &str,
    id: DocId,
) {
    let pp = postings.entry(path.to_string()).or_default();
    push_unique(&mut pp.presence, id);
    keys.push(PostedKey::Presence(path.to_string()));
}

fn push_unique(list: &mut Vec<DocId>, id: DocId) {
    if list.last() != Some(&id) {
        list.push(id);
    }
}

/// Path step formatting without depending on `fsdm-sqljson` (same quoting
/// rule as `path_step_text` there).
fn fsdm_sqljson_step(name: &str) -> String {
    let simple = !name.is_empty()
        && name.bytes().all(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'$')
        && !name.as_bytes()[0].is_ascii_digit();
    if simple {
        format!(".{name}")
    } else {
        format!(".\"{}\"", name.replace('"', ""))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    fn index(docs: &[&str]) -> SearchIndex {
        let mut ix = SearchIndex::new();
        for (i, d) in docs.iter().enumerate() {
            ix.insert(i as DocId + 1, &parse(d).unwrap());
        }
        ix
    }

    #[test]
    fn presence_postings() {
        let ix = index(&[r#"{"a":{"b":1}}"#, r#"{"a":{"c":2}}"#, r#"{"a":{"b":3,"c":4}}"#]);
        assert_eq!(ix.docs_with_path("$.a.b"), vec![1, 3]);
        assert_eq!(ix.docs_with_path("$.a.c"), vec![2, 3]);
        assert_eq!(ix.docs_with_path("$.a"), vec![1, 2, 3]);
        assert!(ix.docs_with_path("$.zz").is_empty());
    }

    #[test]
    fn value_postings_with_numeric_canonicalization() {
        let ix = index(&[r#"{"v":1}"#, r#"{"v":1.0}"#, r#"{"v":2}"#]);
        assert_eq!(ix.docs_with_value("$.v", "1"), vec![1, 2]);
        assert_eq!(ix.docs_with_value("$.v", "1.00"), vec![1, 2]);
        assert_eq!(ix.docs_with_value("$.v", "2"), vec![3]);
    }

    #[test]
    fn keyword_postings() {
        let ix = index(&[
            r#"{"note":"Ground shipping, signature required"}"#,
            r#"{"note":"AIR shipping"}"#,
        ]);
        assert_eq!(ix.docs_text_contains("$.note", "shipping"), vec![1, 2]);
        assert_eq!(ix.docs_text_contains("$.note", "SIGNATURE"), vec![1]);
        assert!(ix.docs_text_contains("$.note", "ship").is_empty(), "whole words only");
    }

    #[test]
    fn arrays_are_transparent_in_paths() {
        let ix = index(&[r#"{"items":[{"name":"tv"},{"name":"pc"}]}"#]);
        assert_eq!(ix.docs_with_path("$.items.name"), vec![1]);
        assert_eq!(ix.docs_with_value("$.items.name", "pc"), vec![1]);
    }

    #[test]
    fn removal_is_precise() {
        let mut ix = index(&[r#"{"a":1,"s":"hello world"}"#, r#"{"a":1}"#]);
        ix.remove(1);
        assert_eq!(ix.docs_with_value("$.a", "1"), vec![2]);
        assert!(ix.docs_text_contains("$.s", "hello").is_empty());
        // dataguide remains additive: path $.s still known
        assert!(ix.dataguide().rows().iter().any(|r| r.path == "$.s"));
    }

    #[test]
    fn replace_updates_postings() {
        let mut ix = index(&[r#"{"v":"old"}"#]);
        ix.replace(1, &parse(r#"{"v":"new"}"#).unwrap());
        assert!(ix.docs_with_value("$.v", "old").is_empty());
        assert_eq!(ix.docs_with_value("$.v", "new"), vec![1]);
    }

    #[test]
    fn signature_fast_path_counts() {
        let mut ix = SearchIndex::new();
        for i in 0..100 {
            ix.insert(i, &parse(&format!(r#"{{"a":{i},"b":"x{i}"}}"#)).unwrap());
        }
        assert_eq!(ix.guide_fast_path_hits, 99, "only the first doc does guide work");
        assert_eq!(ix.dataguide().doc_count, 100);
        // heterogeneous inserts bypass the fast path
        ix.insert(1000, &parse(r#"{"a":1,"b":"x","unique_new":true}"#).unwrap());
        assert_eq!(ix.guide_fast_path_hits, 99);
        assert!(ix.dataguide().rows().iter().any(|r| r.path == "$.unique_new"));
    }

    #[test]
    fn duplicate_values_in_one_doc_post_once() {
        let ix = index(&[r#"{"xs":[5,5,5]}"#]);
        assert_eq!(ix.docs_with_value("$.xs", "5"), vec![1]);
    }
}

//! `fsdm-index`: the schema-agnostic JSON search index (§3.2).
//!
//! A general-purpose index created on a JSON column "by maintaining an
//! inverted index for every JSON field name and every leaf scalar value
//! (strings are tokenized into a set of keywords to support full-text
//! searches)". It accelerates ad-hoc `JSON_EXISTS` / `JSON_VALUE` /
//! `JSON_TEXTCONTAINS` predicates and — crucially for this paper — is the
//! natural host of the **persistent JSON DataGuide**: the `$DG` table is a
//! component of the index, maintained incrementally as documents are
//! added, removed, or replaced.
//!
//! DataGuide maintenance is integrated with document validation the way
//! §3.2.1 describes: a structure signature is computed per instance, and
//! when the signature has been seen before the guide-merge walk is skipped
//! entirely (the "common case" fast path measured by Figures 7–8).

pub mod inverted;

pub use inverted::{DocId, PathPostings, SearchIndex};

#[cfg(test)]
mod tests {
    use super::*;
    use fsdm_json::parse;

    #[test]
    fn end_to_end_index_usage() {
        let mut ix = SearchIndex::new();
        ix.insert(1, &parse(r#"{"po":{"id":1,"note":"Fast shipping requested"}}"#).unwrap());
        ix.insert(2, &parse(r#"{"po":{"id":2,"note":"gift wrap"}}"#).unwrap());
        ix.insert(3, &parse(r#"{"po":{"id":3},"extra":true}"#).unwrap());

        assert_eq!(ix.docs_with_path("$.extra"), vec![3]);
        assert_eq!(ix.docs_with_value("$.po.id", "2"), vec![2]);
        assert_eq!(ix.docs_text_contains("$.po.note", "shipping"), vec![1]);
        assert_eq!(ix.dataguide().doc_count, 3);
        assert!(ix.dataguide().distinct_paths() >= 4);
    }
}

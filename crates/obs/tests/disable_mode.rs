//! The disable/no-op mode. Lives in its own integration-test binary (own
//! process) because it toggles the process-global enable flag, which would
//! race with unit tests that assert exact counts.

#[test]
fn disabled_recording_is_a_noop() {
    let r = fsdm_obs::MetricsRegistry::new();
    let c = r.counter("d.m.count");
    let g = r.gauge("d.m.level");
    let h = r.histogram("d.m.ns");

    c.inc();
    g.set(5);
    h.record(100);

    fsdm_obs::set_enabled(false);
    assert!(!fsdm_obs::enabled());
    c.add(10);
    g.set(99);
    g.add(1);
    h.record(100);

    // nothing moved while disabled
    assert_eq!(c.get(), 1);
    assert_eq!(g.get(), 5);
    assert_eq!(r.snapshot().histograms["d.m.ns"].count, 1);

    fsdm_obs::set_enabled(true);
    c.inc();
    assert_eq!(c.get(), 2);
}

//! Structured tracing: span trees across threads, with Chrome-trace and
//! collapsed-stack (flamegraph) export.
//!
//! A [`Span`] is one timed region of work — an executor operator, a
//! morsel, one SQL/JSON path evaluation — carrying a catalog-checked
//! name (see [`crate::catalog::SPANS`]), a lane id for the recording
//! thread, its parent span, and monotonic start/end nanoseconds. Spans
//! are created through the RAII [`span`]/[`span_args`]/
//! [`span_with_parent`] entry points and recorded when their
//! [`SpanGuard`] drops.
//!
//! # Recording model
//!
//! Tracing is **off by default**. While off, every entry point is a
//! single relaxed atomic load — cheap enough to leave in the hottest
//! decode loops (the same contract as the metrics layer's disable flag,
//! asserted by `bench trace-overhead`). A [`TraceSession`] arms the
//! collector; spans then append to **per-thread buffers** (no lock on
//! the record path; buffers flush into the shared sink in chunks, on an
//! explicit [`flush_local`] — executor workers flush before they return,
//! since joining a thread does not order its TLS destructors — and as a
//! backstop on thread exit). A hard span cap bounds memory: once
//! the budget is spent, further spans are counted in
//! [`Trace::dropped`] instead of being recorded, so a hostile query can
//! not OOM the tracer.
//!
//! Sessions are process-global and serialized by a mutex: concurrent
//! [`TraceSession::begin`] calls queue up rather than interleave. Each
//! session bumps an epoch; records from a previous epoch that are still
//! sitting in a live thread's local buffer are discarded rather than
//! leaking into the next session's trace.
//!
//! # Exports
//!
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON (`ph: "X"`
//!   complete events, microsecond timestamps, one lane per recording
//!   thread). Loads directly in Perfetto / `chrome://tracing`.
//! * [`Trace::to_collapsed`] — collapsed-stack text (`frame;frame N`,
//!   exclusive nanoseconds), the input format of `flamegraph.pl`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{
    AtomicBool, AtomicI64, AtomicU32, AtomicU64,
    Ordering::{AcqRel, Acquire, Relaxed, Release},
};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default maximum number of spans one session keeps (≈ 24 MB of
/// records). Beyond it spans are dropped and counted, never allocated.
pub const DEFAULT_SPAN_CAP: usize = 1 << 18;

/// Per-thread buffer size that triggers a flush into the shared sink.
const FLUSH_CHUNK: usize = 256;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Whether a trace session is currently collecting. This is the one
/// relaxed load every disabled span entry point performs.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Acquire)
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Session-unique span id (never 0).
    pub id: u64,
    /// Parent span id, 0 for a root span.
    pub parent: u64,
    /// True when the parent was passed explicitly across threads
    /// (executor workers parent under the spawning pipeline span).
    pub explicit_parent: bool,
    /// Small dense lane id of the recording thread.
    pub tid: u32,
    /// Catalog span name (see [`crate::catalog::SPANS`]).
    pub name: &'static str,
    /// Optional free-form annotation (operator label, look-back stats).
    pub args: Option<Box<str>>,
    /// Start offset in nanoseconds from the trace origin.
    pub start_ns: u64,
    /// End offset in nanoseconds from the trace origin.
    pub end_ns: u64,
}

/// The shared collector state behind all sessions.
struct Collector {
    /// Session generation; stale thread-local records are discarded.
    epoch: AtomicU64,
    /// Remaining span budget for the active session (goes negative once
    /// exhausted — the sign is the "dropped" signal).
    budget: AtomicI64,
    /// Spans dropped by the cap in the active session.
    dropped: AtomicU64,
    /// Next span id.
    next_id: AtomicU64,
    /// Next thread lane id.
    next_tid: AtomicU32,
    /// Flushed records of the active session.
    sink: Mutex<Vec<SpanRecord>>,
}

fn collector() -> &'static Collector {
    static C: OnceLock<Collector> = OnceLock::new();
    C.get_or_init(|| Collector {
        epoch: AtomicU64::new(0),
        budget: AtomicI64::new(0),
        dropped: AtomicU64::new(0),
        next_id: AtomicU64::new(1),
        next_tid: AtomicU32::new(1),
        sink: Mutex::new(Vec::new()),
    })
}

/// The monotonic origin all span timestamps are measured from.
fn origin() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    origin().elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

fn lock_ignoring_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Per-thread recording state: the open-span stack and the local record
/// buffer. Flushes into the collector sink when full, on an explicit
/// [`flush_local`], and (backstop only) on thread exit.
struct LocalBuf {
    epoch: u64,
    tid: u32,
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
}

impl LocalBuf {
    fn new() -> LocalBuf {
        LocalBuf {
            epoch: 0,
            tid: collector().next_tid.fetch_add(1, Relaxed),
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// Reset to the current epoch, discarding anything stale.
    fn sync_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.epoch = epoch;
            self.stack.clear();
            self.buf.clear();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let c = collector();
        if self.epoch == c.epoch.load(Acquire) {
            lock_ignoring_poison(&c.sink).append(&mut self.buf);
        } else {
            self.buf.clear();
        }
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

/// Flush this thread's buffered spans into the shared sink now.
///
/// Exiting worker threads must call this before returning: joining a
/// thread (including via `std::thread::scope`) only guarantees its
/// closure has finished — its thread-local destructors, where the
/// buffer would otherwise flush, are allowed to run *after* the join.
/// Without the explicit flush, a session could `finish` between the two
/// and lose the worker's spans.
pub fn flush_local() {
    let _ = LOCAL.try_with(|l| {
        if let Ok(mut l) = l.try_borrow_mut() {
            l.flush();
        }
    });
}

/// Live half of a [`SpanGuard`]: everything captured at span entry.
struct ActiveSpan {
    id: u64,
    parent: u64,
    explicit_parent: bool,
    epoch: u64,
    tid: u32,
    name: &'static str,
    args: Option<Box<str>>,
    start_ns: u64,
}

/// RAII guard for one span: records the span when dropped. Inert (and
/// close to free) when tracing is disabled or the session's span cap is
/// exhausted.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The span id for cross-thread parenting, or 0 when inert.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.id)
    }

    /// Whether this guard will record a span.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Attach an annotation, computing it only when the span is live
    /// (disabled traces never pay for the `format!`).
    pub fn record_args<F: FnOnce() -> String>(&mut self, f: F) {
        if let Some(a) = self.0.as_mut() {
            a.args = Some(f().into_boxed_str());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let end_ns = now_ns();
        let record = SpanRecord {
            id: a.id,
            parent: a.parent,
            explicit_parent: a.explicit_parent,
            tid: a.tid,
            name: a.name,
            args: a.args,
            start_ns: a.start_ns,
            end_ns,
        };
        // a thread-local can be unavailable during thread teardown; a
        // span that late is simply not recorded
        let _ = LOCAL.try_with(|l| {
            if let Ok(mut l) = l.try_borrow_mut() {
                if l.epoch == a.epoch {
                    if l.stack.last() == Some(&a.id) {
                        l.stack.pop();
                    }
                    l.buf.push(record);
                    crate::counter!(crate::catalog::TRACE_SPAN_RECORDED).inc();
                    if l.buf.len() >= FLUSH_CHUNK {
                        l.flush();
                    }
                }
            }
        });
    }
}

/// Open a span. The parent is the innermost open span on this thread.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard(None);
    }
    enter(name, None)
}

/// Open a span annotated up front (the closure runs only when live).
#[inline]
pub fn span_args<F: FnOnce() -> String>(name: &'static str, args: F) -> SpanGuard {
    let mut g = span(name);
    g.record_args(args);
    g
}

/// Open a span whose parent is passed explicitly — used when work hops
/// threads (executor workers parent under the pipeline span that spawned
/// them). `parent` of 0 makes the span a root.
#[inline]
pub fn span_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard(None);
    }
    enter(name, Some(parent))
}

fn enter(name: &'static str, explicit_parent: Option<u64>) -> SpanGuard {
    debug_assert!(
        crate::catalog::SPANS.contains(&name),
        "span name {name:?} is not registered in fsdm_obs::catalog::SPANS"
    );
    let c = collector();
    if c.budget.fetch_sub(1, Relaxed) <= 0 {
        c.dropped.fetch_add(1, Relaxed);
        crate::counter!(crate::catalog::TRACE_SPAN_DROPPED).inc();
        return SpanGuard(None);
    }
    let epoch = c.epoch.load(Acquire);
    let id = c.next_id.fetch_add(1, Relaxed);
    let active = LOCAL.try_with(|l| {
        let Ok(mut l) = l.try_borrow_mut() else { return None };
        l.sync_epoch(epoch);
        let parent = match explicit_parent {
            Some(p) => p,
            None => l.stack.last().copied().unwrap_or(0),
        };
        l.stack.push(id);
        Some(ActiveSpan {
            id,
            parent,
            explicit_parent: explicit_parent.is_some(),
            epoch,
            tid: l.tid,
            name,
            args: None,
            start_ns: now_ns(),
        })
    });
    match active {
        Ok(Some(a)) => SpanGuard(Some(a)),
        _ => SpanGuard(None),
    }
}

static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// An armed trace-collection window. Only one session runs at a time
/// (concurrent `begin` calls block); dropping the session without
/// [`TraceSession::finish`] disarms tracing and discards the records.
pub struct TraceSession {
    _serial: MutexGuard<'static, ()>,
    finished: bool,
}

impl TraceSession {
    /// Arm tracing with the default span cap.
    pub fn begin() -> TraceSession {
        TraceSession::with_capacity(DEFAULT_SPAN_CAP)
    }

    /// Arm tracing, keeping at most `cap` spans (further spans are
    /// dropped and counted).
    pub fn with_capacity(cap: usize) -> TraceSession {
        let serial = lock_ignoring_poison(&SESSION_LOCK);
        let c = collector();
        c.epoch.fetch_add(1, AcqRel);
        c.dropped.store(0, Relaxed);
        lock_ignoring_poison(&c.sink).clear();
        c.budget.store(i64::try_from(cap.max(1)).unwrap_or(i64::MAX), Relaxed);
        TRACING.store(true, Release);
        TraceSession { _serial: serial, finished: false }
    }

    /// Disarm tracing and collect the trace: every recorded span, sorted
    /// by start time, with timestamps rebased so the earliest span starts
    /// at 0.
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        TRACING.store(false, Release);
        let c = collector();
        // flush this thread's buffer; scoped executor workers flushed
        // when they were joined
        let _ = LOCAL.try_with(|l| {
            if let Ok(mut l) = l.try_borrow_mut() {
                l.flush();
            }
        });
        let mut spans = std::mem::take(&mut *lock_ignoring_poison(&c.sink));
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let t0 = spans.first().map_or(0, |s| s.start_ns);
        for s in &mut spans {
            s.start_ns -= t0;
            s.end_ns = s.end_ns.saturating_sub(t0);
        }
        let dropped = c.dropped.load(Relaxed);
        let bytes: usize = spans
            .iter()
            .map(|s| std::mem::size_of::<SpanRecord>() + s.args.as_ref().map_or(0, |a| a.len()))
            .sum();
        crate::gauge!(crate::catalog::TRACE_SESSION_BYTES).set(bytes.min(i64::MAX as usize) as i64);
        Trace { spans, dropped }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            TRACING.store(false, Release);
            let c = collector();
            c.epoch.fetch_add(1, AcqRel);
            lock_ignoring_poison(&c.sink).clear();
        }
    }
}

/// A finished trace: the span tree of one collection window.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Recorded spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Spans suppressed by the session's hard cap.
    pub dropped: u64,
}

impl Trace {
    /// Number of spans with the given catalog name.
    pub fn count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Structural well-formedness check, the invariant the exporters and
    /// tests rely on:
    ///
    /// * span names come from the catalog;
    /// * every span is balanced (`end ≥ start`);
    /// * a recorded parent's interval encloses the child's;
    /// * implicit (same-thread-stack) parents are on the child's thread —
    ///   only explicit cross-thread parenting may change lanes.
    ///
    /// A parent id that was itself dropped by the cap is tolerated: the
    /// child simply renders as a root.
    pub fn validate(&self) -> Result<(), String> {
        let by_id: BTreeMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id, s)).collect();
        for s in &self.spans {
            if !crate::catalog::SPANS.contains(&s.name) {
                return Err(format!("span {} has unregistered name {:?}", s.id, s.name));
            }
            if s.end_ns < s.start_ns {
                return Err(format!("span {} ({}) is unbalanced: end < start", s.id, s.name));
            }
            if s.parent == s.id {
                return Err(format!("span {} ({}) is its own parent", s.id, s.name));
            }
            if let Some(p) = by_id.get(&s.parent) {
                if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                    return Err(format!(
                        "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                        s.id, s.name, s.start_ns, s.end_ns, p.id, p.name, p.start_ns, p.end_ns
                    ));
                }
                if !s.explicit_parent && s.tid != p.tid {
                    return Err(format!(
                        "span {} ({}) on lane {} has implicit parent {} on lane {}",
                        s.id, s.name, s.tid, p.id, p.tid
                    ));
                }
            }
        }
        Ok(())
    }

    /// One-line summary for logs and slow-query entries:
    /// `spans=N dropped=D names[a=1,b=2,...]`.
    pub fn summary(&self) -> String {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &self.spans {
            *counts.entry(s.name).or_default() += 1;
        }
        let mut out = format!("spans={} dropped={} names[", self.spans.len(), self.dropped);
        for (i, (name, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{name}={n}");
        }
        out.push(']');
        out
    }

    /// Chrome trace-event JSON: `ph: "X"` complete events with
    /// microsecond timestamps, one `tid` lane per recording thread.
    /// Loads in Perfetto and `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"fsdm\",\"ph\":\"X\",\"ts\":{}.{:03},\
                 \"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
                json_escape(s.name),
                s.start_ns / 1000,
                s.start_ns % 1000,
                (s.end_ns - s.start_ns) / 1000,
                (s.end_ns - s.start_ns) % 1000,
                s.tid,
                s.id,
                s.parent
            );
            if let Some(args) = &s.args {
                let _ = write!(out, ",\"detail\":\"{}\"", json_escape(args));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Collapsed-stack text (the `flamegraph.pl` input format): one
    /// `frame;frame;frame value` line per distinct stack, where the value
    /// is the stack's **exclusive** time in nanoseconds (self time minus
    /// recorded children). Frames render as `name(args)` when annotated.
    pub fn to_collapsed(&self) -> String {
        let by_id: BTreeMap<u64, &SpanRecord> = self.spans.iter().map(|s| (s.id, s)).collect();
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &self.spans {
            if by_id.contains_key(&s.parent) {
                *child_ns.entry(s.parent).or_default() += s.end_ns - s.start_ns;
            }
        }
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for s in &self.spans {
            let own =
                (s.end_ns - s.start_ns).saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
            let mut frames = vec![frame_label(s)];
            let mut cursor = s;
            let mut depth = 0;
            while let Some(p) = by_id.get(&cursor.parent) {
                frames.push(frame_label(p));
                cursor = p;
                depth += 1;
                if depth > self.spans.len() {
                    break; // defensive: a malformed parent cycle
                }
            }
            frames.reverse();
            *stacks.entry(frames.join(";")).or_default() += own;
        }
        let mut out = String::new();
        for (stack, ns) in stacks {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }
}

fn frame_label(s: &SpanRecord) -> String {
    match &s.args {
        // semicolons and spaces are structural in the collapsed format
        Some(a) => format!("{}({})", s.name, a.replace([';', ' '], "_")),
        None => s.name.to_string(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn disabled_span_records_nothing_and_is_inert() {
        // holding the session lock guarantees no session is armed, so
        // this exercises the true disabled path even with other trace
        // tests running concurrently
        let serial = lock_ignoring_poison(&SESSION_LOCK);
        assert!(!tracing_enabled());
        {
            let mut g = span(catalog::SPAN_STORE_QUERY);
            assert!(!g.is_recording());
            assert_eq!(g.id(), 0);
            g.record_args(|| unreachable!("args must not be computed while disabled"));
        }
        drop(serial);
        let s = TraceSession::begin();
        let t = s.finish();
        assert!(t.spans.is_empty(), "disabled span leaked into the next session: {t:?}");
    }

    #[test]
    fn session_records_nested_spans() {
        let session = TraceSession::begin();
        {
            let mut root = span(catalog::SPAN_STORE_QUERY);
            root.record_args(|| "Q1".to_string());
            assert!(root.is_recording());
            let _child = span(catalog::SPAN_EXEC_OP);
            let _grandchild = span(catalog::SPAN_OSON_GET_FIELD);
        }
        let t = session.finish();
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.dropped, 0);
        t.validate().unwrap();
        let root = t.spans.iter().find(|s| s.name == catalog::SPAN_STORE_QUERY).unwrap();
        let child = t.spans.iter().find(|s| s.name == catalog::SPAN_EXEC_OP).unwrap();
        let leaf = t.spans.iter().find(|s| s.name == catalog::SPAN_OSON_GET_FIELD).unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.id);
        assert_eq!(leaf.parent, child.id);
        assert_eq!(root.args.as_deref(), Some("Q1"));
        assert!(t.summary().contains("spans=3"), "{}", t.summary());
    }

    #[test]
    fn poisoned_sink_does_not_kill_tracing() {
        // poison the shared sink the only way it can happen: a panic
        // unwinding while the flush guard is held
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = collector().sink.lock().unwrap();
            panic!("unwind with the sink held");
        }));
        assert!(collector().sink.is_poisoned());
        let session = TraceSession::begin();
        {
            let _g = span(catalog::SPAN_STORE_QUERY);
        }
        let t = session.finish();
        assert_eq!(t.spans.len(), 1, "flush must recover the poisoned sink");
        t.validate().unwrap();
    }

    #[test]
    fn cap_drops_spans_instead_of_growing() {
        let session = TraceSession::with_capacity(4);
        for _ in 0..10 {
            let _g = span(catalog::SPAN_EXEC_MORSEL);
        }
        let t = session.finish();
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.dropped, 6);
        t.validate().unwrap();
    }

    #[test]
    fn cross_thread_parenting_is_explicit() {
        let session = TraceSession::begin();
        {
            let pipeline = span(catalog::SPAN_EXEC_PIPELINE);
            let pid = pipeline.id();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let w = span_with_parent(catalog::SPAN_EXEC_WORKER, pid);
                    let m = span(catalog::SPAN_EXEC_MORSEL);
                    drop(m);
                    drop(w);
                    // Joining only orders the closure, not this thread's
                    // TLS destructors — flush before returning so the
                    // session can't finish without these spans.
                    flush_local();
                });
            });
        }
        let t = session.finish();
        t.validate().unwrap();
        assert_eq!(t.spans.len(), 3);
        let pipeline = t.spans.iter().find(|s| s.name == catalog::SPAN_EXEC_PIPELINE).unwrap();
        let worker = t.spans.iter().find(|s| s.name == catalog::SPAN_EXEC_WORKER).unwrap();
        let morsel = t.spans.iter().find(|s| s.name == catalog::SPAN_EXEC_MORSEL).unwrap();
        assert_eq!(worker.parent, pipeline.id);
        assert!(worker.explicit_parent);
        assert_ne!(worker.tid, pipeline.tid, "worker ran on its own lane");
        assert_eq!(morsel.parent, worker.id);
        assert_eq!(morsel.tid, worker.tid);
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let span_at = |id, parent, tid, start, end| SpanRecord {
            id,
            parent,
            explicit_parent: false,
            tid,
            name: catalog::SPAN_EXEC_OP,
            args: None,
            start_ns: start,
            end_ns: end,
        };
        let escape =
            Trace { spans: vec![span_at(1, 0, 1, 10, 20), span_at(2, 1, 1, 5, 15)], dropped: 0 };
        assert!(escape.validate().unwrap_err().contains("escapes parent"));
        let lanes =
            Trace { spans: vec![span_at(1, 0, 1, 0, 50), span_at(2, 1, 2, 10, 20)], dropped: 0 };
        assert!(lanes.validate().unwrap_err().contains("implicit parent"));
        let unbalanced = Trace { spans: vec![span_at(1, 0, 1, 20, 10)], dropped: 0 };
        assert!(unbalanced.validate().unwrap_err().contains("unbalanced"));
    }

    #[test]
    fn chrome_export_shape() {
        let session = TraceSession::begin();
        {
            let mut g = span(catalog::SPAN_STORE_QUERY);
            g.record_args(|| "Scan(\"po\")".to_string());
            let _inner = span(catalog::SPAN_EXEC_OP);
        }
        let t = session.finish();
        let j = t.to_chrome_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"traceEvents\":["), "{j}");
        assert!(j.contains("\"ph\":\"X\""), "{j}");
        assert!(j.contains("\"name\":\"store.query\""), "{j}");
        assert!(j.contains("Scan(\\\"po\\\")"), "escaped args: {j}");
    }

    #[test]
    fn collapsed_export_aggregates_stacks() {
        let session = TraceSession::begin();
        for _ in 0..3 {
            let _root = span(catalog::SPAN_STORE_QUERY);
            let _leaf = span(catalog::SPAN_EXEC_OP);
        }
        let t = session.finish();
        let c = t.to_collapsed();
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2, "two distinct stacks: {c}");
        assert!(lines.iter().any(|l| l.starts_with("store.query ")), "{c}");
        assert!(lines.iter().any(|l| l.starts_with("store.query;exec.op ")), "{c}");
        for line in lines {
            let (_, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<u64>().is_ok(), "collapsed value must be integer ns: {line}");
        }
    }
}

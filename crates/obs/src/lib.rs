//! `fsdm-obs`: the measurement substrate for the FSDM stack.
//!
//! A zero-external-dependency metrics core — everything is built on
//! `std::sync::atomic` so hot-path recording is a single relaxed atomic
//! RMW, with no locks anywhere on the record path:
//!
//! * [`Counter`] — monotonically increasing `u64`.
//! * [`Gauge`] — instantaneous `i64` level.
//! * [`Histogram`] — log₂-bucketed distribution of `u64` samples
//!   (nanosecond latencies, byte sizes), with `p50`/`p99` estimation.
//!
//! Metrics live in a [`MetricsRegistry`]. Instrumented crates use the
//! process-global registry ([`global`]) through the [`counter!`],
//! [`gauge!`] and [`histogram!`] macros, which cache the interned handle
//! in a local `OnceLock` so steady-state recording never touches the
//! registry lock. Tests and embedders can also construct private
//! registries.
//!
//! Metric names follow `<crate>.<subsystem>.<name>`, e.g.
//! `oson.dict.probes` or `sqljson.lookback.hit`.
//!
//! # Disable / no-op mode
//!
//! [`set_enabled`]`(false)` turns every recording operation into a single
//! relaxed atomic load (the check) — benches use this to quantify
//! instrumentation overhead. Snapshots still work; they simply stop
//! advancing. The flag is process-global and defaults to enabled.

pub mod catalog;
pub mod trace;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{
    AtomicBool, AtomicI64, AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: one for zero plus one per power of two.
pub const NUM_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable all metric recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Release);
}

/// Whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Acquire)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous level; can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Relaxed);
        }
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i - 1]`. Quantiles are estimated as the upper bound of
/// the bucket containing the requested rank, so they are exact to within
/// a factor of 2 — plenty for order-of-magnitude latency/size tracking.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram { buckets: [ZERO; NUM_BUCKETS], count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// Bucket index for a sample value.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of a bucket.
    pub fn bucket_upper_bound(ix: usize) -> u64 {
        match ix {
            0 => 0,
            64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Read the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (i, bucket) in self.buckets.iter().enumerate() {
            buckets[i] = bucket.load(Relaxed);
        }
        HistogramSnapshot { count: self.count.load(Relaxed), sum: self.sum.load(Relaxed), buckets }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`Histogram`] for bounds).
    pub buckets: [u64; NUM_BUCKETS],
}

impl HistogramSnapshot {
    /// Estimated quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the sample of that rank. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference `self - before` (saturating).
    pub fn diff(&self, before: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(before.buckets[i]);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(before.count),
            sum: self.sum.saturating_sub(before.sum),
            buckets,
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

/// A named collection of metrics.
///
/// Registration (name → handle) takes a lock; recording through a handle
/// is lock-free. Handles are interned with `'static` lifetime so callers
/// can cache them in `OnceLock` statics — that is what the [`counter!`]
/// family of macros does.
///
/// A panic elsewhere while the lock is held cannot brick the registry:
/// every guard recovers from poisoning (`PoisonError::into_inner`),
/// which is sound here because each critical section leaves the maps
/// consistent — an interned handle is either fully inserted or absent.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(c) = g.counters.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        g.counters.insert(name.to_string(), c);
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(c) = g.gauges.get(name) {
            return c;
        }
        let c: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        g.gauges.insert(name.to_string(), c);
        c
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(c) = g.histograms.get(name) {
            return c;
        }
        let c: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        g.histograms.insert(name.to_string(), c);
        c
    }

    /// Point-in-time copy of every metric in this registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: g.gauges.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            histograms: g.histograms.iter().map(|(k, c)| (k.clone(), c.snapshot())).collect(),
        }
    }
}

/// The process-global registry used by all instrumented fsdm crates.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Snapshot of the global registry (shorthand for
/// `global().snapshot()`).
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Point-in-time copy of a whole registry. Ordered maps so exports are
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge level, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Difference `self - before`: counters and histograms subtract
    /// (saturating; metrics absent from `before` count from zero), gauges
    /// keep their current level since a gauge delta is rarely meaningful.
    pub fn diff(&self, before: &MetricsSnapshot) -> MetricsSnapshot {
        let empty_hist = HistogramSnapshot { count: 0, sum: 0, buckets: [0; NUM_BUCKETS] };
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v.saturating_sub(before.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.diff(before.histograms.get(k).unwrap_or(&empty_hist))))
                .collect(),
        }
    }

    /// Export as a JSON object (hand-rolled; metric names are simple
    /// dotted identifiers but quotes/backslashes are escaped anyway).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", esc(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", esc(k), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                esc(k),
                h.count,
                h.sum,
                h.p50(),
                h.p99()
            );
            let mut first = true;
            for (ix, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "[{},{}]", Histogram::bucket_upper_bound(ix), c);
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Export as an aligned, human-readable table.
    pub fn to_table(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<width$}  {:>14}", "counter", "value");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k:<width$}  {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<width$}  {:>14}", "gauge", "value");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "{k:<width$}  {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<width$}  {:>10} {:>14} {:>12} {:>12}",
                "histogram", "count", "mean", "p50", "p99"
            );
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{k:<width$}  {:>10} {:>14.1} {:>12} {:>12}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p99()
                );
            }
        }
        out
    }
}

/// Intern a global counter once and cache the handle in a local static:
/// `obs::counter!("oson.dict.probes").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__METRIC.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Intern a global gauge once and cache the handle in a local static.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__METRIC.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Intern a global histogram once and cache the handle in a local static.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__METRIC.get_or_init(|| $crate::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(10), 1023);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        // every value lands in a bucket whose bounds contain it
        for v in [0u64, 1, 2, 5, 16, 100, 1 << 40, u64::MAX] {
            let ix = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(ix));
            if ix > 0 {
                assert!(v > Histogram::bucket_upper_bound(ix - 1));
            }
        }
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        // rank 50 falls in [32, 63], rank 99 in [64, 127]
        assert_eq!(s.p50(), 63);
        assert_eq!(s.p99(), 127);
        assert_eq!(s.quantile(0.0), 1); // rank clamps to 1 → first bucket
        assert_eq!(s.quantile(1.0), 127);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // empty histogram
        assert_eq!(Histogram::new().snapshot().p50(), 0);
    }

    #[test]
    fn snapshot_diff() {
        let r = MetricsRegistry::new();
        r.counter("a.b.c").add(5);
        r.gauge("a.b.level").set(7);
        r.histogram("a.b.ns").record(100);
        let before = r.snapshot();
        r.counter("a.b.c").add(3);
        r.counter("a.b.new").inc();
        r.histogram("a.b.ns").record(200);
        r.gauge("a.b.level").set(9);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("a.b.c"), 3);
        assert_eq!(d.counter("a.b.new"), 1);
        assert_eq!(d.gauge("a.b.level"), 9); // gauges keep current level
        assert_eq!(d.histograms["a.b.ns"].count, 1);
        assert_eq!(d.histograms["a.b.ns"].sum, 200);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        let r = MetricsRegistry::new();
        let c = r.counter("t.concurrent.count");
        let h = r.histogram("t.concurrent.hist");
        let g = r.gauge("t.concurrent.gauge");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 1000);
                        g.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(r.snapshot().histograms["t.concurrent.hist"].count, 80_000);
        assert_eq!(r.snapshot().gauge("t.concurrent.gauge"), 80_000);
    }

    #[test]
    fn registry_interns_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.y.z") as *const Counter;
        let b = r.counter("x.y.z") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn json_and_table_exports() {
        let r = MetricsRegistry::new();
        r.counter("e.x.count").add(2);
        r.gauge("e.x.level").set(-4);
        r.histogram("e.x.bytes").record(10);
        let s = r.snapshot();
        let j = s.to_json();
        assert!(j.contains("\"e.x.count\":2"), "{j}");
        assert!(j.contains("\"e.x.level\":-4"), "{j}");
        assert!(j.contains("\"count\":1"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
        let t = s.to_table();
        assert!(t.contains("e.x.count"));
        assert!(t.contains("e.x.bytes"));
    }
}

//! Central catalog of every metric name recorded through `fsdm-obs`.
//!
//! Each name lives here exactly once as a `pub const`; instrumented
//! crates record through these constants instead of string literals
//! (`fsdm_obs::counter!(fsdm_obs::catalog::OSON_DICT_PROBES)`).
//! `fsdm-tidy` enforces the discipline: a string-literal metric name at
//! a `counter!`/`gauge!`/`histogram!` call site anywhere outside this
//! file is a tidy error (rule `metric-literal`), so the catalog is the
//! complete, documented inventory of what the stack can emit. Constants
//! must be declared in ascending order of metric name and the `ALL`
//! inventory must mirror the declaration order exactly (tidy rule
//! `catalog`).
//!
//! Naming convention: `<crate>.<subsystem>.<name>`.

// --- analyze ------------------------------------------------------------

/// Error-severity diagnostics emitted by the semantic analyzer (counter).
pub const ANALYZE_DIAG_ERRORS: &str = "analyze.diag.errors";
/// Info-severity diagnostics emitted by the semantic analyzer (counter).
pub const ANALYZE_DIAG_INFOS: &str = "analyze.diag.infos";
/// Warning-severity diagnostics emitted by the semantic analyzer
/// (counter).
pub const ANALYZE_DIAG_WARNINGS: &str = "analyze.diag.warnings";
/// SQL/JSON paths checked against a DataGuide (counter).
pub const ANALYZE_PATHS_CHECKED: &str = "analyze.paths.checked";
/// Scans rewritten to empty because a JSON predicate is provably dead
/// (counter).
pub const ANALYZE_PRUNE_DEAD_PREDICATES: &str = "analyze.prune.dead_predicates";
/// SQL statements run through the prepare-time analysis hook (counter).
pub const ANALYZE_STMTS_ANALYZED: &str = "analyze.stmts.analyzed";

// --- dataguide ----------------------------------------------------------

/// Inserts that changed the DataGuide (counter).
pub const DATAGUIDE_INSERT_CHANGED: &str = "dataguide.insert.changed";
/// Inserts fully covered by the existing DataGuide (counter).
pub const DATAGUIDE_INSERT_UNCHANGED: &str = "dataguide.insert.unchanged";
/// Distinct paths currently known to the DataGuide (gauge).
pub const DATAGUIDE_PATHS: &str = "dataguide.paths";

// --- exec ---------------------------------------------------------------

/// Per-batch columnar pipeline time in nanoseconds — kernel evaluation
/// plus late materialization of the selected rows (histogram).
pub const EXEC_BATCH_NS: &str = "exec.batch.ns";
/// Rows selected by each columnar batch after kernel filtering — the
/// observed selectivity, against [`EXEC_MORSEL_ROWS`] as denominator
/// (histogram).
pub const EXEC_BATCH_ROWS: &str = "exec.batch.rows";
/// Parallel degree the executor resolved for the last query (gauge).
pub const EXEC_DEGREE: &str = "exec.degree.configured";
/// Rows rebuilt from vectors/heap at a columnar pipeline breaker — the
/// late-materialization volume (counter).
pub const EXEC_LATE_MATERIALIZE_ROWS: &str = "exec.late_materialize.rows";
/// High-water mark of bytes charged against the last statement's memory
/// budget (gauge).
pub const EXEC_MEM_HIGHWATER: &str = "exec.mem.highwater";
/// One morsel executed by a pipeline worker (span).
pub const SPAN_EXEC_MORSEL: &str = "exec.morsel";
/// Morsels dispatched across all parallel pipelines (counter).
pub const EXEC_MORSEL_COUNT: &str = "exec.morsel.count";
/// Per-morsel execution time in nanoseconds (histogram).
pub const EXEC_MORSEL_NS: &str = "exec.morsel.ns";
/// Rows covered by each dispatched morsel (histogram).
pub const EXEC_MORSEL_ROWS: &str = "exec.morsel.rows";
/// One executor operator evaluation; args carry the operator label
/// (span).
pub const SPAN_EXEC_OP: &str = "exec.op";
/// One morsel-parallel pipeline: the fork/join region of `run_morsels`
/// (span).
pub const SPAN_EXEC_PIPELINE: &str = "exec.pipeline";
/// One worker thread's lifetime within a parallel pipeline; parented
/// explicitly under the spawning pipeline span (span).
pub const SPAN_EXEC_WORKER: &str = "exec.worker";
/// Per-worker busy time in nanoseconds across a parallel pipeline
/// (histogram).
pub const EXEC_WORKER_BUSY_NS: &str = "exec.worker.busy_ns";

// --- fault --------------------------------------------------------------

/// Armed failpoints that actually injected a fault into the executor
/// (counter).
pub const FAULT_INJECTED: &str = "fault.injected";

// --- govern -------------------------------------------------------------

/// Statements killed by the memory budget (counter).
pub const GOVERN_BUDGET_EXCEEDED: &str = "govern.budget_exceeded";
/// Statements killed by an explicit user cancellation (counter).
pub const GOVERN_CANCELLED: &str = "govern.cancelled";
/// Statements killed by the statement timeout (counter).
pub const GOVERN_DEADLINE_EXCEEDED: &str = "govern.deadline_exceeded";
/// Worker panics caught and isolated by the parallel executor (counter).
pub const GOVERN_WORKER_PANIC: &str = "govern.worker_panic";

// --- imc ----------------------------------------------------------------

/// Per-batch predicate-kernel evaluation time over IMC column vectors in
/// nanoseconds (histogram).
pub const IMC_KERNEL_NS: &str = "imc.kernel.ns";

// --- index --------------------------------------------------------------

/// Documents added to the inverted index (counter).
pub const INDEX_INSERT_DOCS: &str = "index.insert.docs";
/// One inverted-index probe; args carry the probe kind (span).
pub const SPAN_INDEX_LOOKUP: &str = "index.lookup";
/// Path-existence index probes (counter).
pub const INDEX_LOOKUP_PATH: &str = "index.lookup.path";
/// Full-text keyword probes (counter).
pub const INDEX_LOOKUP_TEXT: &str = "index.lookup.text";
/// (path, value) index probes (counter).
pub const INDEX_LOOKUP_VALUE: &str = "index.lookup.value";
/// Postings appended across all insertions (counter).
pub const INDEX_POSTINGS_ADDED: &str = "index.postings.added";

// --- oson ---------------------------------------------------------------

/// One full OSON document decode: validate + materialize (span).
pub const SPAN_OSON_DECODE: &str = "oson.decode";
/// Documents fully decoded from OSON bytes (counter).
pub const OSON_DECODE_DOCS: &str = "oson.decode.docs";
/// Field-name → field-id dictionary resolutions (counter).
pub const OSON_DICT_LOOKUPS: &str = "oson.dict.lookups";
/// Binary-search probes spent resolving field ids (counter).
pub const OSON_DICT_PROBES: &str = "oson.dict.probes";
/// Encoded document size in bytes (histogram).
pub const OSON_ENCODE_BYTES: &str = "oson.encode.bytes";
/// Documents encoded to OSON bytes (counter).
pub const OSON_ENCODE_DOCS: &str = "oson.encode.docs";
/// One navigational field lookup on an OSON tree node (span).
pub const SPAN_OSON_GET_FIELD: &str = "oson.get_field";
/// Object-child lookups by field id (counter).
pub const OSON_NODE_LOOKUPS: &str = "oson.node.lookups";
/// Binary-search probes spent in object-child lookups (counter).
pub const OSON_NODE_PROBES: &str = "oson.node.probes";
/// Bytes written to the field-id-name dictionary segment (counter).
pub const OSON_SEGMENT_DICTIONARY_BYTES: &str = "oson.segment.dictionary_bytes";
/// Bytes written to the tree-node navigation segment (counter).
pub const OSON_SEGMENT_TREE_BYTES: &str = "oson.segment.tree_bytes";
/// Bytes written to the leaf-scalar-value segment (counter).
pub const OSON_SEGMENT_VALUES_BYTES: &str = "oson.segment.values_bytes";
/// Partial updates applied in place (counter).
pub const OSON_UPDATE_IN_PLACE: &str = "oson.update.in_place";
/// Partial updates that required a document re-encode (counter).
pub const OSON_UPDATE_REENCODE: &str = "oson.update.reencode";
/// Buffers rejected by the deep structural verifier (counter).
pub const OSON_VALIDATE_FAILURES: &str = "oson.validate.failures";

// --- planck -------------------------------------------------------------

/// Plans put through the planck type/schema checker (counter).
pub const PLANCK_CHECKS: &str = "planck.checks";
/// Error-severity planck findings (counter).
pub const PLANCK_ERRORS: &str = "planck.errors";
/// Wall time of one plan inference + validation pass, ns (histogram).
pub const PLANCK_INFER_NS: &str = "planck.infer.ns";
/// Warning-severity planck findings (counter).
pub const PLANCK_WARNINGS: &str = "planck.warnings";

// --- slowlog ------------------------------------------------------------

/// Queries currently held by the slow-query ring log (gauge).
pub const SLOWLOG_ENTRIES: &str = "slowlog.entries";
/// Slow-log entries evicted by the ring's fixed capacity (counter).
pub const SLOWLOG_EVICTED: &str = "slowlog.evicted";
/// Poisoned slow-log ring guards recovered after a panicking query
/// (counter).
pub const SLOWLOG_POISONED: &str = "slowlog.poisoned";

// --- sqljson ------------------------------------------------------------

/// One SQL/JSON path evaluation; args carry look-back hit/miss deltas
/// (span).
pub const SPAN_SQLJSON_EVAL: &str = "sqljson.eval";
/// Context nodes visited across all path steps (counter).
pub const SQLJSON_EVAL_NODES_VISITED: &str = "sqljson.eval.nodes_visited";
/// Path evaluations started (counter).
pub const SQLJSON_EVAL_PATHS: &str = "sqljson.eval.paths";
/// Field resolutions where the name was absent from the dictionary
/// (counter).
pub const SQLJSON_LOOKBACK_ABSENT: &str = "sqljson.lookback.absent";
/// Field resolutions served from the look-back cache (counter).
pub const SQLJSON_LOOKBACK_HIT: &str = "sqljson.lookback.hit";
/// Field resolutions that consulted the instance dictionary (counter).
pub const SQLJSON_LOOKBACK_MISS: &str = "sqljson.lookback.miss";

// --- store --------------------------------------------------------------

/// End-to-end query execution time in nanoseconds (histogram).
pub const STORE_EXEC_NS: &str = "store.exec.ns";
/// SQL queries executed (counter).
pub const STORE_EXEC_QUERIES: &str = "store.exec.queries";
/// Inserts that took the unchanged-DataGuide fast path (counter).
pub const STORE_INSERT_GUIDE_FAST_PATH: &str = "store.insert.guide_fast_path";
/// One end-to-end query execution: the root span of a query's trace;
/// args carry the SQL text or plan label (span).
pub const SPAN_STORE_QUERY: &str = "store.query";

// --- trace --------------------------------------------------------------

/// Bytes retained by the spans of the last finished trace session
/// (gauge).
pub const TRACE_SESSION_BYTES: &str = "trace.session.bytes";
/// Spans suppressed by a trace session's hard cap (counter).
pub const TRACE_SPAN_DROPPED: &str = "trace.span.dropped";
/// Spans recorded into trace sessions (counter).
pub const TRACE_SPAN_RECORDED: &str = "trace.span.recorded";

/// Every metric name in the catalog, in declaration (= sorted) order,
/// for exhaustiveness checks and documentation tooling.
pub const ALL: &[&str] = &[
    ANALYZE_DIAG_ERRORS,
    ANALYZE_DIAG_INFOS,
    ANALYZE_DIAG_WARNINGS,
    ANALYZE_PATHS_CHECKED,
    ANALYZE_PRUNE_DEAD_PREDICATES,
    ANALYZE_STMTS_ANALYZED,
    DATAGUIDE_INSERT_CHANGED,
    DATAGUIDE_INSERT_UNCHANGED,
    DATAGUIDE_PATHS,
    EXEC_BATCH_NS,
    EXEC_BATCH_ROWS,
    EXEC_DEGREE,
    EXEC_LATE_MATERIALIZE_ROWS,
    EXEC_MEM_HIGHWATER,
    SPAN_EXEC_MORSEL,
    EXEC_MORSEL_COUNT,
    EXEC_MORSEL_NS,
    EXEC_MORSEL_ROWS,
    SPAN_EXEC_OP,
    SPAN_EXEC_PIPELINE,
    SPAN_EXEC_WORKER,
    EXEC_WORKER_BUSY_NS,
    FAULT_INJECTED,
    GOVERN_BUDGET_EXCEEDED,
    GOVERN_CANCELLED,
    GOVERN_DEADLINE_EXCEEDED,
    GOVERN_WORKER_PANIC,
    IMC_KERNEL_NS,
    INDEX_INSERT_DOCS,
    SPAN_INDEX_LOOKUP,
    INDEX_LOOKUP_PATH,
    INDEX_LOOKUP_TEXT,
    INDEX_LOOKUP_VALUE,
    INDEX_POSTINGS_ADDED,
    SPAN_OSON_DECODE,
    OSON_DECODE_DOCS,
    OSON_DICT_LOOKUPS,
    OSON_DICT_PROBES,
    OSON_ENCODE_BYTES,
    OSON_ENCODE_DOCS,
    SPAN_OSON_GET_FIELD,
    OSON_NODE_LOOKUPS,
    OSON_NODE_PROBES,
    OSON_SEGMENT_DICTIONARY_BYTES,
    OSON_SEGMENT_TREE_BYTES,
    OSON_SEGMENT_VALUES_BYTES,
    OSON_UPDATE_IN_PLACE,
    OSON_UPDATE_REENCODE,
    OSON_VALIDATE_FAILURES,
    PLANCK_CHECKS,
    PLANCK_ERRORS,
    PLANCK_INFER_NS,
    PLANCK_WARNINGS,
    SLOWLOG_ENTRIES,
    SLOWLOG_EVICTED,
    SLOWLOG_POISONED,
    SPAN_SQLJSON_EVAL,
    SQLJSON_EVAL_NODES_VISITED,
    SQLJSON_EVAL_PATHS,
    SQLJSON_LOOKBACK_ABSENT,
    SQLJSON_LOOKBACK_HIT,
    SQLJSON_LOOKBACK_MISS,
    STORE_EXEC_NS,
    STORE_EXEC_QUERIES,
    STORE_INSERT_GUIDE_FAST_PATH,
    SPAN_STORE_QUERY,
    TRACE_SESSION_BYTES,
    TRACE_SPAN_DROPPED,
    TRACE_SPAN_RECORDED,
];

/// The subset of [`ALL`] that names trace spans rather than metrics, in
/// the same order. [`crate::trace`] asserts (in debug builds) that every
/// span name comes from this inventory, and `fsdm-tidy` bans string
/// literals at span call sites outside `crates/obs/` (rule
/// `span-name-from-catalog`).
pub const SPANS: &[&str] = &[
    SPAN_EXEC_MORSEL,
    SPAN_EXEC_OP,
    SPAN_EXEC_PIPELINE,
    SPAN_EXEC_WORKER,
    SPAN_INDEX_LOOKUP,
    SPAN_OSON_DECODE,
    SPAN_OSON_GET_FIELD,
    SPAN_SQLJSON_EVAL,
    SPAN_STORE_QUERY,
];

/// The declared lock hierarchy: every `Mutex`/`RwLock` in the workspace,
/// by field or static name, with its rank. A thread may only acquire a
/// lock of *strictly higher* rank than any lock it already holds;
/// `fsdm-sentinel` proves this statically (rule SN002) over the
/// workspace call graph, which makes cyclic waits impossible. Ranks are
/// spaced by 10 so a new lock can slot between existing ones without
/// renumbering.
pub const LOCKS: &[(&str, u32)] = &[
    // trace.rs: serializes whole trace sessions; outermost by nature
    ("SESSION_LOCK", 10),
    // slowlog.rs: the slow-query ring; held while recording one entry
    ("ring", 20),
    // trace.rs: the session's span sink; held during per-thread flushes
    ("sink", 30),
    // obs lib.rs: the metrics registry map; innermost — `counter!` and
    // `gauge!` reach it from under the slow-log ring
    ("inner", 40),
];

/// Which memory-ordering discipline an atomic follows. `fsdm-sentinel`
/// checks every atomic operation against the discipline declared for it
/// in [`ATOMICS`] (rule SN005).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicDiscipline {
    /// A plain statistic or id/ticket dispenser: no other memory hangs
    /// off its value, so every operation must stay `Relaxed` — anything
    /// stronger buys nothing and taxes the hot path.
    Monotonic,
    /// A publish/consume handshake: its value gates access to other
    /// memory, so stores must be `Release`, loads `Acquire`, and
    /// read-modify-writes `AcqRel` (or `SeqCst`).
    Handshake,
}

/// The declared discipline of every atomic in the workspace, by field,
/// static, or — for the tuple-struct wrappers `Counter`/`Gauge` — type
/// name. An atomic operation on a name missing from this inventory is
/// itself a sentinel error, so the registry stays complete.
pub const ATOMICS: &[(&str, AtomicDiscipline)] = &[
    // --- handshakes -----------------------------------------------------
    // obs lib.rs: global metrics on/off gate
    ("ENABLED", AtomicDiscipline::Handshake),
    // trace.rs: global tracing on/off gate
    ("TRACING", AtomicDiscipline::Handshake),
    // store/parallel.rs race oracle: live-worker count, must be zero
    // after the scope closes
    ("active_workers", AtomicDiscipline::Handshake),
    // store/govern.rs: the cancel token's packed reason word; a nonzero
    // value publishes the reason to every worker that observes it
    ("cancel_reason", AtomicDiscipline::Handshake),
    // store/parallel.rs race oracle: per-morsel claim slots (`claim` is
    // one element of `claims`, as bound by iteration)
    ("claim", AtomicDiscipline::Handshake),
    ("claims", AtomicDiscipline::Handshake),
    // trace.rs: session generation; stale-epoch buffers must observe
    // the bump before touching the new session's sink
    ("epoch", AtomicDiscipline::Handshake),
    // --- monotonic counters and dispensers ------------------------------
    // fault lib.rs: the armed fast-path gate; the registry mutex carries
    // the ordering, the flag only short-circuits the disarmed path
    ("ARMED", AtomicDiscipline::Monotonic),
    // obs lib.rs: the Counter/Gauge tuple structs and Histogram fields
    ("Counter", AtomicDiscipline::Monotonic),
    ("Gauge", AtomicDiscipline::Monotonic),
    // fault lib.rs: registry-consultation tally
    ("HITS", AtomicDiscipline::Monotonic),
    // one element of `buckets`, as bound by iteration
    ("bucket", AtomicDiscipline::Monotonic),
    ("buckets", AtomicDiscipline::Monotonic),
    // trace.rs: span budget countdown and drop tally
    ("budget", AtomicDiscipline::Monotonic),
    ("count", AtomicDiscipline::Monotonic),
    ("dropped", AtomicDiscipline::Monotonic),
    // store/parallel.rs race oracle: merge cursor, coordinator-only
    ("merged", AtomicDiscipline::Monotonic),
    // store/parallel.rs: the morsel ticket dispenser
    ("next", AtomicDiscipline::Monotonic),
    // trace.rs: span/thread id dispensers
    ("next_id", AtomicDiscipline::Monotonic),
    ("next_tid", AtomicDiscipline::Monotonic),
    ("sum", AtomicDiscipline::Monotonic),
    // slowlog.rs: the slow-query threshold (0 = disabled); the ring it
    // gates is Mutex-protected, so the load needs no ordering
    ("threshold_ns", AtomicDiscipline::Monotonic),
    // store/govern.rs: bytes charged against the statement memory budget;
    // monotone per statement, the limit comparison needs no ordering
    ("used", AtomicDiscipline::Monotonic),
];

#[cfg(test)]
mod tests {
    use super::{ALL, ATOMICS, LOCKS, SPANS};

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate catalog entry {name}");
        }
    }

    #[test]
    fn names_are_sorted() {
        for pair in ALL.windows(2) {
            assert!(pair[0] < pair[1], "{} must sort before {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn spans_are_a_sorted_subset_of_the_catalog() {
        for pair in SPANS.windows(2) {
            assert!(pair[0] < pair[1], "{} must sort before {}", pair[0], pair[1]);
        }
        for name in SPANS {
            assert!(ALL.contains(name), "span {name} missing from ALL");
        }
    }

    #[test]
    fn lock_hierarchy_ranks_are_unique_and_ascending() {
        for pair in LOCKS.windows(2) {
            assert!(
                pair[0].1 < pair[1].1,
                "lock {} (rank {}) must rank below {} ({})",
                pair[0].0,
                pair[0].1,
                pair[1].0,
                pair[1].1
            );
        }
        let mut names = std::collections::HashSet::new();
        for (name, _) in LOCKS {
            assert!(names.insert(*name), "duplicate lock {name}");
        }
    }

    #[test]
    fn atomic_registry_is_sorted_within_each_discipline() {
        let mut names = std::collections::HashSet::new();
        for (name, _) in ATOMICS {
            assert!(names.insert(*name), "duplicate atomic {name}");
        }
        // grouped handshakes-then-monotonic, each group name-sorted, so
        // a reader can scan the inventory the way the doc comment reads
        for pair in ATOMICS.windows(2) {
            if pair[0].1 == pair[1].1 {
                assert!(pair[0].0 < pair[1].0, "{} before {}", pair[0].0, pair[1].0);
            }
        }
    }

    #[test]
    fn names_follow_the_dotted_convention() {
        for name in ALL {
            let parts: Vec<&str> = name.split('.').collect();
            assert!(parts.len() >= 2, "{name} must be at least <crate>.<name>");
            for p in &parts {
                assert!(!p.is_empty(), "{name} has an empty path component");
                assert!(
                    p.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "{name}: component {p} must be lower_snake_case"
                );
            }
        }
    }
}

//! `fsdm-tidy`: the repo-native static-analysis gate.
//!
//! Walks every `crates/*/src/**/*.rs` file, classifies it with the
//! [`lexer`], and applies the [`rules`]. Zero external dependencies, so
//! it runs in the offline CI sandbox before clippy does.
//!
//! ```text
//! cargo run --release -p fsdm-tidy            # human-readable report
//! cargo run --release -p fsdm-tidy -- --json  # machine-readable report
//! cargo run --release -p fsdm-tidy -- --fix   # repair tabs/trailing ws
//! ```
//!
//! Exit status is non-zero when any finding remains or the allow budget
//! is exceeded.

use fsdm_lex as lexer;
mod rules;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rules::{Finding, ALLOW_BUDGET};

struct Options {
    json: bool,
    fix: bool,
    root: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut json = false;
    let mut fix = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--fix" => fix = true,
            "--help" | "-h" => {
                return Err("usage: fsdm-tidy [--json] [--fix] [repo-root]".to_string())
            }
            other if !other.starts_with('-') && root.is_none() => root = Some(PathBuf::from(other)),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let root = root.unwrap_or_else(find_repo_root);
    Ok(Options { json, fix, root })
}

/// The repo root is wherever `crates/` lives: the current directory when
/// invoked from the workspace root (the CI case), else relative to this
/// crate's manifest.
fn find_repo_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Every `.rs` file under `crates/*/src`, as (absolute, repo-relative)
/// pairs, sorted for deterministic reports.
fn source_files(root: &Path) -> Vec<(PathBuf, String)> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates) else { return Vec::new() };
    let mut crate_dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut paths);
    }
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            (p.clone(), rel)
        })
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The catalog-integrity rule: every metric name in
/// `crates/obs/src/catalog.rs` must be declared exactly once, the
/// declarations must be sorted by metric name, and the `ALL` inventory
/// must list exactly the declared constants in declaration order.
fn check_catalog(root: &Path) -> Vec<Finding> {
    let rel = "crates/obs/src/catalog.rs";
    let Ok(text) = fs::read_to_string(root.join(rel)) else {
        return vec![Finding {
            file: rel.to_string(),
            line: 1,
            rule: "catalog",
            message: "metric catalog file is missing".to_string(),
            fixable: false,
        }];
    };
    check_catalog_text(rel, &text)
}

fn check_catalog_text(rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut consts: Vec<(usize, String, String)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("pub const ") else { continue };
        let Some((name, tail)) = rest.split_once(':') else { continue };
        let Some((_, value)) = tail.split_once('"') else { continue };
        let Some((value, _)) = value.split_once('"') else { continue };
        consts.push((i + 1, name.trim().to_string(), value.to_string()));
    }
    let all_entries: Vec<String> = text
        .split_once("pub const ALL")
        .and_then(|(_, after)| after.split_once("= &["))
        .and_then(|(_, after)| after.split_once("];"))
        .map(|(body, _)| {
            body.split(',').map(str::trim).filter(|e| !e.is_empty()).map(String::from).collect()
        })
        .unwrap_or_default();
    for (i, (line, name, value)) in consts.iter().enumerate() {
        if consts.iter().take(i).any(|(_, _, earlier)| earlier == value) {
            out.push(Finding {
                file: rel.to_string(),
                line: *line,
                rule: "catalog",
                message: format!("metric name \"{value}\" is declared more than once"),
                fixable: false,
            });
        }
        if !all_entries.iter().any(|entry| entry == name) {
            out.push(Finding {
                file: rel.to_string(),
                line: *line,
                rule: "catalog",
                message: format!("{name} is missing from the ALL inventory"),
                fixable: false,
            });
        }
    }
    for pair in consts.windows(2) {
        let (Some((_, _, before)), Some((line, _, after))) = (pair.first(), pair.get(1)) else {
            continue;
        };
        if before >= after {
            out.push(Finding {
                file: rel.to_string(),
                line: *line,
                rule: "catalog",
                message: format!(
                    "declarations must stay sorted by metric name; \
                     \"{after}\" is listed after \"{before}\""
                ),
                fixable: false,
            });
        }
    }
    // ALL must mirror the declarations: no strays, same order
    let declared: Vec<&String> = consts.iter().map(|(_, name, _)| name).collect();
    for entry in &all_entries {
        if !declared.contains(&entry) {
            out.push(Finding {
                file: rel.to_string(),
                line: 1,
                rule: "catalog",
                message: format!("{entry} is listed in ALL but never declared"),
                fixable: false,
            });
        }
    }
    let in_both: Vec<&String> =
        all_entries.iter().filter(|entry| declared.contains(entry)).collect();
    let declared_in_all: Vec<&String> =
        declared.iter().copied().filter(|name| all_entries.contains(name)).collect();
    if in_both != declared_in_all {
        out.push(Finding {
            file: rel.to_string(),
            line: 1,
            rule: "catalog",
            message: "the ALL inventory must list constants in declaration order".to_string(),
            fixable: false,
        });
    }
    out
}

/// The diagnostic-code registry rule: `crates/analyze/src/diag.rs` is
/// the single source of truth for `FA###`/`PK###`/`SN###` ids. Its `Code::id()`
/// match must declare each id exactly once, and each prefix series must
/// be contiguous from 001 — codes are append-only CI contract, so a gap
/// means a code was deleted instead of retired in place.
fn check_diag_registry(root: &Path) -> Vec<Finding> {
    let rel = "crates/analyze/src/diag.rs";
    let Ok(text) = fs::read_to_string(root.join(rel)) else {
        return vec![Finding {
            file: rel.to_string(),
            line: 1,
            rule: "diag-code-registry",
            message: "diagnostic-code registry file is missing".to_string(),
            fixable: false,
        }];
    };
    check_diag_registry_text(rel, &text)
}

fn check_diag_registry_text(rel: &str, text: &str) -> Vec<Finding> {
    let finding = |line: usize, message: String| Finding {
        file: rel.to_string(),
        line,
        rule: "diag-code-registry",
        message,
        fixable: false,
    };
    // locate the `pub fn id` match arms; ids elsewhere in the file
    // (slug/severity arms, tests) are intentionally out of scope
    let Some(fn_start) = text.lines().position(|l| l.contains("pub fn id")) else {
        return vec![finding(1, "registry has no `pub fn id` match to cross-check".to_string())];
    };
    let mut ids: Vec<(usize, String)> = Vec::new();
    for (i, line) in text.lines().enumerate().skip(fn_start) {
        if i > fn_start && line.trim() == "}" && !line.starts_with("        ") {
            break;
        }
        let Some((_, tail)) = line.split_once("=> \"") else { continue };
        let Some((id, _)) = tail.split_once('"') else { continue };
        ids.push((i + 1, id.to_string()));
    }
    let mut out = Vec::new();
    for (i, (line, id)) in ids.iter().enumerate() {
        let well_formed = id.len() == 5
            && (id.starts_with("FA") || id.starts_with("PK") || id.starts_with("SN"))
            && id.chars().skip(2).all(|c| c.is_ascii_digit());
        if !well_formed {
            out.push(finding(*line, format!("id \"{id}\" is not a FA###/PK###/SN### code")));
            continue;
        }
        if ids.iter().take(i).any(|(_, earlier)| earlier == id) {
            out.push(finding(*line, format!("code \"{id}\" is declared more than once")));
        }
    }
    for prefix in ["FA", "PK", "SN"] {
        let mut numbers: Vec<u32> = ids
            .iter()
            .filter(|(_, id)| id.starts_with(prefix) && id.len() == 5)
            .filter_map(|(_, id)| id.get(2..).and_then(|d| d.parse().ok()))
            .collect();
        numbers.sort_unstable();
        numbers.dedup();
        for (expected, got) in (1u32..).zip(&numbers) {
            if *got != expected {
                out.push(finding(
                    1,
                    format!(
                        "{prefix} series has a gap: expected {prefix}{expected:03}, \
                         found {prefix}{got:03} — codes are append-only, retire in place"
                    ),
                ));
                break;
            }
        }
    }
    out
}

/// Rewrite `path` with tabs expanded and trailing whitespace stripped,
/// leaving string-literal content untouched. Returns true if changed.
fn fix_file(path: &Path, scan: &lexer::Scan) -> bool {
    let mut changed = false;
    let mut lines: Vec<String> = Vec::with_capacity(scan.lines.len());
    for (chars, classes) in scan.lines.iter().zip(&scan.classes) {
        let mut line = String::new();
        for (&ch, &cls) in chars.iter().zip(classes) {
            if ch == '\t' && cls != lexer::Class::StrContent {
                line.push_str("    ");
                changed = true;
            } else {
                line.push(ch);
            }
        }
        let kept = line.trim_end_matches([' ', '\t']).len();
        // only strip when the whitespace is not string content (a raw
        // string can legitimately end a line with spaces)
        let content_chars = chars.len();
        let trailing_ws =
            chars.iter().zip(classes).rev().take_while(|(&c, _)| c == ' ' || c == '\t').count();
        let safe = chars
            .iter()
            .zip(classes)
            .skip(content_chars.saturating_sub(trailing_ws))
            .all(|(_, &cls)| cls != lexer::Class::StrContent);
        if safe && kept < line.len() {
            line.truncate(kept);
            changed = true;
        }
        lines.push(line);
    }
    if !changed {
        return false;
    }
    let mut text = lines.join("\n");
    if scan.ends_with_newline {
        text.push('\n');
    }
    fs::write(path, text).is_ok()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(findings: &[Finding], allows_used: usize, files_scanned: usize) {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i + 1 == findings.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{sep}\n",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"files_scanned\": {files_scanned},\n  \"allows_used\": {allows_used},\n  \
         \"allow_budget\": {ALLOW_BUDGET},\n  \"errors\": {}\n}}",
        findings.len()
    ));
    println!("{out}");
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let files = source_files(&opts.root);
    if files.is_empty() {
        eprintln!("fsdm-tidy: no sources found under {}/crates", opts.root.display());
        return ExitCode::FAILURE;
    }

    let mut findings: Vec<Finding> = Vec::new();
    let mut allows_used = 0usize;
    let mut fixed = 0usize;
    for (path, rel) in &files {
        let Ok(text) = fs::read_to_string(path) else {
            findings.push(Finding {
                file: rel.clone(),
                line: 1,
                rule: "io",
                message: "file is not readable as UTF-8".to_string(),
                fixable: false,
            });
            continue;
        };
        let scan = lexer::scan(&text);
        let (mut file_findings, used) = rules::check_file(rel, &scan);
        allows_used += used;
        if opts.fix && file_findings.iter().any(|f| f.fixable) && fix_file(path, &scan) {
            fixed += 1;
            file_findings.retain(|f| !f.fixable);
        }
        findings.extend(file_findings);
    }
    findings.extend(check_catalog(&opts.root));
    findings.extend(check_diag_registry(&opts.root));

    let over_budget = allows_used > ALLOW_BUDGET;
    if opts.json {
        print_json(&findings, allows_used, files.len());
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if fixed > 0 {
            println!("fsdm-tidy: fixed {fixed} file(s)");
        }
        println!(
            "fsdm-tidy: {} file(s), {} finding(s), {}/{} allow annotation(s) used",
            files.len(),
            findings.len(),
            allows_used,
            ALLOW_BUDGET
        );
        if over_budget {
            println!("fsdm-tidy: allow budget exceeded ({allows_used} > {ALLOW_BUDGET})");
        }
    }
    if findings.is_empty() && !over_budget {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn finds_workspace_sources() {
        let files = source_files(&find_repo_root());
        assert!(
            files.iter().any(|(_, rel)| rel == "crates/oson/src/wire.rs"),
            "expected the oson wire module among {} files",
            files.len()
        );
    }

    #[test]
    fn catalog_is_consistent() {
        assert!(check_catalog(&find_repo_root()).is_empty());
    }

    #[test]
    fn diag_registry_is_consistent() {
        assert!(check_diag_registry(&find_repo_root()).is_empty());
    }

    fn registry(ids: &[&str]) -> String {
        let mut text = String::from(
            "impl Code {\n    pub fn id(&self) -> &'static str {\n        \
                                     match self {\n",
        );
        for id in ids {
            text.push_str(&format!("            Code::X => \"{id}\",\n"));
        }
        text.push_str("        }\n    }\n}\n");
        text
    }

    fn registry_messages(ids: &[&str]) -> Vec<String> {
        check_diag_registry_text("diag.rs", &registry(ids)).into_iter().map(|f| f.message).collect()
    }

    #[test]
    fn diag_registry_accepts_contiguous_series() {
        let fa1 = format!("{}{}", "FA", "001");
        let pk1 = format!("{}{}", "PK", "001");
        let pk2 = format!("{}{}", "PK", "002");
        let sn1 = format!("{}{}", "SN", "001");
        assert!(registry_messages(&[&fa1, &pk1, &pk2, &sn1]).is_empty());
    }

    #[test]
    fn diag_registry_covers_the_sn_series() {
        let sn1 = format!("{}{}", "SN", "001");
        let sn3 = format!("{}{}", "SN", "003");
        let gap = registry_messages(&[&sn1, &sn3]);
        assert!(gap.iter().any(|m| m.contains("gap")), "{gap:?}");
    }

    #[test]
    fn diag_registry_flags_duplicates_gaps_and_malformed_ids() {
        let fa1 = format!("{}{}", "FA", "001");
        let dup = registry_messages(&[&fa1, &fa1]);
        assert!(dup.iter().any(|m| m.contains("more than once")), "{dup:?}");
        let pk1 = format!("{}{}", "PK", "001");
        let pk3 = format!("{}{}", "PK", "003");
        let gap = registry_messages(&[&pk1, &pk3]);
        assert!(gap.iter().any(|m| m.contains("gap")), "{gap:?}");
        let malformed = registry_messages(&["XY001"]);
        assert!(malformed.iter().any(|m| m.contains("not a FA###/PK###/SN###")), "{malformed:?}");
    }

    fn catalog(consts: &[(&str, &str)], all: &[&str]) -> String {
        let mut text = String::new();
        for (name, value) in consts {
            text.push_str(&format!("pub const {name}: &str = \"{value}\";\n"));
        }
        text.push_str("pub const ALL: &[&str] = &[\n");
        for name in all {
            text.push_str(&format!("    {name},\n"));
        }
        text.push_str("];\n");
        text
    }

    fn catalog_messages(text: &str) -> Vec<String> {
        check_catalog_text("catalog.rs", text).into_iter().map(|f| f.message).collect()
    }

    #[test]
    fn catalog_accepts_sorted_and_mirrored() {
        let text = catalog(&[("A", "a.x"), ("B", "b.y")], &["A", "B"]);
        assert!(catalog_messages(&text).is_empty());
    }

    #[test]
    fn catalog_flags_duplicates_and_missing() {
        let text = catalog(&[("A", "a.x"), ("B", "a.x")], &["A"]);
        let msgs = catalog_messages(&text);
        assert!(msgs.iter().any(|m| m.contains("more than once")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("B is missing")), "{msgs:?}");
    }

    #[test]
    fn catalog_flags_unsorted_declarations() {
        let text = catalog(&[("B", "b.y"), ("A", "a.x")], &["B", "A"]);
        let msgs = catalog_messages(&text);
        assert!(msgs.iter().any(|m| m.contains("sorted by metric name")), "{msgs:?}");
    }

    #[test]
    fn catalog_flags_stray_and_misordered_all_entries() {
        let stray = catalog(&[("A", "a.x"), ("B", "b.y")], &["A", "B", "C"]);
        let msgs = catalog_messages(&stray);
        assert!(msgs.iter().any(|m| m.contains("never declared")), "{msgs:?}");
        let misordered = catalog(&[("A", "a.x"), ("B", "b.y")], &["B", "A"]);
        let msgs = catalog_messages(&misordered);
        assert!(msgs.iter().any(|m| m.contains("declaration order")), "{msgs:?}");
    }
}
